"""Tests for the log-analysis baseline (the Section 2 DIY option)."""

from repro.baselines import LogAnalysisAwareness
from repro.core import CoreEngine, Participant
from repro.core.context import ContextChange
from repro.core.instances import ActivityStateChange


def activity_change(time, instance="ir-1", state="Completed"):
    return ActivityStateChange(
        time=time,
        activity_instance_id=instance,
        parent_process_schema_id="P-TF",
        parent_process_instance_id="tf-1",
        user=None,
        activity_variable_id="inforequest1",
        activity_process_schema_id="P-IR",
        old_state="Running",
        new_state=state,
    )


def context_change(time, field="TaskForceDeadline", value=50):
    return ContextChange(
        time=time,
        context_id="ctx-1",
        context_name="TaskForceContext",
        associations=frozenset({("P-TF", "tf-1"), ("P-IR", "ir-1")}),
        field_name=field,
        old_value=None,
        new_value=value,
    )


class TestPolling:
    def test_analysis_runs_on_poll_boundaries(self):
        core = CoreEngine()
        adapter = LogAnalysisAwareness(core, ["watcher"], poll_interval=10)
        seen_slices = []
        adapter.add_analysis(
            lambda acts, ctxs: seen_slices.append((len(acts), len(ctxs))) or []
        )
        # Feed events through the internal hooks directly.
        adapter._on_context(context_change(3))
        adapter._on_context(context_change(7))
        assert adapter.polls == 0  # still inside the first window
        adapter._on_context(context_change(12))  # crosses t=10
        assert adapter.polls == 1
        assert seen_slices[0] == (0, 2)  # the first two changes

    def test_detection_delivered_at_poll_time_to_static_list(self):
        core = CoreEngine()
        adapter = LogAnalysisAwareness(core, ["a", "b"], poll_interval=10)
        adapter.add_analysis(
            lambda acts, ctxs: [
                (("violation", change.time), change.time) for change in ctxs
            ]
        )
        adapter._on_context(context_change(4))
        adapter._on_context(context_change(15))  # triggers the t=10 poll
        deliveries = adapter.deliveries()
        assert len(deliveries) == 2  # the t=4 event, to both recipients
        assert all(d.time == 10 for d in deliveries)  # poll time, not event time
        assert {d.participant_id for d in deliveries} == {"a", "b"}

    def test_finish_flushes_trailing_window(self):
        core = CoreEngine()
        adapter = LogAnalysisAwareness(core, ["a"], poll_interval=100)
        adapter.add_analysis(
            lambda acts, ctxs: [(("hit", c.time), c.time) for c in ctxs]
        )
        adapter._on_context(context_change(5))
        assert adapter.total() == 0
        adapter.finish()
        assert adapter.total() == 1

    def test_empty_windows_skip_analyses(self):
        core = CoreEngine()
        calls = []
        adapter = LogAnalysisAwareness(core, ["a"], poll_interval=5)
        adapter.add_analysis(lambda acts, ctxs: calls.append(1) or [])
        adapter._on_context(context_change(23))  # windows 5..20 were empty
        assert calls == []  # nothing ran for the empty windows
        adapter.finish()
        assert len(calls) == 1  # one analysis pass over the real event

    def test_activity_log_reaches_analyses(self):
        core = CoreEngine()
        adapter = LogAnalysisAwareness(core, ["a"], poll_interval=10)
        closed = []
        adapter.add_analysis(
            lambda acts, ctxs: closed.extend(
                a.activity_instance_id for a in acts
            )
            or []
        )
        adapter._on_activity(activity_change(3))
        adapter.finish()
        assert closed == ["ir-1"]

    def test_hooks_wired_to_engine(self, system, epidemiologists, alice, bob, taskforce_app):
        """Driven through a real system, the adapter observes the logs."""
        adapter = LogAnalysisAwareness(
            system.core, ["epi-x"], poll_interval=1
        )
        hits = []
        adapter.add_analysis(
            lambda acts, ctxs: hits.extend(
                c.field_name for c in ctxs
            ) or []
        )
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        taskforce_app.change_task_force_deadline(task_force, 50)
        adapter.finish()
        assert "TaskForceDeadline" in hits
