"""Tests for the Section 2 awareness baselines."""

import pytest

from repro.baselines import (
    ContentFilterPubSub,
    EmailNotification,
    GroupwareRole,
    GroupwareRoles,
    MonitorAllAwareness,
    WorklistOnlyAwareness,
)
from repro.core import ContextSchema
from repro.core.context import ContextFieldSpec
from repro.errors import ScopeError


class TestWorklistOnly:
    def test_records_offers_to_candidates(
        self, system, alice, bob, carol, epidemiologists, simple_process
    ):
        adapter = WorklistOnlyAwareness(
            system.core, system.coordination.worklists
        )
        system.coordination.start_process(simple_process)
        deliveries = adapter.deliveries()
        # draft offered to all three epidemiologists.
        assert {d.participant_id for d in deliveries} == {
            "u-alice",
            "u-bob",
            "u-carol",
        }
        assert all(d.key[0] == "work-item" for d in deliveries)

    def test_each_offer_recorded_once(
        self, system, alice, epidemiologists, simple_process
    ):
        adapter = WorklistOnlyAwareness(
            system.core, system.coordination.worklists
        )
        system.coordination.start_process(simple_process)
        first = adapter.total()
        # More activity events happen; no new offers -> no new deliveries.
        client = system.participant_client(alice)
        item = client.work_items()[0]
        client.claim(item)
        assert adapter.total() == first


class TestMonitorAll:
    def test_every_event_to_every_monitor(
        self, system, alice, bob, epidemiologists, simple_process
    ):
        adapter = MonitorAllAwareness(system.core, [alice, bob])
        system.coordination.start_process(simple_process)
        per_user = adapter.deliveries_per_participant()
        assert per_user["u-alice"] == per_user["u-bob"]
        assert per_user["u-alice"] >= 3  # several state changes already

    def test_includes_context_events(self, system, alice, taskforce_app):
        adapter = MonitorAllAwareness(system.core, [alice])
        task_force = taskforce_app.create_task_force(alice, [alice], 100)
        keys = {d.key[0] for d in adapter.deliveries()}
        assert "context-change" in keys
        assert "state-change" in keys


class TestContentFilter:
    def test_predicate_filters_events(
        self, system, alice, epidemiologists, simple_process
    ):
        adapter = ContentFilterPubSub(system.core)
        adapter.subscribe(
            "u-alice",
            lambda attrs: attrs.get("newState") == "Completed",
            label="completions",
        )
        system.coordination.start_process(simple_process)
        client = system.participant_client(alice)
        client.claim_and_complete_all()
        deliveries = adapter.deliveries()
        assert deliveries  # completions observed
        assert all(d.key[2] == "Completed" for d in deliveries)

    def test_context_subscriptions(self, system, alice, taskforce_app):
        adapter = ContentFilterPubSub(system.core)
        adapter.subscribe(
            "u-alice",
            lambda attrs: attrs.get("fieldName") == "TaskForceDeadline",
        )
        taskforce_app.create_task_force(alice, [alice], 100)
        assert adapter.total() == 1


class TestEmailNotification:
    def test_rule_fires_to_static_list(
        self, system, alice, epidemiologists, simple_process
    ):
        adapter = EmailNotification(system.core)
        adapter.add_rule("draft", "Completed", ("boss@example",))
        system.coordination.start_process(simple_process)
        system.participant_client(alice).claim_and_complete_all()
        deliveries = adapter.deliveries()
        assert len(deliveries) == 1
        assert deliveries[0].participant_id == "boss@example"

    def test_rule_matches_schema_name_and_state(
        self, system, alice, epidemiologists, simple_process
    ):
        adapter = EmailNotification(system.core)
        adapter.add_rule("draft", "Terminated", ("boss@example",))
        system.coordination.start_process(simple_process)
        system.participant_client(alice).claim_and_complete_all()
        assert adapter.total() == 0


class TestGroupware:
    def _shared_resource(self, system):
        """A whiteboard modelled as a context on a process instance."""
        from repro import (
            ActivityVariable,
            BasicActivitySchema,
            ProcessActivitySchema,
        )

        process = ProcessActivitySchema("p-meet", "meeting")
        process.add_context_schema(
            ContextSchema("Whiteboard", [ContextFieldSpec("content", "str")])
        )
        process.add_activity_variable(
            ActivityVariable("talk", BasicActivitySchema("b-talk", "talk"))
        )
        process.mark_entry("talk")
        system.core.register_schema(process)
        instance = system.coordination.start_process(process)
        return instance.context("Whiteboard")

    def test_presenter_writes_observers_see(self, system, alice, bob):
        adapter = GroupwareRoles(system.core)
        board = self._shared_resource(system)
        adapter.join(board, "u-alice", GroupwareRole.PRESENTER)
        adapter.join(board, "u-bob", GroupwareRole.OBSERVER)
        adapter.write(board, "u-alice", "content", "agenda")
        receivers = {d.participant_id for d in adapter.deliveries()}
        # Observers (and hybrids) read; pure presenters do not.
        assert receivers == {"u-bob"}

    def test_observer_cannot_write(self, system, alice, bob):
        adapter = GroupwareRoles(system.core)
        board = self._shared_resource(system)
        adapter.join(board, "u-bob", GroupwareRole.OBSERVER)
        with pytest.raises(ScopeError):
            adapter.write(board, "u-bob", "content", "graffiti")

    def test_hybrid_can_do_both(self, system, alice):
        adapter = GroupwareRoles(system.core)
        board = self._shared_resource(system)
        adapter.join(board, "u-alice", GroupwareRole.HYBRID)
        adapter.write(board, "u-alice", "content", "notes")
        assert {d.participant_id for d in adapter.deliveries()} == {"u-alice"}

    def test_non_member_cannot_write(self, system, alice):
        adapter = GroupwareRoles(system.core)
        board = self._shared_resource(system)
        with pytest.raises(ScopeError):
            adapter.write(board, "u-alice", "content", "x")
