"""Interchange round-trips at demonstration scale (all nine processes)."""

from repro.core.serialization import schema_from_json, schema_to_json
from repro.workloads.demonstration import (
    build_demonstration,
    translate_to_wfms_activities,
)


class TestDemonstrationScaleRoundTrip:
    def test_all_nine_process_schemas_round_trip(self):
        builder = build_demonstration()
        for schema in builder.process_schemas():
            payload = schema_to_json(schema)
            restored = schema_from_json(payload)
            assert restored.schema_id == schema.schema_id
            assert restored.name == schema.name
            assert len(restored.activity_variables()) == len(
                schema.activity_variables()
            )
            assert len(restored.dependencies()) == len(schema.dependencies())
            assert restored.entry_activities == schema.entry_activities
            # The WfMS translation count is structure-derived; equality is
            # a strong whole-tree isomorphism check.
            assert translate_to_wfms_activities(
                restored
            ) == translate_to_wfms_activities(schema)

    def test_round_trip_payloads_are_fixpoints(self):
        builder = build_demonstration()
        for schema in builder.process_schemas():
            once = schema_to_json(schema)
            twice = schema_to_json(schema_from_json(once))
            assert once == twice
