"""Tests for context resources, references, and scoping (Section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import LogicalClock
from repro.core.context import (
    ContextFieldSpec,
    ContextReference,
    ContextResource,
    ContextSchema,
)
from repro.errors import ContextError, ScopeError, UnknownFieldError


def make_context(fields=None):
    schema = ContextSchema(
        "TaskForceContext",
        fields
        or [
            ContextFieldSpec("TaskForceDeadline", "int"),
            ContextFieldSpec("Status", "str"),
        ],
    )
    return ContextResource("ctx-1", schema)


def make_ref(context, holder="proc-1", clock=None):
    clock = clock or LogicalClock()
    return ContextReference(context, holder, clock.now)


class TestContextSchema:
    def test_duplicate_field_rejected(self):
        schema = ContextSchema("C", [ContextFieldSpec("a")])
        with pytest.raises(ContextError):
            schema.declare_field(ContextFieldSpec("a"))

    def test_unknown_field_lookup_raises(self):
        schema = ContextSchema("C", [ContextFieldSpec("a")])
        with pytest.raises(UnknownFieldError):
            schema.field_spec("b")

    def test_field_type_check(self):
        spec = ContextFieldSpec("deadline", "int")
        spec.check(5)
        with pytest.raises(ContextError):
            spec.check("soon")
        with pytest.raises(ContextError):
            spec.check(True)

    def test_unknown_field_type_rejected(self):
        with pytest.raises(ContextError):
            ContextFieldSpec("x", "datetime").check(1)


class TestContextAccess:
    def test_set_and_get_via_reference(self):
        context = make_context()
        ref = make_ref(context)
        ref.set("TaskForceDeadline", 100)
        assert ref.get("TaskForceDeadline") == 100

    def test_unset_field_raises(self):
        ref = make_ref(make_context())
        assert not ref.is_set("Status")
        with pytest.raises(UnknownFieldError):
            ref.get("Status")

    def test_type_checked_assignment(self):
        ref = make_ref(make_context())
        with pytest.raises(ContextError):
            ref.set("TaskForceDeadline", "friday")

    def test_revoked_reference_raises_scope_error(self):
        ref = make_ref(make_context())
        ref.revoke()
        with pytest.raises(ScopeError):
            ref.get("Status")
        with pytest.raises(ScopeError):
            ref.set("Status", "x")

    def test_destroyed_context_rejects_access(self):
        context = make_context()
        ref = make_ref(context)
        context._destroy()
        with pytest.raises(ContextError):
            ref.set("Status", "late")

    def test_pass_to_creates_subprocess_reference(self):
        context = make_context()
        parent_ref = make_ref(context, holder="proc-parent")
        child_ref = parent_ref.pass_to("proc-child")
        assert child_ref.holder_process_instance_id == "proc-child"
        child_ref.set("Status", "shared")
        assert parent_ref.get("Status") == "shared"

    def test_revoked_reference_cannot_be_passed_on(self):
        parent_ref = make_ref(make_context())
        parent_ref.revoke()
        with pytest.raises(ScopeError):
            parent_ref.pass_to("proc-child")

    def test_revoking_child_leaves_parent_usable(self):
        context = make_context()
        parent_ref = make_ref(context)
        child_ref = parent_ref.pass_to("proc-child")
        child_ref.revoke()
        parent_ref.set("Status", "still-fine")
        with pytest.raises(ScopeError):
            child_ref.get("Status")


class TestChangeEvents:
    def test_change_record_has_section_511_parameters(self):
        context = make_context()
        context._associate("P-TF", "proc-1")
        context._associate("P-IR", "proc-2")
        changes = []
        context.add_listener(changes.append)
        ref = make_ref(context)
        ref.set("TaskForceDeadline", 50)
        assert len(changes) == 1
        change = changes[0]
        assert change.context_id == "ctx-1"
        assert change.context_name == "TaskForceContext"
        assert change.field_name == "TaskForceDeadline"
        assert change.old_value is None
        assert change.new_value == 50
        assert change.associations == frozenset(
            {("P-TF", "proc-1"), ("P-IR", "proc-2")}
        )

    def test_old_value_tracks_previous_assignment(self):
        context = make_context()
        changes = []
        context.add_listener(changes.append)
        ref = make_ref(context)
        ref.set("TaskForceDeadline", 50)
        ref.set("TaskForceDeadline", 40)
        assert changes[1].old_value == 50
        assert changes[1].new_value == 40

    def test_write_time_comes_from_clock(self):
        clock = LogicalClock()
        context = make_context()
        changes = []
        context.add_listener(changes.append)
        ref = make_ref(context, clock=clock)
        clock.advance(9)
        ref.set("TaskForceDeadline", 1)
        assert changes[0].time == 9

    def test_dissociate_removes_association(self):
        context = make_context()
        context._associate("P", "i1")
        context._dissociate("P", "i1")
        assert context.associations() == frozenset()


class TestContextProperties:
    @given(
        values=st.lists(
            st.integers(min_value=-10_000, max_value=10_000),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_change_stream_reconstructs_field_history(self, values):
        """Replaying old->new values of the change stream always matches
        the direct assignment history (no lost or reordered updates)."""
        context = make_context()
        changes = []
        context.add_listener(changes.append)
        ref = make_ref(context)
        for value in values:
            ref.set("TaskForceDeadline", value)
        assert [c.new_value for c in changes] == values
        expected_old = [None] + values[:-1]
        assert [c.old_value for c in changes] == expected_old
        assert ref.get("TaskForceDeadline") == values[-1]
