"""Tests for the CORE engine: registries, instances, contexts, events."""

import pytest

from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    ContextSchema,
    CoreEngine,
    Participant,
    ProcessActivitySchema,
)
from repro.core.context import ContextFieldSpec
from repro.core.roles import RoleRef
from repro.errors import (
    EnactmentError,
    RoleResolutionError,
    SchemaError,
)


def build_process(engine, with_context=False):
    basic = BasicActivitySchema("b-work", "work")
    process = ProcessActivitySchema("p-main", "main")
    if with_context:
        process.add_context_schema(
            ContextSchema(
                "Ctx",
                [
                    ContextFieldSpec("deadline", "int"),
                    ContextFieldSpec("owner", "role"),
                ],
            )
        )
    process.add_activity_variable(ActivityVariable("work", basic))
    process.mark_entry("work")
    engine.register_schema(process)
    return process


class TestSchemaRegistry:
    def test_recursive_registration(self):
        engine = CoreEngine()
        process = build_process(engine)
        assert engine.schema("p-main") is process
        assert engine.schema("b-work").name == "work"

    def test_same_object_reregistration_is_noop(self):
        engine = CoreEngine()
        process = build_process(engine)
        engine.register_schema(process)

    def test_different_object_same_id_rejected(self):
        engine = CoreEngine()
        build_process(engine)
        with pytest.raises(SchemaError):
            engine.register_schema(BasicActivitySchema("b-work", "impostor"))

    def test_unknown_schema_lookup(self):
        with pytest.raises(SchemaError):
            CoreEngine().schema("ghost")

    def test_unregistered_schema_cannot_instantiate(self):
        engine = CoreEngine()
        process = ProcessActivitySchema("p", "x")
        process.add_activity_variable(
            ActivityVariable("a", BasicActivitySchema("b", "a"))
        )
        process.mark_entry("a")
        with pytest.raises(SchemaError):
            engine.create_process_instance(process)


class TestInstances:
    def test_create_process_and_child(self):
        engine = CoreEngine()
        process_schema = build_process(engine)
        instance = engine.create_process_instance(process_schema)
        child = engine.create_activity_instance(instance, "work")
        assert child.parent is instance
        assert instance.child("work") is child
        assert child.activity_variable_id == "work"
        assert engine.instance(child.instance_id) is child

    def test_duplicate_child_rejected(self):
        engine = CoreEngine()
        process_schema = build_process(engine)
        instance = engine.create_process_instance(process_schema)
        engine.create_activity_instance(instance, "work")
        with pytest.raises(EnactmentError):
            engine.create_activity_instance(instance, "work")

    def test_top_level_processes_tracked(self):
        engine = CoreEngine()
        process_schema = build_process(engine)
        a = engine.create_process_instance(process_schema)
        b = engine.create_process_instance(process_schema)
        assert engine.top_level_processes() == (a, b)


class TestEventHooks:
    def test_state_change_publishes_activity_event(self):
        engine = CoreEngine()
        process_schema = build_process(engine)
        seen = []
        engine.on_activity_change(seen.append)
        instance = engine.create_process_instance(process_schema)
        engine.change_state(instance, "Ready", user="alice")
        assert len(seen) == 1
        change = seen[0]
        assert change.activity_instance_id == instance.instance_id
        assert change.old_state == "Uninitialized"
        assert change.new_state == "Ready"
        assert change.user == "alice"
        assert change.parent_process_schema_id is None

    def test_child_change_carries_parent_fields(self):
        engine = CoreEngine()
        process_schema = build_process(engine)
        seen = []
        engine.on_activity_change(seen.append)
        instance = engine.create_process_instance(process_schema)
        child = engine.create_activity_instance(instance, "work")
        engine.change_state(child, "Ready")
        change = seen[-1]
        assert change.parent_process_schema_id == "p-main"
        assert change.parent_process_instance_id == instance.instance_id
        assert change.activity_variable_id == "work"
        assert change.activity_process_schema_id is None

    def test_context_change_hook(self):
        engine = CoreEngine()
        process_schema = build_process(engine, with_context=True)
        seen = []
        engine.on_context_change(seen.append)
        instance = engine.create_process_instance(process_schema)
        instance.context("Ctx").set("deadline", 10)
        assert len(seen) == 1
        assert seen[0].field_name == "deadline"

    def test_clock_timestamps_are_monotone(self):
        engine = CoreEngine()
        process_schema = build_process(engine)
        seen = []
        engine.on_activity_change(seen.append)
        instance = engine.create_process_instance(process_schema)
        engine.change_state(instance, "Ready")
        engine.change_state(instance, "Running")
        assert seen[0].time < seen[1].time


class TestContexts:
    def test_process_contexts_created_at_instantiation(self):
        engine = CoreEngine()
        process_schema = build_process(engine, with_context=True)
        instance = engine.create_process_instance(process_schema)
        ref = instance.context("Ctx")
        assert ref.context_name == "Ctx"

    def test_share_context_adds_association(self):
        engine = CoreEngine()
        process_schema = build_process(engine, with_context=True)
        parent = engine.create_process_instance(process_schema)
        other = engine.create_process_instance(process_schema)
        ref = parent.context("Ctx")
        engine.share_context(ref, other)
        contexts = engine.contexts_for_instance(other.instance_id)
        # `other` now sees both its own Ctx and the shared one.
        assert len(contexts) == 2

    def test_contexts_for_instance_skips_destroyed(self):
        engine = CoreEngine()
        process_schema = build_process(engine, with_context=True)
        instance = engine.create_process_instance(process_schema)
        engine.destroy_context(instance.context("Ctx"))
        assert engine.contexts_for_instance(instance.instance_id) == ()

    def test_unknown_context_lookup(self):
        with pytest.raises(EnactmentError):
            CoreEngine().context_resource("ghost")


class TestScopedRolesViaEngine:
    def test_create_and_resolve_scoped_role(self):
        engine = CoreEngine()
        alice = engine.roles.register_participant(Participant("u1", "alice"))
        process_schema = build_process(engine, with_context=True)
        instance = engine.create_process_instance(process_schema)
        engine.create_scoped_role(instance.context("Ctx"), "owner", (alice,))
        resolved = engine.resolve_role(
            RoleRef("owner", "Ctx"), instance.instance_id
        )
        assert resolved == frozenset({alice})

    def test_scoped_resolution_requires_instance(self):
        engine = CoreEngine()
        with pytest.raises(RoleResolutionError):
            engine.resolve_role(RoleRef("owner", "Ctx"))

    def test_global_resolution_ignores_instance(self):
        engine = CoreEngine()
        alice = engine.roles.register_participant(Participant("u1", "alice"))
        engine.roles.define_role("analyst").add_member(alice)
        assert engine.resolve_role(RoleRef("analyst")) == frozenset({alice})
