"""Tests for participants, organizational roles, and scoped roles."""

import pytest

from repro.core.context import ContextFieldSpec, ContextResource, ContextSchema
from repro.core.roles import (
    OrganizationalRole,
    Participant,
    ParticipantKind,
    RoleDirectory,
    RoleRef,
    ScopedRole,
)
from repro.clock import LogicalClock
from repro.core.context import ContextReference
from repro.errors import RoleError, RoleResolutionError


def person(pid, name="someone"):
    return Participant(pid, name)


def context_with_role_field():
    schema = ContextSchema(
        "TaskForceContext",
        [ContextFieldSpec("leader", "role"), ContextFieldSpec("deadline", "int")],
    )
    return ContextResource("ctx-1", schema)


class TestParticipant:
    def test_sign_on_off(self):
        participant = person("u1")
        assert not participant.signed_on
        participant.sign_on()
        assert participant.signed_on
        participant.sign_off()
        assert not participant.signed_on

    def test_equality_by_id(self):
        assert person("u1", "a") == person("u1", "b")
        assert person("u1") != person("u2")
        assert len({person("u1"), person("u1")}) == 1

    def test_kinds(self):
        assert person("u1").kind is ParticipantKind.HUMAN
        robot = Participant("r1", "crawler", ParticipantKind.PROGRAM)
        assert robot.kind is ParticipantKind.PROGRAM


class TestOrganizationalRole:
    def test_membership(self):
        role = OrganizationalRole("epidemiologist")
        alice = person("u1")
        role.add_member(alice)
        assert alice in role
        role.remove_member(alice)
        assert alice not in role

    def test_members_snapshot_is_frozen(self):
        role = OrganizationalRole("epidemiologist")
        role.add_member(person("u1"))
        snapshot = role.members()
        role.add_member(person("u2"))
        assert len(snapshot) == 1


class TestScopedRole:
    def test_lifetime_bound_to_context(self):
        context = context_with_role_field()
        role = ScopedRole("leader", context)
        role.add_member(person("u1"))
        assert role.alive
        assert len(role.members()) == 1
        context._destroy()
        assert not role.alive
        with pytest.raises(RoleError):
            role.members()
        with pytest.raises(RoleError):
            role.add_member(person("u2"))

    def test_contains_check_survives_destruction(self):
        context = context_with_role_field()
        alice = person("u1")
        role = ScopedRole("leader", context)
        role.add_member(alice)
        context._destroy()
        assert alice in role  # membership check is not a resolution


class TestRoleDirectory:
    def test_register_and_resolve_global(self):
        directory = RoleDirectory()
        alice = directory.register_participant(person("u1", "alice"))
        directory.define_role("epidemiologist").add_member(alice)
        assert directory.resolve_global("epidemiologist") == frozenset({alice})

    def test_duplicate_participant_rejected(self):
        directory = RoleDirectory()
        directory.register_participant(person("u1"))
        with pytest.raises(RoleError):
            directory.register_participant(person("u1"))

    def test_duplicate_role_rejected(self):
        directory = RoleDirectory()
        directory.define_role("x")
        with pytest.raises(RoleError):
            directory.define_role("x")

    def test_unknown_role_raises_resolution_error(self):
        with pytest.raises(RoleResolutionError):
            RoleDirectory().resolve_global("ghost")

    def test_unknown_participant(self):
        with pytest.raises(RoleError):
            RoleDirectory().participant("ghost")


class TestScopedResolution:
    def _ref(self, context):
        return ContextReference(context, "proc-1", LogicalClock().now)

    def test_resolve_scoped_role_through_context(self):
        directory = RoleDirectory()
        alice = directory.register_participant(person("u1", "alice"))
        context = context_with_role_field()
        role = ScopedRole("leader", context)
        role.add_member(alice)
        context._set("leader", role, time=0)
        resolved = directory.resolve(
            RoleRef("leader", "TaskForceContext"), [context]
        )
        assert resolved == frozenset({alice})

    def test_resolution_fails_after_context_destruction(self):
        directory = RoleDirectory()
        alice = directory.register_participant(person("u1"))
        context = context_with_role_field()
        role = ScopedRole("leader", context)
        role.add_member(alice)
        context._set("leader", role, time=0)
        context._destroy()
        with pytest.raises(RoleResolutionError):
            directory.resolve(RoleRef("leader", "TaskForceContext"), [context])

    def test_resolution_fails_for_unset_field(self):
        directory = RoleDirectory()
        context = context_with_role_field()
        with pytest.raises(RoleResolutionError):
            directory.resolve(RoleRef("leader", "TaskForceContext"), [context])

    def test_resolution_fails_for_non_role_field(self):
        directory = RoleDirectory()
        context = context_with_role_field()
        context._set("deadline", 10, time=0)
        with pytest.raises(RoleResolutionError):
            directory.resolve(RoleRef("deadline", "TaskForceContext"), [context])

    def test_resolution_skips_wrong_context_name(self):
        directory = RoleDirectory()
        context = context_with_role_field()
        role = ScopedRole("leader", context)
        context._set("leader", role, time=0)
        with pytest.raises(RoleResolutionError):
            directory.resolve(RoleRef("leader", "OtherContext"), [context])

    def test_role_ref_str(self):
        assert str(RoleRef("leader", "TaskForceContext")) == (
            "TaskForceContext.leader"
        )
        assert str(RoleRef("epidemiologist")) == "epidemiologist"
        assert RoleRef("leader", "C").is_scoped
        assert not RoleRef("leader").is_scoped
