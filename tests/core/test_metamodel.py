"""Tests for the CMM meta-model layer (Figures 2 and 3)."""

from repro.core.metamodel import (
    CMM_EXTENSIONS,
    DependencyType,
    MetaType,
    extension_dependencies,
)
from repro.core.schema import BasicActivitySchema, ProcessActivitySchema
from repro.core.resources import ResourceSchema, ResourceKind


class TestExtensionStructure:
    """Figure 2: CORE + CM/AM/SM + application-specific extension."""

    def test_all_five_layers_present(self):
        assert set(CMM_EXTENSIONS) == {"CORE", "CM", "AM", "SM", "APP"}

    def test_core_builds_on_nothing(self):
        assert CMM_EXTENSIONS["CORE"].builds_on == ()

    def test_cm_am_sm_build_directly_on_core(self):
        for abbreviation in ("CM", "AM", "SM"):
            assert CMM_EXTENSIONS[abbreviation].builds_on == ("CORE",)

    def test_app_builds_on_all_three_extensions(self):
        assert set(CMM_EXTENSIONS["APP"].builds_on) == {"CM", "SM", "AM"}

    def test_transitive_closure_reaches_core(self):
        assert extension_dependencies("APP") == frozenset(
            {"CM", "SM", "AM", "CORE"}
        )
        assert extension_dependencies("AM") == frozenset({"CORE"})
        assert extension_dependencies("CORE") == frozenset()

    def test_awareness_extension_provides_awareness_schemas(self):
        provides = CMM_EXTENSIONS["AM"].provides
        assert any("awareness schema" in p for p in provides)


class TestMetaTypes:
    """Figure 3: schemas are instances of the CMM meta types."""

    def test_four_meta_types(self):
        assert {m.name for m in MetaType} == {
            "ACTIVITY_STATE",
            "BASIC_ACTIVITY",
            "PROCESS_ACTIVITY",
            "RESOURCE",
        }

    def test_basic_activity_schema_instantiates_its_meta_type(self):
        schema = BasicActivitySchema("b", "write")
        assert schema.meta_type is MetaType.BASIC_ACTIVITY

    def test_process_activity_schema_instantiates_its_meta_type(self):
        schema = ProcessActivitySchema("p", "respond")
        assert schema.meta_type is MetaType.PROCESS_ACTIVITY

    def test_resource_schema_instantiates_resource_meta_type(self):
        schema = ResourceSchema("doc", ResourceKind.DATA)
        assert schema.meta_type is MetaType.RESOURCE


class TestDependencyTypes:
    """The dependency type set is fixed (Section 3)."""

    def test_fixed_dependency_palette(self):
        assert {d.name for d in DependencyType} == {
            "SEQUENCE",
            "CONDITION",
            "SYNC_AND",
            "SYNC_OR",
        }

    def test_string_rendering(self):
        assert str(DependencyType.SEQUENCE) == "sequence"
        assert str(DependencyType.SYNC_AND) == "and-join"
