"""Tests for process definition interchange (WfMC Interface 1 in spirit)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    ContextSchema,
    CoreEngine,
    DependencyType,
    DependencyVariable,
    ProcessActivitySchema,
)
from repro.core.context import ContextFieldSpec
from repro.core.resources import ResourceUsage, data_schema
from repro.core.roles import RoleRef
from repro.core.schema import ResourceVariable
from repro.core.serialization import (
    ConditionRegistry,
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from repro.core.states import generic_activity_state_schema
from repro.errors import SchemaError


def rich_process():
    """A process exercising every serializable feature."""
    state_schema = generic_activity_state_schema("custom")
    state_schema.specialize("Running", ["Interviewing", "Writing"])
    basic = BasicActivitySchema(
        "b-interview",
        "interview",
        state_schema=state_schema,
        performer=RoleRef("epidemiologist"),
    )
    basic.add_resource_variable(
        ResourceVariable("notes", data_schema("notes", "str"), ResourceUsage.INPUT)
    )
    review = BasicActivitySchema("b-review", "review")
    process = ProcessActivitySchema("p-study", "study")
    process.add_context_schema(
        ContextSchema(
            "StudyContext",
            [
                ContextFieldSpec("deadline", "int"),
                ContextFieldSpec("lead", "role"),
            ],
        )
    )
    # The same basic schema is shared between two variables.
    process.add_activity_variable(ActivityVariable("first", basic))
    process.add_activity_variable(
        ActivityVariable("second", basic, optional=True)
    )
    process.add_activity_variable(
        ActivityVariable(
            "review",
            review,
            performer=RoleRef("lead", "StudyContext"),
        )
    )
    process.add_dependency(
        DependencyVariable(
            "seq", DependencyType.SEQUENCE, ("first",), "review"
        )
    )
    process.mark_entry("first")
    return process


class TestRoundTrip:
    def test_json_round_trip_preserves_structure(self):
        original = rich_process()
        restored = schema_from_json(schema_to_json(original))
        assert isinstance(restored, ProcessActivitySchema)
        assert restored.schema_id == "p-study"
        assert restored.entry_activities == ["first"]
        assert [v.name for v in restored.activity_variables()] == [
            "first",
            "second",
            "review",
        ]
        assert restored.activity_variable("second").optional
        dependency = restored.dependencies()[0]
        assert dependency.dependency_type is DependencyType.SEQUENCE
        assert dependency.sources == ("first",)

    def test_shared_subschemas_stay_shared(self):
        restored = schema_from_dict(schema_to_dict(rich_process()))
        first = restored.activity_variable("first").activity_schema
        second = restored.activity_variable("second").activity_schema
        assert first is second

    def test_state_schema_specialization_survives(self):
        restored = schema_from_dict(schema_to_dict(rich_process()))
        state_schema = restored.activity_variable("first").activity_schema.state_schema
        assert state_schema.has_state("Interviewing")
        assert state_schema.parent_of("Interviewing") == "Running"
        assert state_schema.can_transition("Ready", "Interviewing")

    def test_scoped_performer_round_trips(self):
        restored = schema_from_dict(schema_to_dict(rich_process()))
        performer = restored.activity_variable("review").performer
        assert performer == RoleRef("lead", "StudyContext")

    def test_context_schema_round_trips(self):
        restored = schema_from_dict(schema_to_dict(rich_process()))
        context = restored.context_schemas()[0]
        assert context.name == "StudyContext"
        assert context.field_spec("deadline").field_type == "int"
        assert context.field_spec("lead").field_type == "role"

    def test_resource_variables_round_trip(self):
        restored = schema_from_dict(schema_to_dict(rich_process()))
        basic = restored.activity_variable("first").activity_schema
        variable = basic.resource_variable("notes")
        assert variable.usage is ResourceUsage.INPUT
        assert variable.schema.value_type == "str"

    def test_restored_schema_registers_and_runs(self):
        engine = CoreEngine()
        restored = schema_from_dict(schema_to_dict(rich_process()))
        engine.register_schema(restored)
        instance = engine.create_process_instance(restored)
        assert instance.context("StudyContext") is not None


class TestConditions:
    def _conditional_process(self, registry):
        go = registry.register("always-go", lambda process: True)
        process = ProcessActivitySchema("p-c", "conditional")
        process.add_activity_variable(
            ActivityVariable("a", BasicActivitySchema("b-a", "a"))
        )
        process.add_activity_variable(
            ActivityVariable("b", BasicActivitySchema("b-b", "b"))
        )
        process.add_dependency(
            DependencyVariable(
                "guard", DependencyType.CONDITION, ("a",), "b", go
            )
        )
        process.mark_entry("a")
        return process

    def test_named_condition_round_trips(self):
        registry = ConditionRegistry()
        original = self._conditional_process(registry)
        restored = schema_from_dict(
            schema_to_dict(original, registry), registry
        )
        dependency = restored.dependencies()[0]
        assert dependency.condition(None) is True

    def test_unregistered_condition_rejected_on_export(self):
        process = ProcessActivitySchema("p-c", "conditional")
        process.add_activity_variable(
            ActivityVariable("a", BasicActivitySchema("b-a", "a"))
        )
        process.add_activity_variable(
            ActivityVariable("b", BasicActivitySchema("b-b", "b"))
        )
        process.add_dependency(
            DependencyVariable(
                "guard", DependencyType.CONDITION, ("a",), "b", lambda p: True
            )
        )
        process.mark_entry("a")
        with pytest.raises(SchemaError, match="not registered"):
            schema_to_dict(process, ConditionRegistry())
        with pytest.raises(SchemaError, match="ConditionRegistry"):
            schema_to_dict(process, None)

    def test_loading_condition_without_registry_rejected(self):
        registry = ConditionRegistry()
        payload = schema_to_dict(self._conditional_process(registry), registry)
        with pytest.raises(SchemaError, match="ConditionRegistry"):
            schema_from_dict(payload, None)

    def test_duplicate_condition_name_rejected(self):
        registry = ConditionRegistry()
        registry.register("x", lambda p: True)
        with pytest.raises(SchemaError):
            registry.register("x", lambda p: False)


class TestErrors:
    def test_version_checked(self):
        payload = schema_to_dict(rich_process())
        payload["format_version"] = 99
        with pytest.raises(SchemaError, match="format version"):
            schema_from_dict(payload)

    def test_missing_root_rejected(self):
        payload = schema_to_dict(rich_process())
        payload["root"] = "ghost"
        with pytest.raises(SchemaError, match="root"):
            schema_from_dict(payload)

    def test_dangling_schema_ref_rejected(self):
        payload = schema_to_dict(rich_process())
        payload["schemas"] = [
            body for body in payload["schemas"]
            if body["schema_id"] != "b-review"
        ]
        with pytest.raises(SchemaError, match="referenced"):
            schema_from_dict(payload)

    def test_conflicting_schema_ids_rejected_on_export(self):
        process = ProcessActivitySchema("p", "x")
        process.add_activity_variable(
            ActivityVariable("a", BasicActivitySchema("dup", "a"))
        )
        process.add_activity_variable(
            ActivityVariable("b", BasicActivitySchema("dup", "b"))
        )
        process.mark_entry("a")
        process.mark_entry("b")
        with pytest.raises(SchemaError, match="share id"):
            schema_to_dict(process)


class TestRoundTripProperties:
    @given(
        n_steps=st.integers(min_value=1, max_value=6),
        optional_mask=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=50)
    def test_generated_linear_processes_round_trip(self, n_steps, optional_mask):
        process = ProcessActivitySchema("p-gen", "generated")
        previous = None
        for index in range(n_steps):
            name = f"s{index}"
            process.add_activity_variable(
                ActivityVariable(
                    name,
                    BasicActivitySchema(f"b-{index}", name),
                    optional=bool(optional_mask >> index & 1) and index > 0,
                )
            )
            if index == 0:
                process.mark_entry(name)
            elif not (optional_mask >> index & 1):
                process.add_dependency(
                    DependencyVariable(
                        f"d{index}",
                        DependencyType.SEQUENCE,
                        (previous,),
                        name,
                    )
                )
            previous = name
        restored = schema_from_dict(schema_to_dict(process))
        assert [v.name for v in restored.activity_variables()] == [
            v.name for v in process.activity_variables()
        ]
        assert len(restored.dependencies()) == len(process.dependencies())
        # Round-trip is idempotent: a second trip gives an equal payload.
        assert schema_to_dict(restored) == schema_to_dict(process)
