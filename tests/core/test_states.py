"""Tests for activity state schemas and state machines (Figure 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.states import (
    CLOSED,
    COMPLETED,
    GENERIC_STATES,
    READY,
    RUNNING,
    SUSPENDED,
    TERMINATED,
    UNINITIALIZED,
    ActivityStateSchema,
    StateMachine,
    Transition,
    generic_activity_state_schema,
)
from repro.errors import (
    InvalidTransitionError,
    StateError,
    UnknownStateError,
)


class TestGenericSchema:
    def test_contains_all_figure4_states(self):
        schema = generic_activity_state_schema()
        for state in GENERIC_STATES:
            assert schema.has_state(state)

    def test_closed_is_nonleaf_with_two_substates(self):
        schema = generic_activity_state_schema()
        assert set(schema.children_of(CLOSED)) == {COMPLETED, TERMINATED}
        assert CLOSED not in schema.leaves()

    def test_initial_state_is_uninitialized(self):
        schema = generic_activity_state_schema()
        assert schema.initial_state == UNINITIALIZED

    def test_terminal_states_are_completed_and_terminated(self):
        schema = generic_activity_state_schema()
        assert set(schema.terminal_states()) == {COMPLETED, TERMINATED}

    def test_happy_path_transitions_allowed(self):
        schema = generic_activity_state_schema()
        assert schema.can_transition(UNINITIALIZED, READY)
        assert schema.can_transition(READY, RUNNING)
        assert schema.can_transition(RUNNING, COMPLETED)

    def test_suspend_resume_cycle_allowed(self):
        schema = generic_activity_state_schema()
        assert schema.can_transition(RUNNING, SUSPENDED)
        assert schema.can_transition(SUSPENDED, RUNNING)

    def test_illegal_transitions_rejected(self):
        schema = generic_activity_state_schema()
        assert not schema.can_transition(UNINITIALIZED, RUNNING)
        assert not schema.can_transition(COMPLETED, RUNNING)
        assert not schema.can_transition(SUSPENDED, COMPLETED)

    def test_no_transition_touches_nonleaf(self):
        schema = generic_activity_state_schema()
        for transition in schema.transitions():
            assert transition.source in schema.leaves()
            assert transition.target in schema.leaves()

    def test_validate_passes(self):
        generic_activity_state_schema().validate()


class TestSchemaConstruction:
    def test_duplicate_state_rejected(self):
        schema = ActivityStateSchema("s")
        schema.add_state("A")
        with pytest.raises(StateError):
            schema.add_state("A")

    def test_transition_requires_known_states(self):
        schema = ActivityStateSchema("s")
        schema.add_state("A")
        with pytest.raises(UnknownStateError):
            schema.add_transition("A", "B")

    def test_self_transition_rejected(self):
        schema = ActivityStateSchema("s")
        schema.add_state("A")
        with pytest.raises(StateError):
            schema.add_transition("A", "A")

    def test_transition_to_nonleaf_rejected(self):
        schema = ActivityStateSchema("s")
        schema.add_state("A")
        schema.add_state("B")
        schema.add_state("B1", parent="B")
        with pytest.raises(StateError):
            schema.add_transition("A", "B")

    def test_substate_under_transitioned_state_rejected(self):
        schema = ActivityStateSchema("s")
        schema.add_state("A")
        schema.add_state("B")
        schema.add_transition("A", "B")
        with pytest.raises(StateError):
            schema.add_state("B1", parent="B")

    def test_initial_state_must_be_leaf(self):
        schema = ActivityStateSchema("s")
        schema.add_state("A")
        schema.add_state("A1", parent="A")
        with pytest.raises(StateError):
            schema.set_initial("A")

    def test_validate_requires_initial(self):
        schema = ActivityStateSchema("s")
        schema.add_state("A")
        with pytest.raises(StateError):
            schema.validate()


class TestSpecialization:
    """Application-specific substate forests (Section 4)."""

    def test_specialize_running_keeps_leaf_only_rule(self):
        schema = generic_activity_state_schema()
        schema.specialize(
            RUNNING, ["Interviewing", "Summarizing"], default="Interviewing"
        )
        schema.validate()
        assert RUNNING not in schema.leaves()
        assert schema.can_transition(READY, "Interviewing")
        assert schema.can_transition("Interviewing", COMPLETED)

    def test_specialize_retargets_all_transitions_to_default(self):
        schema = generic_activity_state_schema()
        schema.specialize(RUNNING, ["R1", "R2"])
        # R1 is the default: it inherits Running's incoming and outgoing.
        assert schema.can_transition(READY, "R1")
        assert schema.can_transition("R1", SUSPENDED)
        assert not schema.can_transition(READY, "R2")

    def test_substate_ancestry(self):
        schema = generic_activity_state_schema()
        schema.specialize(RUNNING, ["R1"])
        schema.specialize("R1", ["R1a"])
        assert schema.ancestors("R1a") == ("R1", RUNNING)
        assert schema.root_of("R1a") == RUNNING
        assert schema.is_substate_of("R1a", RUNNING)
        assert not schema.is_substate_of("R1a", READY)

    def test_forest_roots_are_generic_states(self):
        schema = generic_activity_state_schema()
        schema.specialize(RUNNING, ["R1", "R2"])
        assert set(schema.roots()) == {
            UNINITIALIZED,
            READY,
            RUNNING,
            SUSPENDED,
            CLOSED,
        }

    def test_specialize_requires_substates(self):
        schema = generic_activity_state_schema()
        with pytest.raises(StateError):
            schema.specialize(RUNNING, [])

    def test_specialize_default_must_be_new(self):
        schema = generic_activity_state_schema()
        with pytest.raises(StateError):
            schema.specialize(RUNNING, ["R1"], default="R2")

    def test_specializing_the_initial_state_repoints_it(self):
        """Regression: specializing Uninitialized must move the initial
        designation onto the default substate (found by the interchange
        fuzzer)."""
        schema = generic_activity_state_schema()
        schema.specialize(UNINITIALIZED, ["Drafted", "Imported"])
        assert schema.initial_state == "Drafted"
        schema.validate()
        machine = StateMachine(schema)
        assert machine.current_state == "Drafted"
        machine.transition_to(READY, time=1)

    def test_is_substate_of_completed_under_closed(self):
        schema = generic_activity_state_schema()
        assert schema.is_substate_of(COMPLETED, CLOSED)
        assert schema.is_substate_of(TERMINATED, CLOSED)
        assert not schema.is_substate_of(COMPLETED, TERMINATED)


class TestStateMachine:
    def test_starts_in_initial_state(self):
        machine = StateMachine(generic_activity_state_schema())
        assert machine.current_state == UNINITIALIZED

    def test_valid_walk_records_history(self):
        machine = StateMachine(generic_activity_state_schema())
        machine.transition_to(READY, time=1)
        machine.transition_to(RUNNING, time=2, user="alice")
        machine.transition_to(COMPLETED, time=3, user="alice")
        assert machine.current_state == COMPLETED
        history = machine.history
        assert [c.new_state for c in history] == [READY, RUNNING, COMPLETED]
        assert history[1].user == "alice"
        assert history[0].time == 1

    def test_invalid_transition_raises_and_preserves_state(self):
        machine = StateMachine(generic_activity_state_schema())
        with pytest.raises(InvalidTransitionError):
            machine.transition_to(RUNNING, time=1)
        assert machine.current_state == UNINITIALIZED
        assert machine.history == ()

    def test_unknown_state_raises(self):
        machine = StateMachine(generic_activity_state_schema())
        with pytest.raises(UnknownStateError):
            machine.transition_to("Nirvana", time=1)

    def test_is_in_matches_superstate(self):
        machine = StateMachine(generic_activity_state_schema())
        machine.transition_to(READY, time=1)
        machine.transition_to(RUNNING, time=2)
        machine.transition_to(COMPLETED, time=3)
        assert machine.is_in(COMPLETED)
        assert machine.is_in(CLOSED)
        assert not machine.is_in(TERMINATED)

    def test_is_closed(self):
        machine = StateMachine(generic_activity_state_schema())
        assert not machine.is_closed()
        machine.transition_to(READY, time=1)
        machine.transition_to(TERMINATED, time=2)
        assert machine.is_closed()


@st.composite
def random_walks(draw):
    """A random (possibly invalid) sequence of target states."""
    return draw(
        st.lists(st.sampled_from(GENERIC_STATES), min_size=1, max_size=12)
    )


class TestStateMachineProperties:
    @given(walk=random_walks())
    @settings(max_examples=200)
    def test_machine_never_enters_unreachable_state(self, walk):
        """Whatever is thrown at it, the machine's state is always a leaf
        reachable by declared transitions from the initial state."""
        schema = generic_activity_state_schema()
        machine = StateMachine(schema)
        time = 0
        for target in walk:
            time += 1
            allowed = schema.can_transition(machine.current_state, target)
            if allowed:
                machine.transition_to(target, time=time)
            else:
                with pytest.raises(InvalidTransitionError):
                    machine.transition_to(target, time=time)
            assert machine.current_state in schema.leaves()

    @given(walk=random_walks())
    @settings(max_examples=200)
    def test_history_is_time_monotone_and_chained(self, walk):
        schema = generic_activity_state_schema()
        machine = StateMachine(schema)
        time = 0
        for target in walk:
            time += 1
            if schema.can_transition(machine.current_state, target):
                machine.transition_to(target, time=time)
        history = machine.history
        # Chained: each change's old state is the previous change's new one.
        previous = UNINITIALIZED
        for change in history:
            assert change.old_state == previous
            previous = change.new_state
        times = [c.time for c in history]
        assert times == sorted(times)
