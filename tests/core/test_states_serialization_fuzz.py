"""Property tests: random substate forests survive interchange exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialization import (
    _state_schema_from_dict,
    _state_schema_to_dict,
)
from repro.core.states import generic_activity_state_schema


@st.composite
def specialized_schemas(draw):
    """A generic schema with a random cascade of specializations."""
    schema = generic_activity_state_schema("fuzz")
    # Specializable states: any current leaf with transitions.
    counter = 0
    for __ in range(draw(st.integers(min_value=0, max_value=4))):
        leaves = [
            name
            for name in schema.leaves()
            if schema.successors(name)
            or any(
                schema.can_transition(other, name)
                for other in schema.leaves()
            )
        ]
        if not leaves:
            break
        target = draw(st.sampled_from(sorted(leaves)))
        n_substates = draw(st.integers(min_value=1, max_value=3))
        names = [f"S{counter + i}" for i in range(n_substates)]
        counter += n_substates
        schema.specialize(target, names)
    return schema


class TestStateSchemaFuzz:
    @given(schema=specialized_schemas())
    @settings(max_examples=80)
    def test_round_trip_preserves_forest_and_transitions(self, schema):
        restored = _state_schema_from_dict(_state_schema_to_dict(schema))
        assert set(restored.states()) == set(schema.states())
        assert restored.transitions() == schema.transitions()
        assert restored.initial_state == schema.initial_state
        for name in schema.states():
            assert restored.parent_of(name) == schema.parent_of(name)
        restored.validate()

    @given(schema=specialized_schemas())
    @settings(max_examples=80)
    def test_leaf_only_invariant_always_holds(self, schema):
        """No specialization cascade can ever produce a transition that
        touches a non-leaf (the Section 4 rule)."""
        for transition in schema.transitions():
            assert transition.source in schema.leaves()
            assert transition.target in schema.leaves()

    @given(schema=specialized_schemas())
    @settings(max_examples=80)
    def test_every_leaf_root_chain_terminates_at_a_generic_state(self, schema):
        generic = {
            "Uninitialized", "Ready", "Running", "Suspended", "Closed",
        }
        for name in schema.leaves():
            assert schema.root_of(name) in generic
