"""Tests for activity/process instances and the E_activity payload."""

import pytest

from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    CoreEngine,
    ProcessActivitySchema,
)
from repro.core.instances import ActivityInstance, ProcessInstance
from repro.core.resources import DataResource, data_schema
from repro.errors import EnactmentError, SchemaError


def nested_process(engine):
    leaf = BasicActivitySchema("b-leaf", "leaf")
    inner = ProcessActivitySchema("p-inner", "inner")
    inner.add_activity_variable(ActivityVariable("leaf", leaf))
    inner.mark_entry("leaf")
    outer = ProcessActivitySchema("p-outer", "outer")
    outer.add_activity_variable(ActivityVariable("inner", inner))
    outer.mark_entry("inner")
    engine.register_schema(outer)
    return outer


class TestActivityInstance:
    def test_parent_and_variable_must_come_together(self):
        schema = BasicActivitySchema("b", "x")
        with pytest.raises(EnactmentError):
            ActivityInstance("a-1", schema, parent=None,
                             activity_variable=ActivityVariable("v", schema))

    def test_state_change_record_for_subprocess_names_its_schema(self):
        engine = CoreEngine()
        outer_schema = nested_process(engine)
        outer = engine.create_process_instance(outer_schema)
        inner = engine.create_activity_instance(outer, "inner")
        change = inner.change_state("Ready", time=1)
        assert change.activity_process_schema_id == "p-inner"
        assert change.parent_process_schema_id == "p-outer"
        assert change.activity_variable_id == "inner"

    def test_bind_data_checks_variable_exists(self):
        schema = BasicActivitySchema("b", "x")
        instance = ActivityInstance("a-1", schema)
        with pytest.raises(SchemaError):
            instance.bind_data("ghost", DataResource("d", data_schema("d")))


class TestProcessInstance:
    def test_requires_process_schema(self):
        with pytest.raises(SchemaError):
            ProcessInstance("p-1", BasicActivitySchema("b", "x"))

    def test_child_lookup_errors(self):
        engine = CoreEngine()
        outer_schema = nested_process(engine)
        outer = engine.create_process_instance(outer_schema)
        assert not outer.has_child("inner")
        with pytest.raises(EnactmentError):
            outer.child("inner")

    def test_descendants_preorder(self):
        engine = CoreEngine()
        outer_schema = nested_process(engine)
        outer = engine.create_process_instance(outer_schema)
        inner = engine.create_activity_instance(outer, "inner")
        leaf = engine.create_activity_instance(inner, "leaf")
        assert outer.descendants() == [inner, leaf]

    def test_missing_context_reference(self):
        engine = CoreEngine()
        outer_schema = nested_process(engine)
        outer = engine.create_process_instance(outer_schema)
        with pytest.raises(EnactmentError):
            outer.context("Ghost")

    def test_locals_store(self):
        engine = CoreEngine()
        outer_schema = nested_process(engine)
        outer = engine.create_process_instance(outer_schema)
        outer.locals["notes"] = "x"
        assert outer.locals["notes"] == "x"
