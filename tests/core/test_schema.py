"""Tests for activity/process schemas and their variables (Figure 3)."""

import pytest

from repro.core.context import ContextFieldSpec, ContextSchema
from repro.core.metamodel import DependencyType
from repro.core.resources import ResourceUsage, data_schema, helper_schema
from repro.core.roles import RoleRef
from repro.core.schema import (
    ActivityVariable,
    BasicActivitySchema,
    DependencyVariable,
    ProcessActivitySchema,
    ResourceVariable,
)
from repro.errors import DependencyError, SchemaError


def simple_basic(schema_id="b1", name="write"):
    return BasicActivitySchema(schema_id, name)


def process_with_two_steps():
    process = ProcessActivitySchema("p1", "report")
    process.add_activity_variable(ActivityVariable("draft", simple_basic("b1")))
    process.add_activity_variable(
        ActivityVariable("review", simple_basic("b2", "review"))
    )
    process.add_dependency(
        DependencyVariable("seq", DependencyType.SEQUENCE, ("draft",), "review")
    )
    process.mark_entry("draft")
    return process


class TestBasicActivitySchema:
    def test_allows_input_output_helper_variables(self):
        schema = simple_basic()
        schema.add_resource_variable(
            ResourceVariable("doc", data_schema("doc"), ResourceUsage.INPUT)
        )
        schema.add_resource_variable(
            ResourceVariable("out", data_schema("out"), ResourceUsage.OUTPUT)
        )
        schema.add_resource_variable(
            ResourceVariable("editor", helper_schema("ed"), ResourceUsage.HELPER)
        )
        assert len(schema.resource_variables()) == 3

    def test_rejects_role_variables(self):
        schema = simple_basic()
        with pytest.raises(SchemaError):
            schema.add_resource_variable(
                ResourceVariable("r", data_schema("r"), ResourceUsage.ROLE)
            )

    def test_duplicate_resource_variable_rejected(self):
        schema = simple_basic()
        schema.add_resource_variable(
            ResourceVariable("doc", data_schema("doc"), ResourceUsage.INPUT)
        )
        with pytest.raises(SchemaError):
            schema.add_resource_variable(
                ResourceVariable("doc", data_schema("doc"), ResourceUsage.INPUT)
            )

    def test_has_generic_state_schema_by_default(self):
        schema = simple_basic()
        assert schema.state_schema.has_state("Running")
        schema.validate()

    def test_performer_role(self):
        schema = BasicActivitySchema("b", "x", performer=RoleRef("analyst"))
        assert schema.performer.role_name == "analyst"


class TestProcessActivitySchema:
    def test_allows_role_and_local_variables(self):
        process = ProcessActivitySchema("p", "x")
        process.add_resource_variable(
            ResourceVariable("r", data_schema("r"), ResourceUsage.ROLE)
        )
        process.add_resource_variable(
            ResourceVariable("l", data_schema("l"), ResourceUsage.LOCAL)
        )

    def test_rejects_helper_variables(self):
        process = ProcessActivitySchema("p", "x")
        with pytest.raises(SchemaError):
            process.add_resource_variable(
                ResourceVariable("h", helper_schema("h"), ResourceUsage.HELPER)
            )

    def test_duplicate_activity_variable_rejected(self):
        process = ProcessActivitySchema("p", "x")
        process.add_activity_variable(ActivityVariable("a", simple_basic()))
        with pytest.raises(SchemaError):
            process.add_activity_variable(ActivityVariable("a", simple_basic("b9")))

    def test_dependency_must_reference_known_variables(self):
        process = ProcessActivitySchema("p", "x")
        process.add_activity_variable(ActivityVariable("a", simple_basic()))
        with pytest.raises(DependencyError):
            process.add_dependency(
                DependencyVariable(
                    "d", DependencyType.SEQUENCE, ("a",), "ghost"
                )
            )

    def test_validate_accepts_wired_process(self):
        process_with_two_steps().validate()

    def test_validate_rejects_unreachable_mandatory_activity(self):
        process = ProcessActivitySchema("p", "x")
        process.add_activity_variable(ActivityVariable("a", simple_basic()))
        process.add_activity_variable(
            ActivityVariable("b", simple_basic("b2", "other"))
        )
        process.mark_entry("a")
        with pytest.raises(SchemaError):
            process.validate()

    def test_optional_activities_may_be_unreachable(self):
        process = ProcessActivitySchema("p", "x")
        process.add_activity_variable(ActivityVariable("a", simple_basic()))
        process.add_activity_variable(
            ActivityVariable("b", simple_basic("b2", "other"), optional=True)
        )
        process.mark_entry("a")
        process.validate()

    def test_validate_requires_subactivities(self):
        with pytest.raises(SchemaError):
            ProcessActivitySchema("p", "empty").validate()

    def test_mark_entry_requires_known_variable(self):
        process = ProcessActivitySchema("p", "x")
        with pytest.raises(SchemaError):
            process.mark_entry("ghost")

    def test_duplicate_context_schema_rejected(self):
        process = ProcessActivitySchema("p", "x")
        context = ContextSchema("C", [ContextFieldSpec("f")])
        process.add_context_schema(context)
        with pytest.raises(SchemaError):
            process.add_context_schema(ContextSchema("C", []))

    def test_dependencies_targeting(self):
        process = process_with_two_steps()
        targeting = process.dependencies_targeting("review")
        assert len(targeting) == 1
        assert targeting[0].sources == ("draft",)
        assert process.dependencies_targeting("draft") == ()


class TestDependencyVariable:
    def test_sequence_requires_single_source(self):
        with pytest.raises(DependencyError):
            DependencyVariable(
                "d", DependencyType.SEQUENCE, ("a", "b"), "c"
            )

    def test_condition_requires_callable(self):
        with pytest.raises(DependencyError):
            DependencyVariable("d", DependencyType.CONDITION, ("a",), "b")

    def test_empty_sources_rejected(self):
        with pytest.raises(DependencyError):
            DependencyVariable("d", DependencyType.SYNC_AND, (), "b")

    def test_and_join_accepts_many_sources(self):
        dependency = DependencyVariable(
            "d", DependencyType.SYNC_AND, ("a", "b", "c"), "z"
        )
        assert dependency.sources == ("a", "b", "c")


class TestActivityCounting:
    def test_count_activities_recursive(self):
        inner = process_with_two_steps()
        outer = ProcessActivitySchema("p-outer", "outer")
        outer.add_activity_variable(ActivityVariable("sub", inner))
        outer.add_activity_variable(
            ActivityVariable("extra", simple_basic("b-x", "extra"))
        )
        outer.mark_entry("sub")
        outer.mark_entry("extra")
        assert outer.count_activities(recursive=False) == 2
        assert outer.count_activities(recursive=True) == 4
