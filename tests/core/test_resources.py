"""Tests for data and helper resources (Section 4)."""

import pytest

from repro.core.resources import (
    DataResource,
    HelperResource,
    ResourceKind,
    ResourceSchema,
    ResourceUsage,
    data_schema,
    helper_schema,
)
from repro.errors import ResourceError


class TestResourceSchema:
    def test_int_value_accepted(self):
        schema = data_schema("count", "int")
        schema.check_value(7)

    def test_wrong_type_rejected(self):
        schema = data_schema("count", "int")
        with pytest.raises(ResourceError):
            schema.check_value("seven")

    def test_bool_is_not_an_int(self):
        schema = data_schema("count", "int")
        with pytest.raises(ResourceError):
            schema.check_value(True)

    def test_any_accepts_everything(self):
        schema = data_schema("blob")
        schema.check_value(object())

    def test_unknown_value_type_rejected(self):
        schema = ResourceSchema("x", ResourceKind.DATA, value_type="complex")
        with pytest.raises(ResourceError):
            schema.check_value(3)

    def test_custom_validator(self):
        schema = data_schema("severity", "int", validator=lambda v: 1 <= v <= 5)
        schema.check_value(3)
        with pytest.raises(ResourceError):
            schema.check_value(9)


class TestDataResource:
    def test_assign_checks_type(self):
        resource = DataResource("r1", data_schema("count", "int"))
        resource.assign(4)
        assert resource.value == 4
        with pytest.raises(ResourceError):
            resource.assign("four")

    def test_initial_value_checked(self):
        with pytest.raises(ResourceError):
            DataResource("r1", data_schema("count", "int"), value="bad")

    def test_requires_data_schema(self):
        with pytest.raises(ResourceError):
            DataResource("r1", helper_schema("editor"))


class TestHelperResource:
    def test_invoke_counts_and_delegates(self):
        calls = []
        helper = HelperResource(
            "h1", helper_schema("editor"), program=lambda x: calls.append(x) or x
        )
        assert helper.invoke("doc") == "doc"
        assert helper.invocations == 1
        assert calls == ["doc"]

    def test_requires_helper_schema(self):
        with pytest.raises(ResourceError):
            HelperResource("h1", data_schema("count", "int"))


class TestResourceUsage:
    def test_usage_palette(self):
        assert {u.name for u in ResourceUsage} == {
            "INPUT",
            "OUTPUT",
            "HELPER",
            "ROLE",
            "LOCAL",
        }
