"""The channel multiplexer: framing, credits, gather, crash attribution.

These tests drive :class:`MuxChannel` and :class:`ChannelMultiplexer`
over raw ``os.pipe`` pairs with the test playing the worker — no forked
processes, so every byte on the wire is under the test's control
(partial frames, out-of-order responses, last-words error frames).
"""

import os

import pytest

from repro.parallel.codec import BinaryDecoder, BinaryEncoder
from repro.parallel.mux import (
    ChannelMultiplexer,
    MuxChannel,
    inflight_snapshot,
)
from repro.parallel.wire import (
    ACKED_KEY,
    SEQ_KEY,
    ack_frame,
    frame_bytes,
)


class FakeWorker:
    """One channel plus the worker-side pipe ends, with cleanup."""

    def __init__(self, shard_id=0, codec="json", max_inflight=4):
        to_worker_read, to_worker_write = os.pipe()
        to_facade_read, to_facade_write = os.pipe()
        self.channel = MuxChannel(
            shard_id, to_worker_write, to_facade_read, codec, max_inflight
        )
        #: The worker's read end of the facade-to-worker pipe.
        self.request_fd = to_worker_read
        #: The worker's write end of the worker-to-facade pipe.
        self.response_fd = to_facade_write
        self._encoder = BinaryEncoder() if codec == "binary" else None
        self._decoder = BinaryDecoder() if codec == "binary" else None

    def respond(self, frame):
        """Write *frame* to the facade as the worker would."""
        if self._encoder is not None:
            os.write(self.response_fd, self._encoder.encode_frame(frame))
        else:
            os.write(self.response_fd, frame_bytes(frame))

    def respond_raw(self, data):
        os.write(self.response_fd, data)

    def sent_frames(self):
        """Decode every complete frame the facade has written so far."""
        os.set_blocking(self.request_fd, False)
        data = bytearray()
        while True:
            try:
                chunk = os.read(self.request_fd, 1 << 16)
            except BlockingIOError:
                break
            if not chunk:
                break
            data += chunk
        frames = []
        position = 0
        while len(data) - position >= 4:
            length = int.from_bytes(data[position:position + 4], "big")
            payload = bytes(data[position + 4:position + 4 + length])
            position += 4 + length
            if self._decoder is not None:
                frames.append(self._decoder.decode_payload(payload))
            else:
                import json

                frames.append(json.loads(payload.decode("utf-8")))
        return frames

    def close(self):
        self.channel.close_fds()
        for fd in (self.request_fd, self.response_fd):
            try:
                os.close(fd)
            except OSError:
                pass


@pytest.fixture(params=["json", "binary"])
def worker(request):
    fake = FakeWorker(codec=request.param)
    yield fake
    fake.close()


class TestMuxChannel:
    def test_round_trip_both_directions(self, worker):
        worker.channel.queue({"kind": "stats_request"})
        assert worker.sent_frames() == [{"kind": "stats_request"}]
        worker.respond({"kind": "stats", "stats": {"events": 3}})
        worker.channel.pump_reads()
        assert list(worker.channel.inbox) == [
            {"kind": "stats", "stats": {"events": 3}}
        ]

    def test_partial_frames_reassemble_byte_by_byte(self, worker):
        if worker._encoder is not None:
            data = worker._encoder.encode_frame({"kind": "stats", "n": 7})
        else:
            data = frame_bytes({"kind": "stats", "n": 7})
        for index, byte in enumerate(data):
            worker.respond_raw(bytes([byte]))
            worker.channel.pump_reads()
            if index < len(data) - 1:
                assert not worker.channel.inbox
        assert list(worker.channel.inbox) == [{"kind": "stats", "n": 7}]
        assert worker.channel.dead is None

    def test_event_frames_open_the_credit_window(self, worker):
        channel = worker.channel
        assert channel.outstanding == 0
        assert channel.has_credit()
        # The first event frame defines the window origin — here a
        # replayed journal tail starting at sequence 5.
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 5})
        assert channel.last_acked_seq == 4
        assert channel.outstanding == 1
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 6})
        assert channel.outstanding == 2

    def test_standalone_acks_grant_credit_without_reaching_the_inbox(
        self, worker
    ):
        channel = worker.channel
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 0})
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 1})
        worker.respond(ack_frame(1))
        channel.pump_reads()
        assert channel.outstanding == 0
        assert not channel.inbox

    def test_piggybacked_acks_grant_credit_and_deliver_the_frame(
        self, worker
    ):
        channel = worker.channel
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 0})
        worker.respond({"kind": "stats", "stats": {}, ACKED_KEY: 0})
        channel.pump_reads()
        assert channel.outstanding == 0
        assert len(channel.inbox) == 1

    def test_stale_acks_never_rewind_the_window(self, worker):
        channel = worker.channel
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 0})
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 1})
        worker.respond(ack_frame(1))
        worker.respond(ack_frame(0))
        channel.pump_reads()
        assert channel.last_acked_seq == 1

    def test_error_frames_mark_the_channel_dead_with_attribution(
        self, worker
    ):
        worker.respond({"kind": "error", "error": "unknown kind 'x'"})
        worker.channel.pump_reads()
        assert worker.channel.dead == "worker error: unknown kind 'x'"
        assert not worker.channel.inbox

    def test_eof_marks_the_channel_dead(self, worker):
        worker.respond({"kind": "stats", "stats": {}})
        os.close(worker.response_fd)
        worker.channel.pump_reads()
        # Frames already on the wire still parse before the EOF lands
        # (a short read defers the EOF check to the next readiness
        # wake-up, which the selector delivers immediately).
        assert len(worker.channel.inbox) == 1
        worker.channel.pump_reads()
        assert worker.channel.dead == "channel closed"

    def test_oversized_length_prefix_is_rejected(self, worker):
        worker.respond_raw((1 << 30).to_bytes(4, "big"))
        worker.channel.pump_reads()
        assert worker.channel.dead is not None
        assert "receive failed" in worker.channel.dead

    def test_queueing_on_a_dead_channel_raises(self, worker):
        worker.channel.fail("worker error: boom")
        with pytest.raises(BrokenPipeError):
            worker.channel.queue({"kind": "stats_request"})

    def test_partial_writes_resume_where_they_stopped(self):
        worker = FakeWorker(codec="json")
        try:
            channel = worker.channel
            # Far larger than a pipe buffer, so the first pump stops at
            # a partial write mid-frame.
            frame = {"kind": "events", "blob": "x" * 400_000}
            expected = frame_bytes(frame)
            channel.queue(frame)
            assert channel.wants_write
            assert 0 < channel.pending_bytes < len(expected)
            received = bytearray()
            while len(received) < len(expected):
                channel.pump_writes()
                received += os.read(worker.request_fd, 1 << 16)
            assert bytes(received) == expected
            assert not channel.wants_write
            assert channel.pending_bytes == 0
        finally:
            worker.close()

    def test_inflight_snapshot_shapes_gauge_labels(self, worker):
        worker.channel.queue({"kind": "events", "events": [], SEQ_KEY: 0})
        snapshot = inflight_snapshot([worker.channel])
        assert snapshot == {(str(worker.channel.shard_id),): 1.0}


class TestChannelMultiplexer:
    @pytest.fixture
    def pair(self):
        mux = ChannelMultiplexer()
        workers = [FakeWorker(shard_id=index) for index in range(2)]
        for fake in workers:
            mux.register(fake.channel)
        yield mux, workers
        mux.close()
        for fake in workers:
            fake.close()

    def test_gather_collects_out_of_order_responses(self, pair):
        mux, workers = pair
        for fake in workers:
            fake.channel.queue({"kind": "stats_request"})
        # Shard 1 answers before shard 0 — the gather must not care.
        workers[1].respond({"kind": "stats", "stats": {"shard": 1}})
        workers[0].respond({"kind": "stats", "stats": {"shard": 0}})
        frames, crashed = mux.gather({0: "stats", 1: "stats"})
        assert crashed == {}
        assert frames[0]["stats"] == {"shard": 0}
        assert frames[1]["stats"] == {"shard": 1}

    def test_gather_attributes_a_mid_wave_worker_error(self, pair):
        mux, workers = pair
        workers[0].respond({"kind": "stats", "stats": {}})
        workers[1].respond({"kind": "error", "error": "journal torn"})
        frames, crashed = mux.gather({0: "stats", 1: "stats"})
        assert 0 in frames
        assert crashed == {1: "worker error: journal torn"}

    def test_gather_flags_a_genuine_protocol_violation(self, pair):
        mux, workers = pair
        workers[0].respond({"kind": "stats", "stats": {}})
        workers[1].respond({"kind": "results", "results": []})
        frames, crashed = mux.gather({0: "stats", 1: "stats"})
        assert 0 in frames
        assert "protocol violation" in crashed[1]
        assert "'results'" in crashed[1]

    def test_gather_completes_the_wave_despite_one_crash(self, pair):
        mux, workers = pair
        os.close(workers[0].response_fd)
        workers[1].respond({"kind": "stats", "stats": {"ok": True}})
        frames, crashed = mux.gather({0: "stats", 1: "stats"})
        assert crashed == {0: "channel closed"}
        assert frames[1]["stats"] == {"ok": True}

    def test_wait_for_credit_counts_the_stall_and_recovers(self, pair):
        mux, workers = pair
        stalled = []
        mux.on_stall = stalled.append
        channel = workers[0].channel
        channel.max_inflight = 1
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 0})
        assert not channel.has_credit()
        # The ack is already on the wire; the wait just has to pump.
        workers[0].respond(ack_frame(0))
        assert mux.wait_for_credit(channel)
        assert channel.stalls == 1
        assert stalled == [channel]
        # With credit in hand the wait is free — no new stall.
        assert mux.wait_for_credit(channel)
        assert channel.stalls == 1

    def test_wait_for_credit_surfaces_a_dead_channel(self, pair):
        mux, workers = pair
        channel = workers[0].channel
        channel.max_inflight = 1
        channel.queue({"kind": "events", "events": [], SEQ_KEY: 0})
        os.close(workers[0].response_fd)
        assert not mux.wait_for_credit(channel)
        assert channel.dead == "channel closed"

    def test_unregister_is_idempotent_and_identity_guarded(self, pair):
        mux, workers = pair
        channel = workers[0].channel
        mux.unregister(channel)
        mux.unregister(channel)
        assert mux.channel(0) is None
        assert mux.channel(1) is workers[1].channel
