"""Binary codec round-trips: values, events, interning, negotiation."""

import io

import pytest

from repro.errors import WireError
from repro.events.event import Event
from repro.events.producers import ACTIVITY_EVENT_TYPE, CONTEXT_EVENT_TYPE
from repro.observability.provenance import ProvenanceNode
from repro.parallel.codec import (
    HELLO_MAGIC,
    INTERN_MAX,
    BinaryDecoder,
    BinaryEncoder,
    events_frame,
    frame_to_jsonable,
    make_reader,
    make_writer,
    read_hello,
    write_hello,
)
from repro.parallel.wire import event_to_wire


def roundtrip(frame, encoder=None, decoder=None):
    encoder = encoder if encoder is not None else BinaryEncoder()
    decoder = decoder if decoder is not None else BinaryDecoder()
    data = encoder.encode_frame(frame)
    return decoder.decode_payload(memoryview(data)[4:])


def activity_event(instance="tf-001", time=41, provenance=None):
    event = Event.trusted(
        ACTIVITY_EVENT_TYPE,
        {
            "time": time,
            "source": "E_activity",
            "activityInstanceId": "act-1",
            "activityVariableId": "State",
            "parentProcessSchemaId": "P-TF",
            "parentProcessInstanceId": instance,
            "oldValue": "Running",
            "newValue": "Completed",
        },
    )
    if provenance is not None:
        event.provenance = provenance
    return event


class TestValueRoundTrips:
    def test_scalars(self):
        frame = {
            "none": None,
            "yes": True,
            "no": False,
            "int": 41,
            "big": 1 << 80,
            "neg": -(1 << 80),
            "negsmall": -1,
            "float": 2.5,
            "str": "hello",
            "empty": "",
        }
        assert roundtrip(frame) == frame

    def test_bool_is_not_confused_with_int(self):
        back = roundtrip({"a": True, "b": 1, "c": False, "d": 0})
        assert back["a"] is True
        assert back["b"] == 1 and type(back["b"]) is int
        assert back["c"] is False
        assert back["d"] == 0 and type(back["d"]) is int

    def test_composites(self):
        frame = {
            "list": [1, "two", [3, None]],
            "tuple": (1, 2, ("nested", 3)),
            "fset": frozenset({("P-TF", "tf-001"), ("P-TF", "tf-002")}),
            "dict": {"inner": {"$fs": "not a tag here"}},
        }
        back = roundtrip(frame)
        assert back == frame
        assert type(back["tuple"]) is tuple
        assert type(back["tuple"][2]) is tuple
        assert type(back["fset"]) is frozenset

    def test_dollar_keys_survive_without_tag_collision(self):
        # The JSON path must wrap these in "$d"; the binary path carries
        # them natively.
        frame = {"$fs": [1], "$t": "x", "$d": {"$fs": 2}}
        assert roundtrip(frame) == frame

    def test_long_strings_are_not_interned(self):
        long = "x" * (INTERN_MAX + 1)
        encoder = BinaryEncoder()
        decoder = BinaryDecoder()
        assert roundtrip({"a": long}, encoder, decoder) == {"a": long}
        assert decoder.interned_strings == ["a"]

    def test_unencodable_value_raises_wire_error(self):
        with pytest.raises(WireError):
            BinaryEncoder().encode_frame({"bad": object()})


class TestEventRoundTrips:
    def test_event_params_and_type(self):
        frame = events_frame([activity_event()], "binary")
        back = roundtrip(frame)
        event = back["events"][0]
        assert event.event_type is ACTIVITY_EVENT_TYPE
        assert dict(event.params) == dict(activity_event().params)

    def test_context_event_frozenset_parameter(self):
        associations = frozenset({("P-TF", "tf-001"), ("P-TF", "tf-002")})
        event = Event.trusted(
            CONTEXT_EVENT_TYPE,
            {
                "time": 7,
                "source": "E_context",
                "contextName": "Shared",
                "contextId": "ctx-1",
                "fieldName": "status",
                "oldValue": None,
                "newValue": "ok",
                "processAssociations": associations,
            },
        )
        back = roundtrip(events_frame([event], "binary"))
        assert back["events"][0].params["processAssociations"] == associations

    def test_provenance_chain(self):
        leaf = ProvenanceNode(
            event_id=1,
            node="producer",
            kind="primitive",
            event_type="T_activity",
            logical_time=41,
            summary=("activity", "act-1", "Running", "Completed"),
        )
        root = ProvenanceNode(
            event_id=2,
            node="detector",
            kind="operator",
            event_type="C[P-TF]",
            logical_time=41,
            summary="matched",
            inputs=(leaf,),
        )
        event = activity_event(provenance=root)
        back = roundtrip(events_frame([event], "binary"))
        chain = back["events"][0].provenance
        assert chain.signature() == root.signature()
        assert chain.event_id == 2
        assert chain.inputs[0].summary == leaf.summary

    def test_steady_state_events_shrink(self):
        encoder = BinaryEncoder()
        first = encoder.encode_frame(
            events_frame([activity_event("tf-001", 1)], "binary")
        )
        second = encoder.encode_frame(
            events_frame([activity_event("tf-001", 2)], "binary")
        )
        # Every string and the key schema are interned after frame one.
        assert len(second) < len(first) / 3


class TestInterning:
    def test_tables_persist_across_frames(self):
        encoder = BinaryEncoder()
        decoder = BinaryDecoder()
        for time in range(5):
            back = roundtrip(
                events_frame([activity_event(time=time)], "binary"),
                encoder,
                decoder,
            )
            assert back["events"][0].params["time"] == time
        assert "T_activity" in decoder.interned_strings

    def test_reset_forgets_the_tables(self):
        encoder = BinaryEncoder()
        decoder = BinaryDecoder()
        roundtrip({"k": "shared-string"}, encoder, decoder)
        encoder.reset()
        decoder.reset()
        assert roundtrip({"k": "shared-string"}, encoder, decoder) == {
            "k": "shared-string"
        }
        assert decoder.interned_strings == ["k", "shared-string"]

    def test_stale_decoder_without_reset_misreads_refs(self):
        # Documents WHY respawn must reset both sides together: a fresh
        # encoder speaking to a stale decoder (or vice versa) is a
        # protocol error surfaced as WireError/garbage, which is exactly
        # what the worker-respawn fresh-channel rule prevents.
        encoder = BinaryEncoder()
        decoder = BinaryDecoder()
        roundtrip({"k": "v"}, encoder, decoder)
        fresh_encoder = BinaryEncoder()
        data = fresh_encoder.encode_frame({"k": "v"})
        # The stale decoder re-appends defines: tables now disagree with
        # the fresh encoder's (lengths differ), the canary of a skew.
        decoder.decode_payload(memoryview(data)[4:])
        assert len(decoder.interned_strings) != len(
            fresh_encoder._refs
        )

    def test_seed_continues_a_decoders_tables(self):
        # Stream one: the original writer.
        original = BinaryEncoder()
        first = original.encode_frame(
            events_frame([activity_event()], "binary")
        )
        # Reopen: a decoder consumes the existing stream, a successor
        # encoder adopts its tables and appends.
        reopen = BinaryDecoder()
        reopen.decode_payload(memoryview(first)[4:])
        successor = BinaryEncoder()
        successor.seed(reopen.interned_strings, reopen.interned_compounds)
        second = successor.encode_frame(
            events_frame([activity_event(time=99)], "binary")
        )
        # A fresh decoder replaying the whole stream agrees — the
        # successor's refs resolve against frame one's defines.
        replay = BinaryDecoder()
        back = replay.decode_payload(memoryview(first)[4:])
        assert back["events"][0].params["time"] == 41
        back = replay.decode_payload(memoryview(second)[4:])
        assert back["events"][0].params["time"] == 99
        # Seeding matched the original writer byte-for-byte.
        assert second == original.encode_frame(
            events_frame([activity_event(time=99)], "binary")
        )

    def test_nested_compound_ids_agree(self):
        # Post-order id assignment: a frozenset of tuples defines the
        # member tuples first on both sides.
        inner_a = ("P-TF", "tf-001")
        inner_b = ("P-TF", "tf-002")
        outer = frozenset({inner_a, inner_b})
        encoder = BinaryEncoder()
        decoder = BinaryDecoder()
        assert roundtrip({"s": outer}, encoder, decoder) == {"s": outer}
        # Second frame: everything is refs, and they resolve correctly.
        back = roundtrip(
            {"s": outer, "a": inner_a, "b": inner_b}, encoder, decoder
        )
        assert back == {"s": outer, "a": inner_a, "b": inner_b}

    def test_unhashable_tuple_encodes_inline(self):
        value = ("key", {"nested": "dict"})
        assert roundtrip({"v": value}) == {"v": value}


class TestDecodeErrors:
    def encoded(self, frame):
        return BinaryEncoder().encode_frame(frame)[4:]

    def test_truncation_raises_wire_error_at_every_cut(self):
        payload = self.encoded(
            events_frame(
                [activity_event()],
                "binary",
            )
        )
        for cut in range(len(payload)):
            with pytest.raises(WireError):
                BinaryDecoder().decode_payload(payload[:cut])

    def test_trailing_bytes_raise(self):
        payload = self.encoded({"k": 1})
        with pytest.raises(WireError):
            BinaryDecoder().decode_payload(payload + b"\x00")

    def test_unknown_tag_raises(self):
        with pytest.raises(WireError):
            BinaryDecoder().decode_payload(bytes((200,)))

    def test_undefined_ref_raises(self):
        from repro.parallel.codec import T_DICT, T_REF

        with pytest.raises(WireError):
            BinaryDecoder().decode_payload(bytes((T_DICT, 1, T_REF, 5)))

    def test_non_dict_frame_raises(self):
        payload = bytes((1,))  # T_TRUE: a bare scalar, not a frame
        with pytest.raises(WireError):
            BinaryDecoder().decode_payload(payload)


class TestChannelWrappers:
    def test_writer_reader_round_trip(self):
        stream = io.BytesIO()
        writer = make_writer(stream, "binary")
        frames = [
            events_frame([activity_event(time=t)], "binary")
            for t in range(3)
        ] + [{"kind": "stats"}]
        for frame in frames:
            writer.write(frame)
        stream.seek(0)
        reader = make_reader(stream, "binary")
        for frame in frames:
            back = reader.read()
            assert back["kind"] == frame["kind"]
        assert reader.read() is None

    def test_json_wrappers_speak_the_legacy_framing(self):
        stream = io.BytesIO()
        make_writer(stream, "json").write({"kind": "stats"})
        stream.seek(0)
        from repro.parallel.wire import read_frame

        assert read_frame(stream) == {"kind": "stats"}

    def test_unknown_codec_rejected(self):
        with pytest.raises(WireError):
            make_writer(io.BytesIO(), "msgpack")
        with pytest.raises(WireError):
            make_reader(io.BytesIO(), "msgpack")

    def test_hello_negotiation(self):
        for codec in ("binary", "json"):
            stream = io.BytesIO()
            write_hello(stream, codec)
            stream.seek(0)
            assert read_hello(stream) == codec

    def test_bad_hello_raises(self):
        stream = io.BytesIO(b"XXXX\x01")
        with pytest.raises(WireError):
            read_hello(stream)
        stream = io.BytesIO(HELLO_MAGIC + b"\x09")
        with pytest.raises(WireError):
            read_hello(stream)


class TestDebugRendering:
    def test_frame_to_jsonable_matches_the_json_path(self):
        event = activity_event()
        binary_form = frame_to_jsonable(events_frame([event], "binary"))
        json_form = events_frame([event], "json")
        # The JSON path omits provenance on channel frames; for an event
        # without provenance the rendering is identical.
        assert binary_form == json_form

    def test_frame_to_jsonable_is_json_serializable(self):
        import json

        event = activity_event(
            provenance=ProvenanceNode(
                event_id=1,
                node="p",
                kind="primitive",
                event_type="T_activity",
                logical_time=1,
                summary=("activity", "a", "x", "y"),
            )
        )
        frame = {
            "kind": "events",
            "events": [event],
            "extra": (1, frozenset({"a"})),
        }
        text = json.dumps(frame_to_jsonable(frame))
        assert "T_activity" in text

    def test_events_frame_json_uses_wire_dicts(self):
        event = activity_event()
        frame = events_frame([event], "json")
        assert frame["events"][0] == event_to_wire(event)
