"""The sharding facade, serial backend: API, merge, differential."""

import pytest

from repro.errors import ParallelError
from repro.parallel import (
    FederationBlueprint,
    ShardConfig,
    ShardSpec,
    ShardedFederation,
)
from repro.parallel.host import ShardHost
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload


def small_workload(**overrides):
    defaults = dict(forces=4, windows_per_force=2, events_per_force=30)
    defaults.update(overrides)
    return ShardStreamWorkload(ShardStreamConfig(**defaults))


def run(workload, shards, instrument=True, backend="serial"):
    with ShardedFederation(
        workload.blueprint(),
        ShardConfig(shards=shards, backend=backend, instrument=instrument),
    ) as federation:
        federation.ingest(workload.events())
        return federation.drain(), federation.stats()


class TestShardConfig:
    def test_rejects_zero_shards(self):
        with pytest.raises(ParallelError):
            ShardConfig(shards=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ParallelError):
            ShardConfig(backend="threads")

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ParallelError):
            ShardConfig(batch_size=0)


class TestSerialFederation:
    def test_every_expected_notification_is_delivered(self):
        workload = small_workload()
        notifications, stats = run(workload, shards=2)
        assert len(notifications) == workload.expected_notifications()
        assert stats["composites_recognized"] == (
            workload.expected_recognitions()
        )
        assert stats["shards_alive"] == 2

    def test_merge_order_is_the_merge_key_order(self):
        notifications, __ = run(small_workload(), shards=3)
        keys = [n.merge_key for n in notifications]
        assert keys == sorted(keys)

    def test_signatures_present_when_instrumented(self):
        notifications, __ = run(small_workload(), shards=2, instrument=True)
        assert all(n.signature is not None for n in notifications)

    def test_sharded_is_a_reordering_of_serial(self):
        workload = small_workload()
        base, __ = run(workload, shards=1)
        sharded, __ = run(workload, shards=3)
        assert sorted(map(repr, (n.signature for n in sharded))) == (
            sorted(map(repr, (n.signature for n in base)))
        )

    def test_per_instance_order_is_preserved(self):
        workload = small_workload(windows_per_force=3)

        def per_instance(notifications):
            streams = {}
            for n in notifications:
                streams.setdefault(n.process_instance_id, []).append(
                    n.signature
                )
            return streams

        base, __ = run(workload, shards=1)
        sharded, __ = run(workload, shards=3)
        assert per_instance(sharded) == per_instance(base)

    def test_runtime_deploy_and_undeploy_fan_out(self):
        workload = small_workload(windows_per_force=1)
        blueprint = workload.blueprint()
        extra = ShardSpec(
            spec_id="spec-extra",
            process_schema_id=workload.config.process_schema_id,
            text=workload.specification_text(0).replace("AS_TF", "AS_XX"),
        )
        with ShardedFederation(
            blueprint, ShardConfig(shards=2, backend="serial")
        ) as federation:
            before = federation.stats()["specs_deployed"]
            federation.deploy(extra)
            assert federation.stats()["specs_deployed"] == before + 2
            assert extra in federation.blueprint.specifications
            federation.undeploy("spec-extra")
            assert federation.stats()["specs_deployed"] == before
            assert extra not in federation.blueprint.specifications

    def test_duplicate_deploy_raises(self):
        workload = small_workload(windows_per_force=1)
        with ShardedFederation(
            workload.blueprint(), ShardConfig(shards=2)
        ) as federation:
            with pytest.raises(ParallelError):
                federation.deploy(workload.blueprint().specifications[0])

    def test_buffering_respects_batch_size(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(),
            ShardConfig(shards=2, batch_size=1000),
        ) as federation:
            federation.ingest(workload.events()[:10])
            assert sum(
                row["buffered"] for row in federation.shard_stats()
            ) == 10
            federation.flush_buffers()
            assert sum(
                row["buffered"] for row in federation.shard_stats()
            ) == 0

    def test_healthy_and_close_idempotent(self):
        workload = small_workload(windows_per_force=1)
        federation = ShardedFederation(
            workload.blueprint(), ShardConfig(shards=2)
        )
        assert federation.healthy()
        federation.close()
        federation.close()


class TestShardHost:
    def test_blueprint_with_unknown_member_is_rejected(self):
        blueprint = FederationBlueprint()
        blueprint.add_participant("u-1", "analyst")
        blueprint.add_role("team", ["u-1", "u-ghost"])
        host = ShardHost(0, 1)
        with pytest.raises(ParallelError):
            host.apply_blueprint(blueprint)

    def test_unregistered_event_type_is_rejected(self):
        from repro.events.event import Event
        from repro.events.external import NEWS_EVENT_TYPE

        host = ShardHost(0, 1)
        event = Event.trusted(
            NEWS_EVENT_TYPE,
            {"time": 1, "source": "E_news", "queryId": "q", "headline": "h"},
        )
        with pytest.raises(ParallelError):
            host.ingest([event])

    def test_blueprint_wire_round_trip(self):
        workload = small_workload(windows_per_force=1)
        blueprint = workload.blueprint()
        back = FederationBlueprint.from_wire(blueprint.to_wire())
        assert back.participants == blueprint.participants
        assert back.roles == blueprint.roles
        assert back.specifications == blueprint.specifications
