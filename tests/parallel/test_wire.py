"""Wire-format round-trips: every primitive plane, composites, framing."""

import io

import pytest

from repro.errors import WireError
from repro.awareness.operators.output import DELIVERY_EVENT_TYPE
from repro.events.canonical import canonical_type
from repro.events.event import Event, EventType, ParameterSpec, base_parameters
from repro.events.external import NEWS_EVENT_TYPE
from repro.events.producers import (
    ACTIVITY_EVENT_TYPE,
    CONTEXT_EVENT_TYPE,
    SYSTEM_EVENT_TYPE,
)
from repro.observability.provenance import ProvenanceNode
from repro.parallel.wire import (
    MAX_FRAME_BYTES,
    as_tuples,
    decode_value,
    encode_value,
    event_from_wire,
    event_to_wire,
    read_frame,
    register_event_type,
    resolve_event_type,
    write_frame,
)


def roundtrip(event, provenance=False):
    return event_from_wire(event_to_wire(event, provenance=provenance))


class TestEventRoundTrips:
    def test_activity_event(self):
        event = Event.trusted(
            ACTIVITY_EVENT_TYPE,
            {
                "time": 41,
                "source": "E_activity",
                "activityInstanceId": "act-1",
                "activityVariableId": "State",
                "parentProcessSchemaId": "P-TF",
                "parentProcessInstanceId": "tf-001",
                "oldValue": "Running",
                "newValue": "Completed",
            },
        )
        back = roundtrip(event)
        assert back.event_type is ACTIVITY_EVENT_TYPE
        assert dict(back.params) == dict(event.params)

    def test_context_event_restores_association_frozenset(self):
        associations = frozenset({("P-TF", "tf-001"), ("P-TF", "tf-002")})
        event = Event.trusted(
            CONTEXT_EVENT_TYPE,
            {
                "time": 7,
                "source": "E_context",
                "contextId": "ctx-1",
                "contextName": "TaskForceCtx",
                "processAssociations": associations,
                "fieldName": "Deadline",
                "oldFieldValue": 10,
                "newFieldValue": 20,
            },
        )
        back = roundtrip(event)
        restored = back.params["processAssociations"]
        assert isinstance(restored, frozenset)
        assert restored == associations
        assert all(isinstance(pair, tuple) for pair in restored)

    def test_system_event(self):
        event = Event.trusted(
            SYSTEM_EVENT_TYPE,
            {
                "time": 3,
                "source": "E_system",
                "systemId": "cmi-1",
                "metric": "queue_depth",
                "seriesLabel": "delivery",
                "value": 12,
            },
        )
        back = roundtrip(event)
        assert dict(back.params) == dict(event.params)

    def test_external_news_event(self):
        event = Event.trusted(
            NEWS_EVENT_TYPE,
            {
                "time": 9,
                "source": "E_news",
                "queryId": "query-3",
                "headline": "outbreak contained",
                "relevance": 0.75,
            },
        )
        back = roundtrip(event)
        assert back.params["queryId"] == "query-3"
        assert back.params["relevance"] == pytest.approx(0.75)

    def test_canonical_event_type_is_minted_from_the_name(self):
        event = Event.trusted(
            canonical_type("P-TF"),
            {
                "time": 55,
                "source": "detector",
                "processSchemaId": "P-TF",
                "processInstanceId": "tf-001",
                "intInfo": 4,
                "description": "deadline churn",
            },
        )
        back = roundtrip(event)
        assert back.type_name == "C[P-TF]"
        assert back.event_type is canonical_type("P-TF")
        assert back.params["intInfo"] == 4

    def test_delivery_event_with_payload_clock_and_provenance(self):
        chain = ProvenanceNode(
            event_id=12,
            node="Output:AS_TF",
            kind="composite",
            event_type="T_delivery",
            logical_time=90,
            summary="delivered",
            inputs=(
                ProvenanceNode(
                    event_id=3,
                    node="source:E_context",
                    kind="primitive",
                    event_type="T_context",
                    logical_time=88,
                    summary=("context", "TaskForceCtx", "Deadline", 20),
                ),
            ),
        )
        event = Event.trusted(
            DELIVERY_EVENT_TYPE,
            {
                "time": 90,
                "source": "awareness",
                "schemaName": "AS_TF",
                "deliveryRole": "team-1",
                "deliveryContext": None,
                "assignment": "identity",
                "processSchemaId": "P-TF",
                "processInstanceId": "tf-001",
                "userDescription": "deadline churn",
                "intInfo": 4,
            },
        )
        event.provenance = chain
        back = roundtrip(event, provenance=True)
        assert back.params["time"] == 90
        assert back.params["intInfo"] == 4
        assert back.provenance is not None
        assert back.provenance.signature() == chain.signature()
        primitive = back.provenance.inputs[0]
        assert primitive.summary == ("context", "TaskForceCtx", "Deadline", 20)

    def test_unknown_type_name_raises(self):
        with pytest.raises(WireError):
            event_from_wire({"type": "T_unheard_of", "params": {}})

    def test_registered_custom_type_resolves(self):
        custom = EventType(
            "T_custom_wire",
            (*base_parameters(), ParameterSpec("payload", "str")),
        )
        register_event_type(custom)
        assert resolve_event_type("T_custom_wire") is custom


class TestValueEncoding:
    def test_dollar_keys_in_payload_mappings_are_protected(self):
        value = {"$fs": "not a frozenset", "plain": 1}
        encoded = encode_value(value)
        assert "$d" in encoded
        assert decode_value(encoded) == value

    def test_nested_structures(self):
        value = (1, frozenset({("a", 2)}), [None, {"k": (3,)}])
        assert decode_value(encode_value(value)) == value

    def test_unencodable_value_raises(self):
        with pytest.raises(WireError):
            encode_value(object())

    def test_as_tuples_normalizes_json_lists(self):
        assert as_tuples([1, [2, 3], "x"]) == (1, (2, 3), "x")


class TestFraming:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"kind": "stats", "n": 3})
        write_frame(buffer, {"kind": "flush"})
        buffer.seek(0)
        assert read_frame(buffer) == {"kind": "stats", "n": 3}
        assert read_frame(buffer) == {"kind": "flush"}
        assert read_frame(buffer) is None  # clean EOF

    def test_truncated_payload_raises(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"kind": "events", "events": list(range(50))})
        data = buffer.getvalue()
        truncated = io.BytesIO(data[: len(data) - 5])
        with pytest.raises(WireError):
            read_frame(truncated)

    def test_truncated_header_raises(self):
        with pytest.raises(WireError):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_oversized_length_prefix_is_refused(self):
        import struct

        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError):
            read_frame(io.BytesIO(header))
