"""Federation-wide observability, end to end over real shards.

Both backends run the same assertions where the semantics coincide: a
ship wave's trace context fans out to every shard it touches, sampled
waves come back as one assembled trace holding spans from multiple
shards, worker registries aggregate under ``shard`` labels, and
structured-log records ship over the frame protocol with honest loss
accounting.  Sampling determinism is the key cross-backend contract:
the facade's head decision is honored verbatim by the workers — no
worker re-samples with its own cadence.
"""

import multiprocessing

import pytest

from repro.parallel import ShardConfig, ShardedFederation
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="the process backend requires the fork start method"
)

BACKENDS = ("serial", pytest.param("process", marks=needs_fork))


def small_workload(seed=23):
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=4, windows_per_force=2, events_per_force=30, seed=seed
        )
    )


def observability_config(backend, **overrides):
    defaults = dict(
        shards=2,
        backend=backend,
        batch_size=16,
        instrument=True,
        ship_logs=True,
        trace_sample_every=1,
        join_timeout=10.0,
    )
    defaults.update(overrides)
    return ShardConfig(**defaults)


def run_workload(federation, workload):
    federation.ingest(workload.events())
    notifications = federation.drain()
    federation.refresh_observability()
    return notifications


class TestTraceAssembly:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sampled_waves_assemble_across_shards(self, backend):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), observability_config(backend)
        ) as federation:
            notifications = run_workload(federation, workload)
            traces = federation.traces()
            assembler = federation.trace_assembler
            assert len(notifications) == workload.expected_notifications()
            assert traces, "every wave is sampled at trace_sample_every=1"
            multi = [
                trace
                for trace in traces
                if len(assembler.shards_of(trace)) >= 2
            ]
            assert multi, "a full ingest wave must touch both shards"
            for trace in traces:
                for entry in trace["spans"]:
                    # Correct parent/child linkage: every shipped worker
                    # tree hangs off the wave's root span, and its own
                    # root is the shard-side ingest span.
                    assert entry["span"]["name"] == "shard.ingest"
                    assert entry["shard"] in (0, 1)
            assert assembler.orphaned == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_facade_decision_is_honored_verbatim(self, backend):
        # A huge assembler cadence means no wave is ever sampled —
        # workers must not record spans on their own (their local
        # tracer's default cadence would otherwise sample wave 16).
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(),
            observability_config(backend, trace_sample_every=10_000),
        ) as federation:
            run_workload(federation, workload)
            assert federation.traces() == ()
            assert federation.trace_assembler.orphaned == 0
            assert federation.spans_dropped == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sampling_cadence_is_deterministic(self, backend):
        # Same workload, same cadence -> the same waves are sampled, so
        # two runs assemble the same trace ids with the same shard sets.
        def run():
            workload = small_workload()
            with ShardedFederation(
                workload.blueprint(),
                observability_config(backend, trace_sample_every=2),
            ) as federation:
                run_workload(federation, workload)
                assembler = federation.trace_assembler
                return [
                    (trace["trace_id"], assembler.shards_of(trace))
                    for trace in federation.traces()
                ]

        first, second = run(), run()
        assert first == second
        assert first, "cadence 2 must sample at least one wave"


class TestMetricsPlane:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_registries_aggregate_under_shard_labels(self, backend):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), observability_config(backend)
        ) as federation:
            run_workload(federation, workload)
            registry = federation.metrics_registry()
            published = registry.get("bus_published_total")
            assert published is not None
            by_shard: dict = {}
            for labels, value in published.series().items():
                by_shard[labels[0]] = by_shard.get(labels[0], 0) + value
            assert set(by_shard) >= {"0", "1"}
            # Every routed event is published once on its shard's bus.
            assert by_shard["0"] + by_shard["1"] == len(workload.events())
            text = federation.render_metrics()
            assert 'bus_published_total{shard="0"' in text
            assert 'bus_published_total{shard="1"' in text

    @needs_fork
    def test_process_workers_ship_stage_histograms(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), observability_config("process")
        ) as federation:
            run_workload(federation, workload)
            p95 = federation.metrics_view.stage_p95()
        stages = {stage for __, stage in p95}
        assert "shard.ingest" in stages
        assert {shard for shard, __ in p95} == {"0", "1"}
        assert all(value >= 0 for value in p95.values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_federation_health_sees_worker_breaches(self, backend):
        from repro.observability.health import threshold_rule

        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), observability_config(backend)
        ) as federation:
            federation.ingest(workload.events())
            # No drain: the workers' participant queues stay loaded, so
            # the worker-side queue-depth gauge is breachable.
            federation.flush_buffers()
            breached = federation.health(
                rules=(threshold_rule("queue-depth", "queue_depth", ">", 0),)
            )
            relaxed = federation.health(
                rules=(
                    threshold_rule(
                        "queue-depth", "queue_depth", ">", 1_000_000
                    ),
                )
            )
        assert breached.status == "degraded"
        assert breached.exit_code == 1
        assert relaxed.status == "ok"
        assert relaxed.exit_code == 0


class TestLogShipping:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_records_reach_the_merged_view(self, backend):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), observability_config(backend)
        ) as federation:
            run_workload(federation, workload)
            view = federation.logs()
        records = view.records()
        assert records, "an instrumented run emits structured records"
        assert all("shard" in record for record in records)
        assert all("_seq" in record for record in records)
        keys = [
            (record.get("tick") or 0, record["shard"], record["_seq"])
            for record in records
        ]
        assert keys == sorted(keys)

    @needs_fork
    def test_per_shard_streams_have_no_duplicate_seq(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), observability_config("process")
        ) as federation:
            run_workload(federation, workload)
            # A second refresh must not re-ship already-drained records.
            federation.refresh_observability()
            view = federation.logs()
        for shard in {record["shard"] for record in view.records()}:
            seqs = [
                record["_seq"] for record in view.records(shard=shard)
            ]
            assert len(seqs) == len(set(seqs))
        assert view.dropped() == {}

    def test_ship_logs_off_ships_nothing(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(),
            observability_config("serial", ship_logs=False, instrument=False),
        ) as federation:
            run_workload(federation, workload)
            view = federation.logs()
        assert view.records() == ()


class TestStatsAggregation:
    def test_non_numeric_worker_stats_are_namespaced_not_dropped(self):
        # Regression: stats() used to sum int values and silently drop
        # everything else a shard reported.
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(),
            ShardConfig(shards=2, backend="serial"),
        ) as federation:
            federation.ingest(workload.events())
            federation.drain()
            original = federation.shards[1].stats

            def odd_stats():
                stats = dict(original())
                stats["wal_state"] = "compacting"
                stats["degraded"] = True
                return stats

            federation.shards[1].stats = odd_stats
            totals = federation.stats()
        assert totals["shard1/wal_state"] == "compacting"
        # Booleans are flags, not counters: sum(True) would read as 1.
        assert totals["shard1/degraded"] is True
        assert totals["events_ingested"] == len(workload.events())
        assert "wal_state" not in totals
        assert totals["notifications_merged"] == (
            workload.expected_notifications()
        )

    def test_numeric_stats_still_sum_across_shards(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), ShardConfig(shards=3, backend="serial")
        ) as federation:
            federation.ingest(workload.events())
            federation.drain()
            totals = federation.stats()
            rows = federation.shard_stats()
        assert totals["events_ingested"] == sum(
            row["events_ingested"] for row in rows
        )
        assert totals["shards"] == 3
        assert totals["shards_alive"] == 3
