"""Affinity routing: deterministic, plane-aware, overridable."""

from repro.events.canonical import canonical_type
from repro.events.event import Event
from repro.events.external import NEWS_EVENT_TYPE
from repro.events.producers import (
    ACTIVITY_EVENT_TYPE,
    CONTEXT_EVENT_TYPE,
    SYSTEM_EVENT_TYPE,
)
from repro.parallel.router import ShardRouter
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload


def activity_event(instance="tf-001"):
    return Event.trusted(
        ACTIVITY_EVENT_TYPE,
        {
            "time": 1,
            "source": "E_activity",
            "activityInstanceId": "act-1",
            "activityVariableId": "State",
            "parentProcessSchemaId": "P",
            "parentProcessInstanceId": instance,
            "oldValue": "a",
            "newValue": "b",
        },
    )


def context_event(context="Ctx", instance="tf-001"):
    return Event.trusted(
        CONTEXT_EVENT_TYPE,
        {
            "time": 1,
            "source": "E_context",
            "contextId": "ctx-1",
            "contextName": context,
            "processAssociations": frozenset({("P", instance)}),
            "fieldName": "Deadline",
            "oldFieldValue": 1,
            "newFieldValue": 2,
        },
    )


class TestAffinityKeys:
    def test_activity_routes_by_process_instance(self):
        router = ShardRouter()
        assert router.affinity_key(activity_event("tf-001")) == "tf-001"

    def test_context_routes_by_context_name(self):
        # The context, not the instance, is the affinity key: one context
        # may be associated with several process instances (DESIGN note 9).
        router = ShardRouter()
        a = context_event("SharedCtx", "tf-001")
        b = context_event("SharedCtx", "tf-002")
        assert router.affinity_key(a) == "SharedCtx"
        assert router.shard_for(a, 8) == router.shard_for(b, 8)

    def test_system_routes_by_system_id(self):
        router = ShardRouter()
        event = Event.trusted(
            SYSTEM_EVENT_TYPE,
            {
                "time": 1,
                "source": "E_system",
                "systemId": "cmi-3",
                "metric": "m",
                "seriesLabel": "s",
                "value": 1,
            },
        )
        assert router.affinity_key(event) == "cmi-3"

    def test_external_routes_by_correlation_chain(self):
        router = ShardRouter()
        event = Event.trusted(
            NEWS_EVENT_TYPE,
            {
                "time": 1,
                "source": "E_news",
                "queryId": "query-9",
                "headline": "h",
            },
        )
        assert router.affinity_key(event) == "query-9"

    def test_canonical_routes_by_process_instance(self):
        router = ShardRouter()
        event = Event.trusted(
            canonical_type("P"),
            {
                "time": 1,
                "source": "detector",
                "processSchemaId": "P",
                "processInstanceId": "tf-007",
            },
        )
        assert router.affinity_key(event) == "tf-007"

    def test_registered_extractor_overrides_the_default(self):
        router = ShardRouter()
        router.register("T_context", lambda event: event.params["contextId"])
        assert router.affinity_key(context_event()) == "ctx-1"


class TestShardAssignment:
    def test_same_key_same_shard(self):
        for n in (1, 2, 4, 7):
            assert ShardRouter.shard_for_key("tf-001", n) == (
                ShardRouter.shard_for_key("tf-001", n)
            )

    def test_single_shard_short_circuits(self):
        assert ShardRouter.shard_for_key("anything", 1) == 0
        assert ShardRouter.shard_for_key("anything", 0) == 0

    def test_assignment_is_stable_across_processes(self):
        # crc32, not the salted builtin hash: the parent's routing
        # decision must agree with any worker recomputing it.
        import zlib

        key = ("P", "tf-042")
        expected = zlib.crc32(repr(key).encode("utf-8")) % 4
        assert ShardRouter.shard_for_key(key, 4) == expected

    def test_events_spread_across_shards(self):
        router = ShardRouter()
        shards = {
            router.shard_for(context_event(f"Ctx{i}"), 4) for i in range(32)
        }
        assert len(shards) > 1


class TestShardSlices:
    def test_union_of_slices_is_the_unsharded_stream(self):
        workload = ShardStreamWorkload(
            ShardStreamConfig(forces=5, windows_per_force=2, events_per_force=20)
        )
        full = workload.events()
        slices = [workload.shard_slice(3, i) for i in range(3)]
        assert sum(len(s) for s in slices) == len(full)
        merged = sorted(
            (e for s in slices for e in s), key=lambda e: e.params["time"]
        )
        assert [e.params for e in merged] == [e.params for e in full]

    def test_slices_preserve_per_force_order(self):
        workload = ShardStreamWorkload(
            ShardStreamConfig(forces=4, windows_per_force=1, events_per_force=12)
        )
        for shard in range(2):
            sliced = workload.shard_slice(2, shard)
            by_force = {}
            for event in sliced:
                by_force.setdefault(event.params["contextName"], []).append(
                    event.params["newFieldValue"]
                )
            for values in by_force.values():
                assert values == sorted(values)

    def test_slice_matches_router_decision(self):
        workload = ShardStreamWorkload(
            ShardStreamConfig(forces=4, windows_per_force=1, events_per_force=8)
        )
        router = ShardRouter()
        for event in workload.shard_slice(4, 2, router=router):
            assert router.shard_for(event, 4) == 2


class TestShardCache:
    def test_cached_assignment_matches_the_uncached_hash(self):
        router = ShardRouter()
        events = [activity_event(f"tf-{i:03d}") for i in range(20)]
        # First pass populates the memo, second pass serves from it;
        # both must agree with the pure hash.
        for _pass in range(2):
            for event in events:
                shard = router.shard_for(event, 4)
                key = router.affinity_key(event)
                assert shard == ShardRouter.shard_for_key(key, 4)
        assert len(router._shard_cache) == 20

    def test_cache_keys_include_the_shard_count(self):
        router = ShardRouter()
        event = activity_event("tf-007")
        key = router.affinity_key(event)
        for count in (2, 3, 4, 5):
            assert router.shard_for(event, count) == (
                ShardRouter.shard_for_key(key, count)
            )
        assert len(router._shard_cache) == 4

    def test_full_cache_clears_instead_of_evicting(self):
        from repro.parallel.router import ROUTER_CACHE_MAX

        router = ShardRouter()
        router._shard_cache = {
            ("warm", index): 0 for index in range(ROUTER_CACHE_MAX)
        }
        router.shard_for(activity_event("tf-new"), 4)
        # The overflowing insert reset the memo to just itself.
        assert len(router._shard_cache) == 1

    def test_unhashable_keys_fall_through_to_the_hash(self):
        from repro.events.external import NEWS_EVENT_TYPE_NAME

        router = ShardRouter()
        router.register(
            NEWS_EVENT_TYPE_NAME, lambda event: ["q", "1"]  # unhashable
        )
        event = Event.trusted(
            NEWS_EVENT_TYPE,
            {
                "time": 1,
                "source": "news",
                "queryId": "q-1",
                "articleId": "a-1",
                "relevance": 1.0,
            },
        )
        shard = router.shard_for(event, 4)
        assert shard == ShardRouter.shard_for_key(["q", "1"], 4)
        assert not router._shard_cache
