"""Property tests for the binary codec (Hypothesis).

Three invariants, fuzzed:

* **round-trip** — any frame built from wire-encodable values (nested
  tuples, frozensets, ``$``-prefixed keys included) decodes to an equal
  value, across multi-frame streams and intern-table resets;
* **every frame kind** — the protocol frames the worker channel and the
  journal actually carry survive the codec unchanged;
* **corruption safety** — truncated or torn payloads raise
  :class:`~repro.errors.WireError`, never ``IndexError`` or another
  crash.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireError
from repro.events.event import Event
from repro.events.producers import ACTIVITY_EVENT_TYPE
from repro.parallel.codec import BinaryDecoder, BinaryEncoder

# Floats are restricted to non-NaN (NaN != NaN breaks equality-based
# round-trip assertions; the codec itself carries NaN fine).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 70), max_value=1 << 70),
    st.floats(allow_nan=False),
    st.text(max_size=80),
)

# Keys include "$fs" / "$t" / "$d" lookalikes: the binary codec needs no
# escaping, so they must pass through verbatim.
keys = st.one_of(
    st.text(max_size=20),
    st.sampled_from(["$fs", "$t", "$d", "$", "type", "params"]),
)


# Frozenset members must be hashable: nested tuples/frozensets of
# scalars only.
hashables = st.recursive(
    scalars,
    lambda child: st.one_of(
        st.tuples(child, child), st.frozensets(child, max_size=4)
    ),
    max_leaves=8,
)


def _extend(children):
    return st.one_of(
        st.lists(children, max_size=4),
        # Tuples may hold unhashable members (a list, a dict) — the
        # encoder must fall back to inline encoding there.
        st.tuples(children, children),
        st.frozensets(hashables, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    )


values = st.recursive(scalars, _extend, max_leaves=12)

frames = st.dictionaries(keys, values, max_size=5)


def _roundtrip(encoder, decoder, frame):
    data = encoder.encode_frame(frame)
    return decoder.decode_payload(memoryview(data)[4:])


@settings(max_examples=60, deadline=None)
@given(frames)
def test_single_frame_round_trip(frame):
    assert _roundtrip(BinaryEncoder(), BinaryDecoder(), frame) == frame


@settings(max_examples=30, deadline=None)
@given(st.lists(frames, min_size=1, max_size=5))
def test_stream_round_trip_shares_tables(stream):
    encoder = BinaryEncoder()
    decoder = BinaryDecoder()
    for frame in stream:
        assert _roundtrip(encoder, decoder, frame) == frame


@settings(max_examples=30, deadline=None)
@given(
    st.lists(frames, min_size=1, max_size=3),
    st.lists(frames, min_size=1, max_size=3),
)
def test_reset_boundary_keeps_streams_decodable(before, after):
    # Respawn/compaction: both sides reset together, then continue.
    encoder = BinaryEncoder()
    decoder = BinaryDecoder()
    for frame in before:
        assert _roundtrip(encoder, decoder, frame) == frame
    encoder.reset()
    decoder.reset()
    for frame in after:
        assert _roundtrip(encoder, decoder, frame) == frame


@settings(max_examples=30, deadline=None)
@given(frames, st.data())
def test_truncated_payload_raises_wire_error(frame, data):
    payload = BinaryEncoder().encode_frame(frame)[4:]
    cut = data.draw(st.integers(min_value=0, max_value=max(len(payload) - 1, 0)))
    with pytest.raises(WireError):
        BinaryDecoder().decode_payload(payload[:cut])


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=200))
def test_arbitrary_bytes_never_crash(garbage):
    # Fuzzed payloads either decode (to *something* dict-shaped) or
    # raise WireError; any other exception is a bug.
    try:
        BinaryDecoder().decode_payload(garbage)
    except WireError:
        pass


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(
            [
                "time",
                "source",
                "activityInstanceId",
                "activityVariableId",
                "parentProcessSchemaId",
                "parentProcessInstanceId",
                "oldValue",
                "newValue",
            ]
        ),
        st.one_of(
            st.text(max_size=30),
            st.integers(min_value=0, max_value=1 << 40),
            st.tuples(st.text(max_size=10), st.text(max_size=10)),
            st.frozensets(
                st.tuples(st.text(max_size=8), st.text(max_size=8)),
                max_size=3,
            ),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_event_payload_round_trip(params):
    event = Event.trusted(ACTIVITY_EVENT_TYPE, params)
    encoder = BinaryEncoder()
    decoder = BinaryDecoder()
    frame = {"kind": "events", "events": [event, event]}
    back = _roundtrip(encoder, decoder, frame)
    for got in back["events"]:
        assert got.event_type is ACTIVITY_EVENT_TYPE
        assert dict(got.params) == dict(event.params)
    # Steady state: the same event again, now fully interned.
    again = _roundtrip(encoder, decoder, frame)
    assert dict(again["events"][0].params) == dict(event.params)


# Every frame kind the worker channel and journal actually carry.
protocol_frames = st.one_of(
    st.builds(
        lambda n: {
            "kind": "events",
            "events": [
                Event.trusted(
                    ACTIVITY_EVENT_TYPE, {"time": n, "source": "E_activity"}
                )
            ],
            "trace": ["t" * 16, "s" * 8, 1],
        },
        st.integers(min_value=0, max_value=1000),
    ),
    st.builds(
        lambda sid: {"kind": "deploy", "spec": {"spec_id": sid, "plan": [1]}},
        st.text(min_size=1, max_size=10),
    ),
    st.builds(lambda sid: {"kind": "undeploy", "spec_id": sid}, st.text()),
    st.just({"kind": "stats"}),
    st.just({"kind": "flush"}),
    st.just({"kind": "snapshot"}),
    st.builds(
        lambda state: {"kind": "restore", "state": state},
        st.dictionaries(st.text(max_size=8), st.integers(), max_size=3),
    ),
    st.just({"kind": "shutdown"}),
    st.just({"kind": "bye"}),
    st.builds(lambda m: {"kind": "error", "error": m}, st.text(max_size=40)),
    st.builds(lambda b: {"kind": "compacted", "base": b}, st.integers(0, 99)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(protocol_frames, min_size=1, max_size=6))
def test_every_protocol_frame_kind_round_trips(stream):
    encoder = BinaryEncoder()
    decoder = BinaryDecoder()
    for frame in stream:
        back = _roundtrip(encoder, decoder, frame)
        if frame["kind"] == "events":
            assert back["trace"] == frame["trace"]
            assert [dict(e.params) for e in back["events"]] == [
                dict(e.params) for e in frame["events"]
            ]
        else:
            assert back == frame
