"""The process backend: forked workers, crash containment, differential.

Workloads here are deliberately tiny — these tests check the protocol
and the lifecycle, not throughput (QE11 owns that).
"""

import multiprocessing
import signal

import pytest

from repro.errors import ParallelError, ShardCrashError
from repro.parallel import ShardConfig, ShardSpec, ShardedFederation
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)


def small_workload():
    return ShardStreamWorkload(
        ShardStreamConfig(forces=4, windows_per_force=2, events_per_force=30)
    )


def process_config(shards=2, **overrides):
    defaults = dict(
        shards=shards, backend="process", instrument=True, join_timeout=10.0
    )
    defaults.update(overrides)
    return ShardConfig(**defaults)


class TestProcessBackend:
    def test_end_to_end_matches_the_serial_run(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(),
            ShardConfig(shards=1, backend="serial", instrument=True),
        ) as serial:
            serial.ingest(workload.events())
            base = serial.drain()
        with ShardedFederation(
            workload.blueprint(), process_config()
        ) as federation:
            federation.ingest(workload.events())
            sharded = federation.drain()
            stats = federation.stats()
        assert len(sharded) == workload.expected_notifications()
        assert stats["shards_alive"] == 2
        assert sorted(map(repr, (n.signature for n in sharded))) == (
            sorted(map(repr, (n.signature for n in base)))
        )

    def test_per_shard_stats_report_live_workers(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), process_config()
        ) as federation:
            federation.ingest(workload.events())
            federation.drain()
            rows = federation.shard_stats()
            assert [row["alive"] for row in rows] == [True, True]
            assert sum(row["events_ingested"] for row in rows) == (
                len(workload.events())
            )
            # Workers flip their own instrumentation plane post-fork.
            assert all(row["instrumented"] == 1 for row in rows)

    def test_runtime_deploy_error_surfaces_eagerly(self):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), process_config()
        ) as federation:
            # Re-deploying an existing spec id is a recoverable worker
            # error: the deploy round-trip must raise, not hang or kill
            # the worker.
            with pytest.raises(ParallelError):
                federation.deploy(federation.blueprint.specifications[0])
            assert federation.healthy()
            extra = ShardSpec(
                spec_id="spec-extra",
                process_schema_id=workload.config.process_schema_id,
                text=workload.specification_text(0).replace("AS_TF", "AS_XX"),
            )
            federation.deploy(extra)
            federation.undeploy("spec-extra")
            assert federation.healthy()

    def test_killed_worker_surfaces_as_crash_not_hang(self):
        workload = small_workload()
        federation = ShardedFederation(
            workload.blueprint(), process_config()
        )
        try:
            victim = federation.shards[0]
            victim.process._popen._send_signal(signal.SIGKILL)  # noqa: SLF001
            victim.process.join(10.0)
            with pytest.raises(ShardCrashError):
                victim.stats()
            assert not victim.alive
            assert not federation.healthy()
            rows = federation.shard_stats()
            assert rows[0]["alive"] is False
            assert rows[1]["alive"] is True
            # The aggregate keeps serving from the survivors.
            assert federation.stats()["shards_alive"] == 1
        finally:
            federation.close()

    def test_close_shuts_workers_down_cleanly(self):
        workload = small_workload()
        federation = ShardedFederation(
            workload.blueprint(), process_config()
        )
        processes = [shard.process for shard in federation.shards]
        federation.ingest(workload.events()[:50])
        federation.close()
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode == 0


class TestWireCodecs:
    def test_json_codec_matches_the_binary_default(self):
        # The differential guard of the codec switch: both codecs carry
        # the same workload to the same notification stream (and the
        # same provenance signature multiset).
        workload = small_workload()
        runs = {}
        for codec in ("binary", "json"):
            with ShardedFederation(
                workload.blueprint(), process_config(wire_codec=codec)
            ) as federation:
                assert all(
                    shard.wire_codec == codec
                    for shard in federation.shards
                )
                federation.ingest(workload.events())
                runs[codec] = federation.drain()
        assert len(runs["binary"]) == workload.expected_notifications()
        assert sorted(
            map(repr, (n.signature for n in runs["binary"]))
        ) == sorted(map(repr, (n.signature for n in runs["json"])))

    def test_unknown_codec_is_rejected_at_config_time(self):
        with pytest.raises(ParallelError, match="wire codec"):
            ShardConfig(shards=1, wire_codec="msgpack")


class TestOverlappedIO:
    """Credit-based backpressure and the overlapped collective paths."""

    def test_stopped_worker_stalls_only_its_own_queue(self):
        # SIGSTOP one worker mid-stream: ingest must keep going without
        # blocking the wave, the stopped shard's in-flight frames must
        # stay capped at the credit window (bounded facade memory), the
        # stall must be counted — and after SIGCONT the results must be
        # exactly the serial run's.
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(),
            ShardConfig(shards=1, backend="serial", instrument=True),
        ) as serial:
            serial.ingest(workload.events())
            base = serial.drain()
        federation = ShardedFederation(
            workload.blueprint(),
            process_config(batch_size=5, max_inflight=2),
        )
        try:
            victim = federation.shards[0]
            victim.process._popen._send_signal(signal.SIGSTOP)  # noqa: SLF001
            federation.ingest(workload.events())  # must not deadlock
            channel = victim.channel
            assert channel.outstanding <= 2
            assert channel.stalls > 0
            assert federation._stalls.value(labels=("0",)) > 0  # noqa: SLF001
            # The overflow waits in the facade's buffer, not the pipe.
            assert len(federation._buffers[0]) > 0  # noqa: SLF001
            victim.process._popen._send_signal(signal.SIGCONT)  # noqa: SLF001
            sharded = federation.drain()
        finally:
            federation.close()
        assert sorted(map(repr, (n.signature for n in sharded))) == (
            sorted(map(repr, (n.signature for n in base)))
        )

    def test_out_of_band_worker_error_is_attributed(self):
        # A frame the worker cannot survive makes it emit a last-words
        # ``error`` frame that races the next collective.  The crash
        # must surface with the worker's reason attributed — not as a
        # protocol violation against the expected response kind.
        workload = small_workload()
        federation = ShardedFederation(
            workload.blueprint(), process_config()
        )
        try:
            victim = federation.shards[0]
            victim.channel.queue({"kind": "events"})  # no payload: fatal
            with pytest.raises(ShardCrashError) as crash:
                federation.drain()
            assert "worker error" in str(crash.value)
            assert "protocol violation" not in str(crash.value)
            assert not victim.alive
        finally:
            federation.close()

    def test_serial_gather_mode_matches_the_overlapped_run(self):
        # ``overlap=False`` keeps the legacy one-shard-at-a-time round
        # trips (QE15's baseline); both modes must produce the same
        # notification multiset and the same per-instance order.
        workload = small_workload()

        def per_instance(notifications):
            streams = {}
            for n in notifications:
                streams.setdefault(n.process_instance_id, []).append(
                    n.signature
                )
            return streams

        runs = {}
        for overlap in (True, False):
            with ShardedFederation(
                workload.blueprint(), process_config(overlap=overlap)
            ) as federation:
                assert federation.config.overlap is overlap
                federation.ingest(workload.events())
                runs[overlap] = federation.drain()
        assert len(runs[True]) == workload.expected_notifications()
        assert per_instance(runs[True]) == per_instance(runs[False])

    def test_max_inflight_is_validated(self):
        with pytest.raises(ParallelError, match="max_inflight"):
            ShardConfig(shards=1, max_inflight=0)
