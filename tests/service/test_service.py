"""Tests for the Service Model: QoS, registry, agreements, invocation."""

import pytest

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ProcessActivitySchema,
    RoleRef,
)
from repro.errors import ServiceError
from repro.service import (
    QoSAttributes,
    ServiceDefinition,
    ServiceRegistry,
)


def lab_process(schema_id="p-lab", name="lab-analysis"):
    process = ProcessActivitySchema(schema_id, name)
    process.add_activity_variable(
        ActivityVariable(
            "analyze",
            BasicActivitySchema(
                f"{schema_id}/b", "analyze", performer=RoleRef("epidemiologist")
            ),
        )
    )
    process.mark_entry("analyze")
    return process


def service(service_id="s1", name="lab-analysis", provider="lab-a", **qos):
    defaults = dict(max_duration=100, cost=10, availability=0.9)
    defaults.update(qos)
    return ServiceDefinition(
        service_id=service_id,
        name=name,
        provider=provider,
        process_schema=lab_process(f"p-{service_id}"),
        qos=QoSAttributes(**defaults),
    )


class TestQoS:
    def test_validation(self):
        with pytest.raises(ServiceError):
            QoSAttributes(max_duration=0)
        with pytest.raises(ServiceError):
            QoSAttributes(max_duration=10, cost=-1)
        with pytest.raises(ServiceError):
            QoSAttributes(max_duration=10, availability=0.0)
        with pytest.raises(ServiceError):
            QoSAttributes(max_duration=10, availability=1.5)

    def test_satisfies_dominance(self):
        offer = QoSAttributes(max_duration=50, cost=5, availability=0.95)
        required = QoSAttributes(max_duration=100, cost=10, availability=0.9)
        assert offer.satisfies(required)
        assert not required.satisfies(offer)


class TestRegistry:
    def test_advertise_and_lookup(self):
        registry = ServiceRegistry()
        definition = registry.advertise(service())
        assert registry.service("s1") is definition
        assert registry.services() == (definition,)

    def test_duplicate_id_rejected(self):
        registry = ServiceRegistry()
        registry.advertise(service())
        with pytest.raises(ServiceError):
            registry.advertise(service())

    def test_unknown_service(self):
        with pytest.raises(ServiceError):
            ServiceRegistry().service("ghost")

    def test_select_cheapest_qualifying(self):
        registry = ServiceRegistry()
        registry.advertise(service("s1", cost=10))
        registry.advertise(service("s2", provider="lab-b", cost=5))
        registry.advertise(service("s3", provider="lab-c", cost=20))
        best = registry.select("lab-analysis")
        assert best.service_id == "s2"

    def test_select_honours_required_qos(self):
        registry = ServiceRegistry()
        registry.advertise(service("s1", cost=5, max_duration=500))
        registry.advertise(service("s2", provider="b", cost=20, max_duration=50))
        required = QoSAttributes(max_duration=100, cost=50, availability=0.5)
        assert registry.select("lab-analysis", required).service_id == "s2"

    def test_select_fails_when_nothing_qualifies(self):
        registry = ServiceRegistry()
        registry.advertise(service())
        required = QoSAttributes(max_duration=1, cost=1, availability=1.0)
        with pytest.raises(ServiceError):
            registry.select("lab-analysis", required)


class TestServiceEngine:
    def test_negotiate_and_invoke(self, system, alice, epidemiologists):
        definition = system.service.registry.advertise(service())
        system.core.register_schema(definition.process_schema)
        agreement = system.service.negotiate("crisis-team", "lab-analysis")
        assert agreement.service is definition
        instance = system.service.invoke(agreement)
        assert instance.current_state == "Running"
        assert agreement.invocations == 1

    def test_completion_checks_agreed_duration(
        self, system, alice, epidemiologists
    ):
        definition = system.service.registry.advertise(
            service(max_duration=5)
        )
        system.core.register_schema(definition.process_schema)
        agreement = system.service.negotiate("crisis-team", "lab-analysis")
        instance = system.service.invoke(agreement)
        system.clock.advance(50)  # blow the agreed max_duration
        client = system.participant_client(alice)
        client.claim_and_complete_all()
        system.service.record_completion(instance)
        assert len(agreement.violations) == 1
        assert "agreed max 5" in agreement.violations[0]

    def test_fast_completion_has_no_violation(
        self, system, alice, epidemiologists
    ):
        definition = system.service.registry.advertise(service())
        system.core.register_schema(definition.process_schema)
        agreement = system.service.negotiate("crisis-team", "lab-analysis")
        instance = system.service.invoke(agreement)
        system.participant_client(alice).claim_and_complete_all()
        system.service.record_completion(instance)
        assert agreement.violations == []

    def test_untracked_completion_rejected(self, system, epidemiologists):
        process = lab_process()
        system.core.register_schema(process)
        instance = system.coordination.start_process(process)
        with pytest.raises(ServiceError):
            system.service.record_completion(instance)

    def test_unknown_agreement_lookup(self, system):
        with pytest.raises(ServiceError):
            system.service.agreement("ghost")

    def test_foreign_agreement_cannot_invoke(self, system, epidemiologists):
        from repro.service.model import ServiceAgreement

        definition = service()
        foreign = ServiceAgreement(
            agreement_id="sla-x",
            service=definition,
            consumer="x",
            agreed_qos=definition.qos,
        )
        with pytest.raises(ServiceError):
            system.service.invoke(foreign)
