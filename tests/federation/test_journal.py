"""Tests for audit journaling and recovery (durable enactment)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EnactmentSystem, Participant
from repro.core.engine import CoreEngine
from repro.federation.journal import (
    Journal,
    RecoveryError,
    attach_journal,
    recover_core,
)
from repro.workloads.taskforce import TaskForceApplication


def run_scenario(journal=None):
    """A Section 5.4 run on a journaled system; returns (system, journal)."""
    journal = journal if journal is not None else Journal()
    system = EnactmentSystem(journal=journal)
    leader = system.register_participant(Participant("u-lead", "lead"))
    member = system.register_participant(Participant("u-mem", "mem"))
    system.core.roles.define_role("epidemiologist").add_member(leader)
    system.core.roles.role("epidemiologist").add_member(member)
    app = TaskForceApplication(system)
    task_force = app.create_task_force(leader, [leader, member], 100)
    request = app.request_information(task_force, member, 80)
    app.change_task_force_deadline(task_force, 50)
    # Complete the assessment through the worklist.
    system.participant_client(leader).claim_and_complete_all()
    system.participant_client(member).claim_and_complete_all()
    app.complete_request(request)
    return system, journal


def snapshot(core: CoreEngine):
    """A comparable snapshot of the CORE state."""
    instances = {}
    for instance in core.instances():
        instances[instance.instance_id] = (
            instance.schema.schema_id,
            instance.current_state,
            tuple(
                (c.time, c.old_state, c.new_state, c.user)
                for c in instance.state_machine.history
            ),
            instance.parent.instance_id if instance.parent else None,
        )
    contexts = {}
    for instance in core.instances():
        if not hasattr(instance, "context_refs"):
            continue
        for ref in instance.context_refs.values():
            resource = ref._resource
            fields = {}
            for field_name in resource.schema.field_names():
                if resource.destroyed:
                    continue
                if resource._is_set(field_name):
                    value = resource._get(field_name)
                    fields[field_name] = (
                        sorted(p.participant_id for p in value.members())
                        if hasattr(value, "members")
                        else value
                    )
            contexts[resource.context_id] = (
                resource.name,
                resource.destroyed,
                frozenset(resource.associations()),
                tuple(sorted(fields.items())),
            )
    roles = {
        role.name: sorted(p.participant_id for p in role.members())
        for role in core.roles.roles()
    }
    return instances, contexts, roles


class TestJournaling:
    def test_journal_records_operations(self):
        __, journal = run_scenario()
        ops = [record["op"] for record in journal.records()]
        for expected in (
            "register_schema",
            "register_participant",
            "define_role",
            "add_role_member",
            "create_process_instance",
            "change_state",
            "set_field",
            "share_context",
            "create_scoped_role",
            "destroy_context",
        ):
            assert expected in ops, f"missing {expected}"

    def test_attach_requires_fresh_engine(self):
        core = CoreEngine()
        core.roles.register_participant(Participant("u1", "x"))
        with pytest.raises(RecoveryError):
            attach_journal(core)

    def test_subschemas_journaled_once(self):
        __, journal = run_scenario()
        payload_roots = [
            record["payload"]["root"]
            for record in journal.records()
            if record["op"] == "register_schema"
        ]
        assert len(payload_roots) == len(set(payload_roots))


class TestRecovery:
    def test_recovered_state_matches_original(self):
        system, journal = run_scenario()
        recovered = recover_core(journal)
        assert snapshot(recovered) == snapshot(system.core)

    def test_recovery_preserves_instance_ids_and_histories(self):
        system, journal = run_scenario()
        recovered = recover_core(journal)
        for original in system.core.instances():
            twin = recovered.instance(original.instance_id)
            assert twin.schema.schema_id == original.schema.schema_id
            assert twin.current_state == original.current_state
            assert len(twin.state_machine.history) == len(
                original.state_machine.history
            )

    def test_recovered_engine_continues_running(self):
        """Recovery is not a museum piece: enactment continues on the
        recovered engine (start new instances, change states)."""
        system, journal = run_scenario()
        recovered = recover_core(journal)
        schema = recovered.schema(
            system.core.top_level_processes()[0].schema.schema_id
        )
        from repro.coordination import CoordinationEngine

        coordination = CoordinationEngine(recovered)
        instance = coordination.start_process(schema)
        assert instance.current_state == "Running"

    def test_recovery_survives_save_load_round_trip(self, tmp_path):
        system, journal = run_scenario()
        path = str(tmp_path / "audit.jsonl")
        journal.save(path)
        reloaded = Journal.load(path)
        assert len(reloaded) == len(journal)
        recovered = recover_core(reloaded)
        assert snapshot(recovered) == snapshot(system.core)

    def test_corrupt_journal_fails_loudly(self):
        journal = Journal()
        journal.append({"op": "change_state", "instance_id": "ghost",
                        "new_state": "Ready", "time": 1, "user": None})
        with pytest.raises(RecoveryError, match="record 0"):
            recover_core(journal)

    def test_unknown_op_rejected(self):
        journal = Journal()
        journal.append({"op": "time-travel"})
        with pytest.raises(RecoveryError, match="unknown journal op"):
            recover_core(journal)


def find_live_scoped_role(core: CoreEngine):
    """The first alive scoped role stored in any live context field."""
    for instance in core.instances():
        for ref in getattr(instance, "context_refs", {}).values():
            resource = ref._resource
            if resource.destroyed:
                continue
            for field_name in resource.schema.field_names():
                if resource._is_set(field_name):
                    value = resource._get(field_name)
                    if hasattr(value, "add_member") and value.alive:
                        return value
    return None


class TestScopedRoleMembership:
    """Post-creation membership changes: audited, but refused on recovery."""

    def test_membership_change_is_journaled(self):
        system, journal = run_scenario()
        role = find_live_scoped_role(system.core)
        assert role is not None, "scenario should leave a live scoped role"
        extra = system.register_participant(Participant("u-extra", "extra"))
        role.add_member(extra)
        role.remove_member(extra)
        records = [
            record
            for record in journal.records()
            if record["op"] == "scoped_role_membership"
        ]
        assert [r["action"] for r in records] == ["add", "remove"]
        assert all(r["participant"] == "u-extra" for r in records)

    def test_recovery_refuses_membership_change_records(self):
        system, journal = run_scenario()
        role = find_live_scoped_role(system.core)
        extra = system.register_participant(Participant("u-extra", "extra"))
        role.add_member(extra)
        with pytest.raises(
            RecoveryError, match="scoped-role\\s+membership change"
        ):
            recover_core(journal)

    def test_initial_members_do_not_trip_the_refusal(self):
        """create_scoped_role's initial member set replays fine; only
        *post-creation* mutations are refused."""
        system, journal = run_scenario()
        ops = [record["op"] for record in journal.records()]
        assert "create_scoped_role" in ops
        assert "scoped_role_membership" not in ops
        recovered = recover_core(journal)
        assert snapshot(recovered) == snapshot(system.core)

    def test_failed_membership_change_not_journaled(self):
        """A membership change that raises (dead context) leaves no record."""
        system, journal = run_scenario()
        role = find_live_scoped_role(system.core)
        assert role is not None
        ref = next(
            ref
            for instance in system.core.instances()
            for ref in getattr(instance, "context_refs", {}).values()
            if ref._resource is role.context
        )
        system.core.destroy_context(ref)
        extra = system.register_participant(Participant("u-extra", "extra"))
        before = len(journal)
        with pytest.raises(Exception):
            role.add_member(extra)
        assert len(journal) == before


class TestRecoveryProperties:
    @given(
        n_forces=st.integers(min_value=1, max_value=3),
        moves=st.lists(
            st.integers(min_value=-60, max_value=60), max_size=4
        ),
        complete=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_runs_recover_exactly(self, n_forces, moves, complete):
        journal = Journal()
        system = EnactmentSystem(journal=journal)
        leader = system.register_participant(Participant("u0", "lead"))
        member = system.register_participant(Participant("u1", "mem"))
        role = system.core.roles.define_role("epidemiologist")
        role.add_member(leader)
        role.add_member(member)
        app = TaskForceApplication(system)
        for __ in range(n_forces):
            task_force = app.create_task_force(leader, [leader, member], 100)
            request = app.request_information(task_force, member, 80)
            for move in moves:
                system.clock.advance(1)
                app.change_task_force_deadline(task_force, 100 + move)
            if complete:
                app.complete_request(request)
        recovered = recover_core(journal)
        assert snapshot(recovered) == snapshot(system.core)
