"""Tests for the monitoring query API (WfMC-style audit trail queries)."""

import pytest


class TestQuery:
    @pytest.fixture
    def loaded_monitor(self, system, alice, epidemiologists, simple_process):
        instance = system.coordination.start_process(simple_process)
        client = system.participant_client(alice)
        client.claim_and_complete_all()
        return system.monitor, instance

    def test_filter_by_state(self, loaded_monitor):
        monitor, __ = loaded_monitor
        completions = monitor.query(new_state="Completed")
        assert len(completions) == 3  # draft, review, process
        assert all(c.new_state == "Completed" for c in completions)

    def test_filter_by_user(self, loaded_monitor):
        monitor, __ = loaded_monitor
        by_alice = monitor.query(user="alice")
        assert by_alice
        assert all(c.user == "alice" for c in by_alice)

    def test_filter_by_time_range(self, loaded_monitor):
        monitor, __ = loaded_monitor
        full = monitor.query()
        mid = full[len(full) // 2].time
        early = monitor.query(until=mid)
        late = monitor.query(since=mid + 1)
        assert len(early) + len(late) == len(full)
        assert all(c.time <= mid for c in early)

    def test_filters_conjoin(self, loaded_monitor):
        monitor, __ = loaded_monitor
        full = monitor.query()
        last = full[-1].time
        results = monitor.query(new_state="Completed", since=last)
        assert len(results) == 1  # only the process completion itself

    def test_empty_result(self, loaded_monitor):
        monitor, __ = loaded_monitor
        assert monitor.query(new_state="Suspended") == ()
        assert monitor.query(user="nobody") == ()


class TestIndexedLogRegression:
    """The indexed audit trail must agree with a brute-force scan.

    Regression cover for the bisect/per-instance indexing: 10k synthetic
    changes are fed straight into the observation hook, then every query
    shape is checked against a naive filter over the full log.
    """

    STATES = ("Ready", "Running", "Suspended", "Completed")
    USERS = (None, "alice", "bob", "carol")

    @pytest.fixture
    def synthetic_monitor(self, system):
        from repro.core.instances import ActivityStateChange

        monitor = system.monitor
        for index in range(10_000):
            monitor._observe(
                ActivityStateChange(
                    time=index // 4,
                    activity_instance_id=f"act-{index % 97}",
                    parent_process_schema_id="P-Synthetic",
                    parent_process_instance_id=f"proc-{index % 11}",
                    user=self.USERS[index % len(self.USERS)],
                    activity_variable_id=f"step{index % 5}",
                    activity_process_schema_id=None,
                    old_state=self.STATES[index % 3],
                    new_state=self.STATES[(index % 3) + 1],
                )
            )
        return monitor

    def brute_force(self, monitor, new_state=None, user=None,
                    since=None, until=None):
        return tuple(
            change
            for change in monitor.log()
            if (new_state is None or change.new_state == new_state)
            and (user is None or change.user == user)
            and (since is None or change.time >= since)
            and (until is None or change.time <= until)
        )

    def test_queries_match_brute_force_over_10k_changes(
        self, synthetic_monitor
    ):
        monitor = synthetic_monitor
        assert len(monitor.log()) == 10_000
        cases = [
            {},
            {"new_state": "Completed"},
            {"user": "bob"},
            {"since": 100, "until": 200},
            {"since": 2499},            # last tick only
            {"until": 0},               # first tick only
            {"since": 5000},            # past the end: empty
            {"new_state": "Running", "user": "alice",
             "since": 17, "until": 1203},
        ]
        for kwargs in cases:
            assert monitor.query(**kwargs) == self.brute_force(
                monitor, **kwargs
            ), kwargs

    def test_subtree_log_matches_manual_filter(self, synthetic_monitor):
        monitor = synthetic_monitor
        indexed = monitor._by_instance["act-13"]
        expected = [
            change
            for change in monitor.log()
            if change.activity_instance_id == "act-13"
        ]
        assert [monitor.log()[i] for i in indexed] == expected
