"""Tests for the monitoring query API (WfMC-style audit trail queries)."""

import pytest


class TestQuery:
    @pytest.fixture
    def loaded_monitor(self, system, alice, epidemiologists, simple_process):
        instance = system.coordination.start_process(simple_process)
        client = system.participant_client(alice)
        client.claim_and_complete_all()
        return system.monitor, instance

    def test_filter_by_state(self, loaded_monitor):
        monitor, __ = loaded_monitor
        completions = monitor.query(new_state="Completed")
        assert len(completions) == 3  # draft, review, process
        assert all(c.new_state == "Completed" for c in completions)

    def test_filter_by_user(self, loaded_monitor):
        monitor, __ = loaded_monitor
        by_alice = monitor.query(user="alice")
        assert by_alice
        assert all(c.user == "alice" for c in by_alice)

    def test_filter_by_time_range(self, loaded_monitor):
        monitor, __ = loaded_monitor
        full = monitor.query()
        mid = full[len(full) // 2].time
        early = monitor.query(until=mid)
        late = monitor.query(since=mid + 1)
        assert len(early) + len(late) == len(full)
        assert all(c.time <= mid for c in early)

    def test_filters_conjoin(self, loaded_monitor):
        monitor, __ = loaded_monitor
        full = monitor.query()
        last = full[-1].time
        results = monitor.query(new_state="Completed", since=last)
        assert len(results) == 1  # only the process completion itself

    def test_empty_result(self, loaded_monitor):
        monitor, __ = loaded_monitor
        assert monitor.query(new_state="Suspended") == ()
        assert monitor.query(user="nobody") == ()
