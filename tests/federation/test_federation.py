"""Tests for the Figure 5 architecture: system, clients, monitor."""

import pytest

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.errors import WorklistError
from repro.events.queues import SqliteDeliveryQueue


class TestEnactmentSystem:
    def test_engines_share_one_clock(self, system):
        assert system.core.clock is system.clock
        assert system.coordination.core is system.core
        assert system.awareness.core is system.core
        assert system.service.coordination is system.coordination

    def test_participant_client_cached(self, system, alice):
        a = system.participant_client(alice)
        b = system.participant_client(alice)
        assert a is b

    def test_isolate_errors_flag_reaches_the_bus(self):
        system = EnactmentSystem(isolate_errors=True)

        def broken(event):
            raise RuntimeError("boom")

        system.bus.subscribe("T_activity", broken)
        # Driving a state change publishes T_activity; the broken handler
        # is recorded, not raised.
        from repro import (
            ActivityVariable,
            BasicActivitySchema,
            ProcessActivitySchema,
        )

        process = ProcessActivitySchema("p-i", "iso")
        process.add_activity_variable(
            ActivityVariable("a", BasicActivitySchema("b-i", "a"))
        )
        process.mark_entry("a")
        system.core.register_schema(process)
        system.coordination.start_process(process)
        assert len(system.bus.handler_errors) > 0

    def test_stats_keys(self, system):
        stats = system.stats()
        for key in (
            "bus_events_published",
            "processes_started",
            "notifications_delivered",
        ):
            assert key in stats

    def test_sqlite_backed_system(self, tmp_path, epidemiologists, alice, bob):
        """Awareness survives a simulated server restart: the queue is
        durable, so bob's notification outlives the first system."""
        from repro.workloads.taskforce import TaskForceApplication

        path = str(tmp_path / "cmi.db")
        system = EnactmentSystem(queue=SqliteDeliveryQueue(path))
        alice2 = system.register_participant(Participant("u1", "alice"))
        bob2 = system.register_participant(Participant("u2", "bob"))
        system.core.roles.define_role("epidemiologist").add_member(alice2)
        app = TaskForceApplication(system)
        app.install_awareness()
        task_force = app.create_task_force(alice2, [alice2, bob2], 100)
        app.request_information(task_force, bob2, 80)
        app.change_task_force_deadline(task_force, 50)
        system.awareness.delivery.queue.close()

        reopened = SqliteDeliveryQueue(path)
        assert reopened.pending_count("u2") == 1
        reopened.close()


class TestParticipantClient:
    def test_sign_on_off(self, system, alice):
        client = system.participant_client(alice)
        client.sign_on()
        assert alice.signed_on
        client.sign_off()
        assert not alice.signed_on

    def test_complete_requires_claim_by_self(
        self, system, alice, bob, epidemiologists, simple_process
    ):
        system.coordination.start_process(simple_process)
        alice_client = system.participant_client(alice)
        bob_client = system.participant_client(bob)
        item = alice_client.work_items()[0]
        alice_client.claim(item)
        with pytest.raises(WorklistError):
            bob_client.complete(item)
        alice_client.complete(item)

    def test_claim_and_complete_all(
        self, system, alice, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        done = system.participant_client(alice).claim_and_complete_all()
        assert done == 2
        assert instance.current_state == "Completed"

    def test_monitor_view(self, system, alice, epidemiologists, simple_process):
        instance = system.coordination.start_process(simple_process)
        view = system.participant_client(alice).monitor_view(instance)
        assert "simple-report" in view
        assert "draft" in view


class TestDesignerClient:
    def test_register_and_deploy(self, system, epidemiologists):
        designer = system.designer_client("hans")
        basic = BasicActivitySchema(
            "b-x", "x", performer=RoleRef("epidemiologist")
        )
        process = ProcessActivitySchema("p-x", "px")
        process.add_activity_variable(ActivityVariable("x", basic))
        process.mark_entry("x")
        designer.register_process(process)
        window = designer.open_awareness_window("p-x")
        flt = window.place("Filter_activity", "x", None, {"Completed"})
        window.connect(window.source("ActivityEvent"), flt, 0)
        window.output(flt, RoleRef("epidemiologist"), schema_name="AS_done")
        detector = designer.deploy_awareness(window)
        assert detector.schema_names() == ("AS_done",)

    def test_advertise_service(self, system):
        from repro.service import QoSAttributes, ServiceDefinition

        designer = system.designer_client()
        process = ProcessActivitySchema("p-s", "svc")
        process.add_activity_variable(
            ActivityVariable("a", BasicActivitySchema("b-s", "a"))
        )
        process.mark_entry("a")
        definition = ServiceDefinition(
            "svc-1", "svc", "provider", process, QoSAttributes(max_duration=10)
        )
        designer.advertise_service(definition)
        assert system.service.registry.service("svc-1") is definition


class TestMonitor:
    def test_log_records_every_state_change(
        self, system, alice, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        system.participant_client(alice).claim_and_complete_all()
        log = system.monitor.log()
        assert len(log) >= 8  # process + two activities, several hops each
        process_log = system.monitor.log_for_process(instance)
        assert len(process_log) == len(log)

    def test_status_tree_shows_performer(
        self, system, alice, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        client = system.participant_client(alice)
        item = client.work_items()[0]
        client.claim(item)
        tree = system.monitor.status_tree(instance)
        assert "performer: alice" in tree

    def test_timeline_shows_running_intervals(
        self, system, alice, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        system.participant_client(alice).claim_and_complete_all()
        timeline = system.monitor.timeline(instance)
        assert "draft" in timeline
        assert "review" in timeline
        assert "─" in timeline

    def test_open_activity_shown_with_ellipsis(
        self, system, alice, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        client = system.participant_client(alice)
        client.claim(client.work_items()[0])
        timeline = system.monitor.timeline(instance)
        assert "…" in timeline
