"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_prints_notification(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "AS_InfoRequest" in out
        assert "dr-kim's viewer" in out


class TestEpidemic:
    def test_epidemic_prints_timeline(self, capsys):
        assert main(["epidemic", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "information-gathering" in out
        assert "lab tests:" in out


class TestOverload:
    def test_overload_prints_both_tables(self, capsys):
        assert main(["overload", "--task-forces", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "raw mode" in out
        assert "digested mode" in out
        assert "CMI customized awareness" in out


class TestDemonstration:
    def test_demonstration_prints_paper_rows(self, capsys):
        assert main(["demonstration"]) == 0
        out = capsys.readouterr().out
        assert "collaboration processes" in out
        assert "a few hundred" in out


class TestCheckSpec:
    def test_valid_spec_accepted(self, tmp_path, capsys):
        spec = tmp_path / "spec.dsl"
        spec.write_text(
            "a = Filter_context[C, f](ContextEvent)\n"
            'deliver a to owner as "hello" named AS_A\n'
        )
        assert main(["check-spec", str(spec), "--process-schema", "P-X"]) == 0
        out = capsys.readouterr().out
        assert "OK: 1 awareness schema(s)" in out
        assert "AS_A" in out

    def test_invalid_spec_reports_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.dsl"
        spec.write_text("a = Magic[](ContextEvent)\ndeliver a to r\n")
        assert main(["check-spec", str(spec)]) == 1
        err = capsys.readouterr().err
        assert "unknown operator family" in err

    def test_missing_file_reports_error(self, capsys):
        assert main(["check-spec", "/nonexistent/spec.dsl"]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestHealth:
    def test_health_json_reports_rules_and_matches_exit_code(self, capsys):
        import json

        code = main(["health", "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert {"federation", "systems", "alerts"} <= set(payload)
        # Demonstration queues are never drained, so the backlog rules
        # honestly report a degraded system.
        assert payload["federation"] == "degraded"
        assert code == 1
        (system,) = payload["systems"]
        assert len(system["rules"]) >= 4
        assert {"queue-depth", "delivery-lag", "failure-rate",
                "timer-backlog"} <= set(system["rules"])
        assert payload["alerts"]
        assert all("provenance" in alert for alert in payload["alerts"])

    def test_health_exit_zero_with_raised_limits(self, capsys):
        code = main([
            "health",
            "--limit", "queue-depth=100000",
            "--limit", "delivery-lag=100000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "federation: ok" in out

    def test_health_exit_two_on_failing_rule(self, capsys):
        # limit=-1 makes failure-rate (severity: failing) breach at rate 0.
        code = main(["health", "--limit", "failure-rate=-1"])
        out = capsys.readouterr().out
        assert code == 2
        assert "federation: failing" in out

    def test_bad_limit_format_is_a_usage_error(self, capsys):
        assert main(["health", "--limit", "queue-depth"]) == 1
        assert "rule=value" in capsys.readouterr().err

    def test_unknown_rule_rejected(self, capsys):
        assert main(["health", "--limit", "no-such-rule=1"]) == 1
        assert "unknown rule" in capsys.readouterr().err


class TestTop:
    def test_top_renders_the_federation_table(self, capsys):
        code = main([
            "top", "--iterations", "2", "--refresh", "0", "--no-clear",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "federation:" in out
        assert "cmi-1" in out
