"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_prints_notification(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "AS_InfoRequest" in out
        assert "dr-kim's viewer" in out


class TestEpidemic:
    def test_epidemic_prints_timeline(self, capsys):
        assert main(["epidemic", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "information-gathering" in out
        assert "lab tests:" in out


class TestOverload:
    def test_overload_prints_both_tables(self, capsys):
        assert main(["overload", "--task-forces", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "raw mode" in out
        assert "digested mode" in out
        assert "CMI customized awareness" in out


class TestDemonstration:
    def test_demonstration_prints_paper_rows(self, capsys):
        assert main(["demonstration"]) == 0
        out = capsys.readouterr().out
        assert "collaboration processes" in out
        assert "a few hundred" in out


class TestCheckSpec:
    def test_valid_spec_accepted(self, tmp_path, capsys):
        spec = tmp_path / "spec.dsl"
        spec.write_text(
            "a = Filter_context[C, f](ContextEvent)\n"
            'deliver a to owner as "hello" named AS_A\n'
        )
        assert main(["check-spec", str(spec), "--process-schema", "P-X"]) == 0
        out = capsys.readouterr().out
        assert "OK: 1 awareness schema(s)" in out
        assert "AS_A" in out

    def test_invalid_spec_reports_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.dsl"
        spec.write_text("a = Magic[](ContextEvent)\ndeliver a to r\n")
        assert main(["check-spec", str(spec)]) == 1
        err = capsys.readouterr().err
        assert "unknown operator family" in err

    def test_missing_file_reports_error(self, capsys):
        assert main(["check-spec", "/nonexistent/spec.dsl"]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
