"""The write-ahead frame log: framing, fsync batching, repair, compaction."""

import os

import pytest

from repro.durability.log import (
    CONTROL_COMPACTED,
    FrameLog,
    log_base,
    read_file_frames,
    scan,
)
from repro.errors import DurabilityError


def frames_for(count, start=0):
    return [{"kind": "events", "n": index} for index in range(start, count)]


class TestAppendAndScan:
    def test_round_trip_preserves_frames_and_indices(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with FrameLog(path) as log:
            indices = [log.append(frame) for frame in frames_for(5)]
        assert indices == [0, 1, 2, 3, 4]
        assert read_file_frames(path) == frames_for(5)
        file_frames, valid, torn = scan(path)
        assert file_frames == 5
        assert valid == os.path.getsize(path)
        assert not torn

    def test_reopen_continues_the_numbering(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with FrameLog(path) as log:
            log.append({"kind": "events", "n": 0})
        with FrameLog(path) as log:
            assert log.frame_count == 1
            assert log.append({"kind": "events", "n": 1}) == 1

    def test_tail_reads_from_an_absolute_index(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with FrameLog(path) as log:
            for frame in frames_for(6):
                log.append(frame)
            assert log.tail(4) == frames_for(6)[4:]
            assert log.tail(0) == frames_for(6)


class TestFsyncBatching:
    def test_fsync_runs_once_per_batch(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
        )
        with FrameLog(str(tmp_path / "journal.log"), fsync_every=4) as log:
            for frame in frames_for(7):
                log.append(frame)
            assert len(calls) == 1  # one batch of 4; 3 appends pending
            log.sync()
            assert len(calls) == 2
            log.sync()  # nothing unsynced: no extra fsync
            assert len(calls) == 2

    def test_fsync_every_zero_never_batches(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
        )
        log = FrameLog(str(tmp_path / "journal.log"), fsync_every=0)
        for frame in frames_for(10):
            log.append(frame)
        assert calls == []
        log.close()  # close still flushes once
        assert len(calls) == 1

    def test_negative_fsync_every_is_rejected(self, tmp_path):
        with pytest.raises(DurabilityError):
            FrameLog(str(tmp_path / "journal.log"), fsync_every=-1)


class TestTornTailRepair:
    def test_partial_payload_is_truncated_on_reopen(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with FrameLog(path) as log:
            for frame in frames_for(3):
                log.append(frame)
        # A crashed writer left a complete header promising more payload
        # than exists.
        with open(path, "ab") as handle:
            handle.write((1 << 16).to_bytes(4, "big"))
            handle.write(b'{"kind": "ev')
        assert scan(path)[2] is True
        with FrameLog(path) as log:
            assert log.frame_count == 3
            assert log.append({"kind": "events", "n": 3}) == 3
        assert read_file_frames(path) == frames_for(4)

    def test_partial_header_is_truncated_on_reopen(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with FrameLog(path) as log:
            for frame in frames_for(2):
                log.append(frame)
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00")  # 2 of the 4 header bytes
        file_frames, valid, torn = scan(path)
        assert (file_frames, torn) == (2, True)
        with FrameLog(path) as log:
            assert log.frame_count == 2
        assert os.path.getsize(path) == valid


class TestCompaction:
    def test_compaction_preserves_absolute_indices(self, tmp_path):
        path = str(tmp_path / "journal.log")
        log = FrameLog(path)
        for frame in frames_for(8):
            log.append(frame)
        survivors = log.compact(5)
        assert survivors == 3
        assert log.base == 5
        assert log.tail(5) == frames_for(8)[5:]
        assert log.tail(6) == frames_for(8)[6:]
        # New appends continue the absolute numbering.
        assert log.append({"kind": "events", "n": 8}) == 8
        log.close()
        # The control frame makes the file self-describing.
        raw = read_file_frames(path)
        assert raw[0] == {"kind": CONTROL_COMPACTED, "base": 5}
        assert log_base(path) == 5

    def test_reopen_after_compaction_keeps_the_base(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with FrameLog(path) as log:
            for frame in frames_for(6):
                log.append(frame)
            log.compact(4)
        with FrameLog(path) as log:
            assert log.base == 4
            assert log.frame_count == 6
            assert log.tail(4) == frames_for(6)[4:]

    def test_reading_below_the_base_is_refused(self, tmp_path):
        with FrameLog(str(tmp_path / "journal.log")) as log:
            for frame in frames_for(4):
                log.append(frame)
            log.compact(2)
            with pytest.raises(DurabilityError):
                log.tail(1)

    def test_compacting_past_the_end_is_refused(self, tmp_path):
        with FrameLog(str(tmp_path / "journal.log")) as log:
            log.append({"kind": "events", "n": 0})
            with pytest.raises(DurabilityError):
                log.compact(2)

    def test_compacting_below_the_base_is_a_noop(self, tmp_path):
        with FrameLog(str(tmp_path / "journal.log")) as log:
            for frame in frames_for(5):
                log.append(frame)
            log.compact(3)
            assert log.compact(2) == 2  # still 2 payload frames on file
            assert log.base == 3
