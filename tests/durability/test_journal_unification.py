"""The audit journal and the shard WAL share one on-disk format.

``Journal.save_frames`` writes the CORE audit trail as a durability
frame log — the same length-prefixed, torn-tail-tolerant format the
shard supervisors journal into — and ``Journal.load_frames`` reads it
back for replay through ``recover_core``.
"""

from repro.durability.log import CONTROL_COMPACTED, FrameLog, scan
from repro.federation.journal import Journal, recover_core

from tests.federation.test_journal import run_scenario, snapshot


class TestFrameFormatUnification:
    def test_frame_round_trip_recovers_exactly(self, tmp_path):
        system, journal = run_scenario()
        path = str(tmp_path / "audit.log")
        journal.save_frames(path)
        reloaded = Journal.load_frames(path)
        assert len(reloaded) == len(journal)
        assert reloaded.records() == journal.records()
        recovered = recover_core(reloaded)
        assert snapshot(recovered) == snapshot(system.core)

    def test_frame_file_is_a_valid_wal(self, tmp_path):
        __, journal = run_scenario()
        path = str(tmp_path / "audit.log")
        journal.save_frames(path)
        file_frames, __, torn = scan(path)
        assert file_frames == len(journal)
        assert not torn

    def test_load_skips_control_frames(self, tmp_path):
        __, journal = run_scenario()
        path = str(tmp_path / "audit.log")
        journal.save_frames(path)
        with FrameLog(path, fsync_every=0) as log:
            log.compact(2)
        reloaded = Journal.load_frames(path)
        assert len(reloaded) == len(journal) - 2
        assert all(
            record.get("kind") != CONTROL_COMPACTED
            for record in reloaded.records()
        )

    def test_save_frames_overwrites_a_previous_file(self, tmp_path):
        __, journal = run_scenario()
        path = str(tmp_path / "audit.log")
        journal.save_frames(path)
        journal.save_frames(path)  # idempotent, not append-doubling
        assert len(Journal.load_frames(path)) == len(journal)
