"""Crash recovery through the shard supervisor (process backend).

Every test SIGKILLs a live worker and asserts the supervised federation
continues as if nothing happened: same merged notification stream (the
exact-continuation contract QE12 measures at scale), counters intact,
journals and snapshots on disk where the issue says they must be.
"""

import json
import multiprocessing
import os
import signal

import pytest

from repro.durability.log import read_file_frames, scan
from repro.durability.supervisor import JOURNAL_FILENAME, SNAPSHOT_FILENAME
from repro.errors import ParallelError, ShardCrashError
from repro.parallel import ShardConfig, ShardSpec, ShardedFederation
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)


def small_workload(seed=23):
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=4, windows_per_force=2, events_per_force=30, seed=seed
        )
    )


def durable_config(tmp_path, **overrides):
    defaults = dict(
        shards=2,
        backend="process",
        instrument=True,
        join_timeout=10.0,
        durable_dir=str(tmp_path / "durable"),
        batch_size=16,
    )
    defaults.update(overrides)
    return ShardConfig(**defaults)


def kill_worker(shard):
    worker = shard.inner
    worker.process._popen._send_signal(signal.SIGKILL)  # noqa: SLF001
    worker.process.join(10.0)


def signatures(notifications):
    return sorted(map(repr, (n.signature for n in notifications)))


def reference_run(workload):
    with ShardedFederation(
        workload.blueprint(),
        ShardConfig(
            shards=2, backend="process", instrument=True, join_timeout=10.0
        ),
    ) as federation:
        federation.ingest(workload.events())
        return federation.drain()


class TestCrashRecovery:
    def test_recovered_stream_equals_the_uninterrupted_one(self, tmp_path):
        workload = small_workload()
        events = workload.events()
        cut = len(events) // 2
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            federation.ingest(events[:cut])
            federation.drain()
            kill_worker(federation.shards[0])
            federation.ingest(events[cut:])
            federation.drain()
            stats = federation.stats()
            merged = list(federation.delivered)
        assert stats["recoveries"] == 1
        assert len(merged) == workload.expected_notifications()
        assert signatures(merged) == signatures(reference_run(workload))

    def test_per_instance_order_survives_recovery(self, tmp_path):
        workload = small_workload(seed=31)
        events = workload.events()
        cut = len(events) // 3
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            federation.ingest(events[:cut])
            federation.drain()
            kill_worker(federation.shards[1])
            federation.ingest(events[cut:])
            federation.drain()
            merged = list(federation.delivered)
        by_instance = {}
        for notification in merged:
            by_instance.setdefault(
                notification.process_instance_id, []
            ).append(notification)
        reference = {}
        for notification in reference_run(workload):
            reference.setdefault(
                notification.process_instance_id, []
            ).append(notification)
        assert by_instance.keys() == reference.keys()
        for instance, sequence in reference.items():
            assert [n.signature for n in by_instance[instance]] == [
                n.signature for n in sequence
            ]

    def test_double_crash_of_the_same_shard(self, tmp_path):
        workload = small_workload()
        events = workload.events()
        third = len(events) // 3
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            federation.ingest(events[:third])
            federation.drain()
            kill_worker(federation.shards[0])
            federation.ingest(events[third : 2 * third])
            federation.drain()
            kill_worker(federation.shards[0])
            federation.ingest(events[2 * third :])
            federation.drain()
            stats = federation.stats()
            merged = list(federation.delivered)
        assert stats["recoveries"] == 2
        assert signatures(merged) == signatures(reference_run(workload))

    def test_recovery_replays_a_runtime_deploy(self, tmp_path):
        workload = small_workload()
        events = workload.events()
        cut = len(events) // 2
        extra = ShardSpec(
            spec_id="spec-extra",
            process_schema_id=workload.config.process_schema_id,
            text=workload.specification_text(0).replace("AS_TF", "AS_XX"),
        )
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            federation.ingest(events[:cut])
            federation.drain()
            federation.deploy(extra)
            kill_worker(federation.shards[0])
            federation.ingest(events[cut:])
            federation.drain()
            merged = list(federation.delivered)
            assert federation.healthy()
        with ShardedFederation(
            workload.blueprint(),
            ShardConfig(
                shards=2,
                backend="process",
                instrument=True,
                join_timeout=10.0,
            ),
        ) as reference:
            reference.ingest(events[:cut])
            reference.drain()
            reference.deploy(extra)
            reference.ingest(events[cut:])
            reference.drain()
            expected = list(reference.delivered)
        assert signatures(merged) == signatures(expected)
        assert any(n.schema_name.startswith("AS_XX") for n in merged)

    def test_snapshot_then_crash_recovers_from_the_snapshot(self, tmp_path):
        workload = small_workload()
        events = workload.events()
        cut = 2 * len(events) // 3
        config = durable_config(tmp_path, snapshot_every=2, batch_size=8)
        with ShardedFederation(workload.blueprint(), config) as federation:
            federation.ingest(events[:cut])
            federation.drain()
            shard = federation.shards[0]
            # The cadence fired: a snapshot exists and the journal was
            # compacted down to the frames it does not cover.
            assert os.path.exists(shard.snapshot_path)
            assert shard.journal.base > 0
            kill_worker(federation.shards[0])
            federation.ingest(events[cut:])
            federation.drain()
            stats = federation.stats()
            merged = list(federation.delivered)
        assert stats["recoveries"] == 1
        assert signatures(merged) == signatures(reference_run(workload))

    def test_crash_during_idle_read_is_recovered_too(self, tmp_path):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            federation.ingest(workload.events())
            federation.drain()
            kill_worker(federation.shards[0])
            stats = federation.stats()  # read path: retried after recovery
            assert stats["recoveries"] == 1
            assert stats["shards_alive"] == 2
            assert federation.healthy()

    def test_max_recoveries_is_a_hard_stop(self, tmp_path):
        workload = small_workload()
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path, max_recoveries=1)
        ) as federation:
            federation.ingest(workload.events())
            federation.drain()
            kill_worker(federation.shards[0])
            assert federation.stats()["recoveries"] == 1  # recovered once
            kill_worker(federation.shards[0])
            with pytest.raises(ShardCrashError, match="giving up"):
                federation.shards[0].stats()
            # The facade's aggregate view degrades instead of raising.
            assert not federation.healthy()
            assert federation.stats()["shards_alive"] == 1


class TestDurableLifecycle:
    def test_serial_backend_refuses_durability(self, tmp_path):
        with pytest.raises(ParallelError, match="process backend"):
            ShardConfig(
                shards=2, backend="serial", durable_dir=str(tmp_path)
            )

    def test_journals_and_snapshots_land_on_disk(self, tmp_path):
        workload = small_workload()
        config = durable_config(tmp_path, snapshot_every=2, batch_size=8)
        with ShardedFederation(workload.blueprint(), config) as federation:
            federation.ingest(workload.events())
            federation.drain()
            rows = federation.shard_stats()
        for row in rows:
            assert row["recoveries"] == 0
            assert row["journal_frames"] > 0
        root = tmp_path / "durable"
        for shard_id in range(2):
            journal = root / f"shard-{shard_id}" / JOURNAL_FILENAME
            snapshot = root / f"shard-{shard_id}" / SNAPSHOT_FILENAME
            assert journal.is_file()
            assert snapshot.is_file()
            __, ___, torn = scan(str(journal))
            assert not torn
            loaded = json.loads(snapshot.read_text())
            assert loaded["shard_id"] == shard_id
            assert loaded["frame_index"] > 0

    def test_torn_journal_tail_is_repaired_on_boot(self, tmp_path):
        workload = small_workload()
        root = tmp_path / "durable"
        journal_dir = root / "shard-0"
        journal_dir.mkdir(parents=True)
        journal_path = journal_dir / JOURNAL_FILENAME
        # A previous facade died mid-append: a complete frame would have
        # been longer than what hit the disk.
        with open(journal_path, "wb") as handle:
            handle.write((1 << 16).to_bytes(4, "big"))
            handle.write(b'{"kind": "ev')
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            assert federation.shards[0].journal.frame_count == 0
            federation.ingest(workload.events())
            merged = federation.drain()
        assert len(merged) == workload.expected_notifications()
        frames = read_file_frames(str(journal_path))
        assert frames and all(f["kind"] == "events" for f in frames)

    def test_journaled_frames_replay_byte_for_byte(self, tmp_path):
        # The journal speaks the worker wire protocol: what is on disk
        # is exactly what the replacement worker is fed.
        workload = small_workload()
        events = workload.events()
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            federation.ingest(events)
            federation.drain()
            shard = federation.shards[0]
            shard.journal.sync()
            frames = shard.journal.tail(0)
            shipped = sum(len(frame["events"]) for frame in frames)
            assert shipped == shard.stats()["events_ingested"]
            assert all(frame["kind"] == "events" for frame in frames)


class TestBinaryChannelRecovery:
    def test_crash_mid_wave_resets_the_intern_tables(self, tmp_path):
        # The facade-side encoder interns strings per channel.  A
        # respawned worker starts with empty decoder tables, so the
        # facade must NOT keep the dead channel's encoder: recovery
        # builds a fresh multiplexer channel (encoder and decoder
        # included), and the journal replay re-defines every name from
        # scratch.  Crash mid-wave — with interned names in flight and
        # nothing drained — and the continued stream must still match
        # the uninterrupted run.
        workload = small_workload(seed=47)
        events = workload.events()
        cut = len(events) // 2
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            shard = federation.shards[0]
            assert shard.wire_codec == "binary"
            federation.ingest(events[:cut])  # no drain: waves in flight
            old_channel = shard.inner.channel
            # The dead channel's encoder holds interned names.
            assert old_channel._encoder is not None
            assert old_channel._encoder._count > 0
            kill_worker(shard)
            federation.ingest(events[cut:])  # first send recovers
            merged = federation.drain()
            new_channel = shard.inner.channel
            assert new_channel is not old_channel
            # The replacement channel re-interned (replay + new waves)
            # on its own fresh table.
            assert new_channel._encoder is not None
            assert new_channel._encoder._count > 0
            assert federation.stats()["recoveries"] == 1
            merged = list(federation.delivered)
        assert len(merged) == workload.expected_notifications()
        assert signatures(merged) == signatures(reference_run(workload))

    def test_journal_replays_a_preexisting_json_journal(self, tmp_path):
        # A durable directory written by a JSON-codec deployment keeps
        # replaying after the binary codec becomes the default: opening
        # the journal re-encodes it (events frames convert to their raw
        # form), and the frame numbering is preserved.
        workload = small_workload(seed=53)
        events = workload.events()
        cut = len(events) // 2
        json_config = durable_config(tmp_path, wire_codec="json")
        with ShardedFederation(
            workload.blueprint(), json_config
        ) as federation:
            federation.ingest(events[:cut])
            federation.drain()
            first = list(federation.delivered)
            frames_before = [
                shard.journal.frame_count for shard in federation.shards
            ]
        binary_config = durable_config(tmp_path)  # binary default
        with ShardedFederation(
            workload.blueprint(), binary_config
        ) as federation:
            for shard, count in zip(federation.shards, frames_before):
                # The upgraded journal kept the absolute numbering.
                assert shard.journal.codec == "binary"
                assert shard.journal.frame_count == count
            federation.ingest(events[cut:])
            federation.drain()
            second = list(federation.delivered)
        # Both halves delivered; no crash, no frame loss.
        combined = signatures(first) + signatures(second)
        assert len(combined) == workload.expected_notifications()


class TestInflightRecovery:
    def test_sigkill_with_a_full_credit_window_recovers_exactly(
        self, tmp_path
    ):
        # The overlapped-I/O recovery contract: stop a worker so the
        # credit window fills and batches defer facade-side, SIGKILL it
        # with those frames in flight, and continue.  The journal holds
        # every queued-then-sent frame (journal-before-send), the
        # replacement worker replays the in-flight window, and the
        # credit accounting re-bases on the replayed sequences — the
        # final stream must equal the serial backend's, multiset and
        # per-instance order both.
        workload = small_workload(seed=61)
        events = workload.events()
        cut = len(events) // 2
        config = durable_config(tmp_path, batch_size=4, max_inflight=2)
        with ShardedFederation(workload.blueprint(), config) as federation:
            shard = federation.shards[0]
            worker = shard.inner
            worker.process._popen._send_signal(signal.SIGSTOP)  # noqa: SLF001
            federation.ingest(events[:cut])  # fills the window, defers
            channel = worker.channel
            assert channel.outstanding == 2  # the window is full
            assert channel.stalls > 0
            kill_worker(shard)
            federation.ingest(events[cut:])  # first send recovers
            federation.drain()
            stats = federation.stats()
            merged = list(federation.delivered)
        assert stats["recoveries"] == 1
        with ShardedFederation(
            workload.blueprint(),
            ShardConfig(shards=1, backend="serial", instrument=True),
        ) as serial:
            serial.ingest(workload.events())
            base = serial.drain()
        assert len(merged) == workload.expected_notifications()
        assert signatures(merged) == signatures(base)
        by_instance = {}
        for notification in merged:
            by_instance.setdefault(
                notification.process_instance_id, []
            ).append(notification.signature)
        reference = {}
        for notification in base:
            reference.setdefault(
                notification.process_instance_id, []
            ).append(notification.signature)
        assert by_instance == reference
