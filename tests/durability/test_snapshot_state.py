"""Snapshot codec and host-level snapshot/restore determinism."""

import json

import pytest

from repro.durability.snapshot import SNAPSHOT_VERSION, ShardSnapshot
from repro.durability.state import decode_state, encode_state
from repro.errors import DurabilityError, SnapshotUnsupportedError
from repro.observability import instrumented
from repro.parallel.host import ShardHost
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload


def workload():
    return ShardStreamWorkload(
        ShardStreamConfig(forces=3, windows_per_force=2, events_per_force=24)
    )


def booted_host(wl, shard_id=0, shard_count=1):
    host = ShardHost(shard_id, shard_count)
    host.apply_blueprint(wl.blueprint())
    return host


class TestStateCodec:
    def test_scalars_and_containers_round_trip(self):
        state = {
            "count": 3,
            "flags": [True, False],
            "pair": (1, "two"),
            "keys": frozenset({1, 2}),
            7: {"nested": None},
        }
        decoded = decode_state(json.loads(json.dumps(encode_state(state))))
        assert decoded == state

    def test_dollar_prefixed_string_keys_survive(self):
        state = {"$ev": "not an event", "$m": [1, 2]}
        assert decode_state(encode_state(state)) == state

    def test_held_events_keep_their_provenance(self):
        wl = workload()
        event = wl.events()[0]
        with instrumented():
            host = booted_host(wl)
            host.ingest([event])
            held = None
            for operator in host.live_operators():
                for value in operator._partitions.values():
                    held = value
            assert held is not None  # count state exists after one event
        decoded = decode_state(
            json.loads(json.dumps(encode_state(event)))
        )
        assert decoded.type_name == event.type_name
        assert dict(decoded.params) == dict(event.params)
        host.close()

    def test_unencodable_state_raises(self):
        with pytest.raises(SnapshotUnsupportedError):
            encode_state({"handle": object()})


class TestShardSnapshotFile:
    def test_save_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        snapshot = ShardSnapshot(
            shard_id=1,
            frame_index=42,
            blueprint={"participants": []},
            state={"seq": 7},
        )
        snapshot.save(path)
        loaded = ShardSnapshot.load(path)
        assert loaded == snapshot

    def test_missing_snapshot_is_none(self, tmp_path):
        assert ShardSnapshot.load(str(tmp_path / "nope.json")) is None

    def test_corrupt_snapshot_is_an_error(self, tmp_path):
        path = tmp_path / "snapshot.json"
        path.write_text("{broken")
        with pytest.raises(DurabilityError):
            ShardSnapshot.load(str(path))

    def test_version_drift_is_an_error(self):
        data = ShardSnapshot(0, 0, {}, {}).to_dict()
        data["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(DurabilityError):
            ShardSnapshot.from_dict(data)


class TestHostSnapshotRestore:
    def test_snapshot_plus_replay_matches_uninterrupted_run(self):
        wl = workload()
        events = wl.events()
        cut = len(events) // 2

        with instrumented():
            reference = booted_host(wl)
            reference.ingest(events)
            expected = reference.drain_results()
            reference.close()

            first = booted_host(wl)
            first.ingest(events[:cut])
            before = first.drain_results()
            state = first.snapshot_state()
            assert state is not None
            first.close()

            # The crash-recovery shape: a fresh host from the same
            # blueprint, the snapshot restored, the tail replayed.
            recovered = booted_host(wl)
            recovered.restore_state(json.loads(json.dumps(state)))
            recovered.ingest(events[cut:])
            after = recovered.drain_results()
            recovered.close()

        combined = before + after
        assert [r["seq"] for r in combined] == list(range(len(combined)))
        assert [r["signature"] for r in combined] == [
            r["signature"] for r in expected
        ]

    def test_restored_stats_continue_the_counters(self):
        wl = workload()
        events = wl.events()
        host = booted_host(wl)
        host.ingest(events)
        host.drain_results()
        full = host.stats()
        state = host.snapshot_state()
        host.close()

        recovered = booted_host(wl)
        recovered.restore_state(state)
        stats = recovered.stats()
        recovered.close()
        for key in (
            "events_ingested",
            "composites_recognized",
            "notifications",
            "bus_published",
        ):
            assert stats[key] == full[key], key

    def test_unencodable_operator_state_degrades_to_none(self):
        wl = workload()
        host = booted_host(wl)
        host.live_operators()[0]._partitions["poison"] = object()
        assert host.snapshot_state() is None
        host.close()

    def test_restore_refuses_a_diverged_blueprint(self):
        wl = workload()
        host = booted_host(wl)
        state = host.snapshot_state()
        host.close()
        state["operators"] = state["operators"][:-1]
        other = booted_host(wl)
        with pytest.raises(SnapshotUnsupportedError):
            other.restore_state(state)
        other.close()
