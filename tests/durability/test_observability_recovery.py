"""Recovery must not double-count shipped observability data.

A recovered worker replays the journal tail: the same events run again,
the same structured-log records are re-emitted, and — without care —
the same sampled waves would re-ship their span batches.  The defenses
under test: the supervisor replays frames with the trace sampling
decision stripped (spans ship once, pre-crash), and filters re-shipped
log records through the ``_seq`` high-watermark (the snapshot restores
the worker's emission counter, so replayed records collide exactly with
the sequence numbers already merged).
"""

import multiprocessing
import os
import signal

import pytest

from repro.durability.supervisor import SNAPSHOT_FILENAME
from repro.parallel import ShardConfig, ShardedFederation
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)


def small_workload(seed=23):
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=4, windows_per_force=2, events_per_force=30, seed=seed
        )
    )


def durable_config(tmp_path, **overrides):
    defaults = dict(
        shards=2,
        backend="process",
        instrument=True,
        ship_logs=True,
        trace_sample_every=1,
        join_timeout=10.0,
        durable_dir=str(tmp_path / "durable"),
        snapshot_every=0,
    )
    defaults.update(overrides)
    return ShardConfig(**defaults)


def kill_worker(shard):
    worker = shard.inner
    worker.process._popen._send_signal(signal.SIGKILL)  # noqa: SLF001
    worker.process.join(10.0)


def chunks(sequence, size):
    for start in range(0, len(sequence), size):
        yield sequence[start : start + size]


def drive(federation, events, wave_size=30):
    """Feed *events* in waves: each drain flushes one batch per shard,
    so every assembled trace holds at most one span tree per shard."""
    merged = []
    for chunk in chunks(events, wave_size):
        federation.ingest(chunk)
        merged.extend(federation.drain())
    return merged


def assert_no_double_counting(federation):
    assembler = federation.trace_assembler
    # Replayed waves ship no span batches (sampling stripped), so no
    # trace holds two trees from the same shard and nothing is orphaned.
    for trace in federation.traces():
        shards = [entry["shard"] for entry in trace["spans"]]
        assert len(shards) == len(set(shards))
    assert assembler.orphaned == 0
    # Replayed log records are filtered by the high-watermark, so each
    # shard's merged stream has strictly unique sequence numbers.
    view = federation.logs()
    for shard in {record["shard"] for record in view.records()}:
        seqs = [record["_seq"] for record in view.records(shard=shard)]
        assert len(seqs) == len(set(seqs))
    assert view.dropped() == {}


class TestRecoveryDoubleCounting:
    def test_journal_replay_does_not_reship_spans_or_logs(self, tmp_path):
        workload = small_workload()
        events = workload.events()
        half = len(events) // 2
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            merged = drive(federation, events[:half])
            federation.refresh_observability()
            shipped_before = {
                shard: len(federation.logs().records(shard=shard))
                for shard in (0, 1)
            }
            assert any(shipped_before.values())
            traces_before = len(federation.traces())
            assert traces_before > 0

            kill_worker(federation.shards[0])
            merged.extend(drive(federation, events[half:]))
            federation.refresh_observability()

            assert federation.shards[0].recoveries == 1
            assert_no_double_counting(federation)
            # The plane kept moving after the crash.
            assert len(federation.traces()) > traces_before
            assert len(merged) == workload.expected_notifications()

    def test_snapshot_restore_keeps_log_watermark_aligned(self, tmp_path):
        # A tight snapshot cadence: recovery boots from a snapshot whose
        # restored emission counter makes replayed record seqs collide
        # with the already-shipped ones.
        workload = small_workload()
        events = workload.events()
        half = len(events) // 2
        with ShardedFederation(
            workload.blueprint(),
            durable_config(tmp_path, snapshot_every=2),
        ) as federation:
            drive(federation, events[:half])
            federation.refresh_observability()
            shard = federation.shards[0]
            assert os.path.exists(
                os.path.join(
                    str(tmp_path / "durable"), "shard-0", SNAPSHOT_FILENAME
                )
            )
            kill_worker(shard)
            drive(federation, events[half:])
            federation.refresh_observability()

            assert shard.recoveries == 1
            assert shard._snapshot is not None  # recovered from it
            assert_no_double_counting(federation)

    def test_crashed_shards_metrics_resume_under_its_label(self, tmp_path):
        workload = small_workload()
        events = workload.events()
        half = len(events) // 2
        with ShardedFederation(
            workload.blueprint(), durable_config(tmp_path)
        ) as federation:
            drive(federation, events[:half])
            kill_worker(federation.shards[1])
            drive(federation, events[half:])
            federation.refresh_observability()
            registry = federation.metrics_registry()
            published = registry.get("bus_published_total")
            by_shard: dict = {}
            for labels, value in published.series().items():
                by_shard[labels[0]] = by_shard.get(labels[0], 0) + value
            # The replacement worker's registry replays to the full
            # per-shard count: replay rebuilds state, and the latest
            # snapshot per shard replaces (never adds to) the old one.
            assert by_shard["0"] + by_shard["1"] == len(events)
