"""Tests for overload scoring, latency probes, and table rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.base import Delivery
from repro.errors import WorkloadError
from repro.metrics import (
    GroundTruth,
    LatencyProbe,
    render_table,
    score_mechanism,
)


class TestGroundTruth:
    def test_facts_and_pairs(self):
        truth = GroundTruth(["a", "b", "c"])
        truth.add_fact(("violation", 5), ["a", "b"], time=5)
        truth.add_fact(("violation", 9), ["c"], time=9)
        assert truth.relevant_pairs() == {
            ("a", ("violation", 5)),
            ("b", ("violation", 5)),
            ("c", ("violation", 9)),
        }
        assert truth.needed_by("a") == 1
        assert truth.needed_by("c") == 1

    def test_unknown_audience_rejected(self):
        truth = GroundTruth(["a"])
        with pytest.raises(WorkloadError):
            truth.add_fact(("x",), ["ghost"])

    def test_requires_participants(self):
        with pytest.raises(WorkloadError):
            GroundTruth([])


class TestScoring:
    def _truth(self):
        truth = GroundTruth(["a", "b"])
        truth.add_fact(("v", 1), ["a"])
        truth.add_fact(("v", 2), ["b"])
        return truth

    def test_perfect_mechanism(self):
        truth = self._truth()
        deliveries = [Delivery("a", ("v", 1), 1), Delivery("b", ("v", 2), 2)]
        score = score_mechanism("perfect", deliveries, truth)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0
        assert score.overload_factor == 1.0
        assert score.deliveries_per_participant == 1.0

    def test_spammy_mechanism(self):
        truth = self._truth()
        deliveries = [
            Delivery("a", ("v", 1), 1),
            Delivery("b", ("v", 2), 2),
            *[Delivery("a", ("noise", i), i) for i in range(8)],
        ]
        score = score_mechanism("spammy", deliveries, truth)
        assert score.recall == 1.0
        assert score.precision == pytest.approx(2 / 10)
        assert score.overload_factor == pytest.approx(5.0)

    def test_blind_mechanism(self):
        truth = self._truth()
        score = score_mechanism("blind", [], truth)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_misdirected_delivery_not_credited(self):
        truth = self._truth()
        # right information, wrong person
        score = score_mechanism(
            "misdirected", [Delivery("b", ("v", 1), 1)], truth
        )
        assert score.true_positives == 0

    def test_duplicate_deliveries_count_against_overload_only(self):
        truth = self._truth()
        deliveries = [Delivery("a", ("v", 1), 1)] * 5
        score = score_mechanism("dup", deliveries, truth)
        assert score.unique_pairs == 1
        assert score.precision == 1.0
        assert score.deliveries == 5

    def test_as_row_shape(self):
        truth = self._truth()
        row = score_mechanism("m", [], truth).as_row()
        assert len(row) == 8
        assert row[0] == "m"
        assert row[-1] == "-"  # no matches -> no delay

    def test_mean_delay_uses_earliest_matching_delivery(self):
        truth = self._truth()
        deliveries = [
            Delivery("a", ("v", 1), 9),   # late copy
            Delivery("a", ("v", 1), 4),   # earliest -> delay 4 (fact time 0)
            Delivery("b", ("v", 2), 2),   # delay 2
        ]
        score = score_mechanism("m", deliveries, truth)
        assert score.mean_delay == pytest.approx(3.0)

    def test_mean_delay_respects_fact_times(self):
        truth = GroundTruth(["a"])
        truth.add_fact(("v", 10), ["a"], time=10)
        score = score_mechanism("m", [Delivery("a", ("v", 10), 14)], truth)
        assert score.mean_delay == pytest.approx(4.0)

    @given(
        n_noise=st.integers(min_value=0, max_value=50),
        n_hits=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60)
    def test_precision_recall_bounds(self, n_noise, n_hits):
        truth = self._truth()
        hits = [Delivery("a", ("v", 1), 1), Delivery("b", ("v", 2), 2)][:n_hits]
        noise = [Delivery("a", ("n", i), i) for i in range(n_noise)]
        score = score_mechanism("m", hits + noise, truth)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert score.true_positives == n_hits


class TestLatencyProbe:
    def test_measure_counts_events_and_time(self):
        probe = LatencyProbe(dag_depth=3)
        summary = probe.measure(lambda: 100)
        assert summary.events == 100
        assert summary.dag_depth == 3
        assert summary.total_seconds >= 0.0
        assert summary.per_event_us >= 0.0

    def test_summary_aggregates(self):
        probe = LatencyProbe(dag_depth=2)
        probe.measure(lambda: 10)
        probe.measure(lambda: 20)
        assert probe.summary().events == 30

    def test_zero_events(self):
        probe = LatencyProbe(dag_depth=1)
        assert probe.measure(lambda: 0).per_event_us == 0.0


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(("a", "b"), [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", "+"}
        assert lines[2].startswith("1")

    def test_title(self):
        text = render_table(("x",), [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])
