"""Tests for the foundation modules: ids, clock, errors."""

import threading

import pytest

from repro.clock import ClockError, LogicalClock
from repro.errors import (
    ContextError,
    DagValidationError,
    EventTypeError,
    InvalidTransitionError,
    ReproError,
    RoleResolutionError,
    ScopeError,
    SpecificationError,
    StateError,
)
from repro.ids import IdFactory, new_id, reset_ids


class TestIdFactory:
    def test_per_prefix_counters(self):
        factory = IdFactory()
        assert factory.new("proc") == "proc-1"
        assert factory.new("proc") == "proc-2"
        assert factory.new("act") == "act-1"

    def test_reset(self):
        factory = IdFactory()
        factory.new("x")
        factory.reset()
        assert factory.new("x") == "x-1"

    def test_thread_safety(self):
        factory = IdFactory()
        ids = []
        lock = threading.Lock()

        def worker():
            for __ in range(200):
                value = factory.new("t")
                with lock:
                    ids.append(value)

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(ids)) == 800

    def test_module_level_factory(self):
        reset_ids()
        assert new_id("g") == "g-1"
        reset_ids()
        assert new_id("g") == "g-1"


class TestLogicalClock:
    def test_monotonic_operations(self):
        clock = LogicalClock()
        assert clock.now() == 0
        assert clock.tick() == 1
        assert clock.advance(5) == 6
        assert clock.advance_to(10) == 10
        assert clock.advance_to(10) == 10  # same time allowed

    def test_backwards_rejected(self):
        clock = LogicalClock(start=5)
        with pytest.raises(ClockError):
            clock.advance_to(4)
        with pytest.raises(ClockError):
            clock.advance(0)
        with pytest.raises(ClockError):
            clock.advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            LogicalClock(start=-1)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for error_class in (
            ClockError,
            ContextError,
            DagValidationError,
            EventTypeError,
            InvalidTransitionError,
            RoleResolutionError,
            ScopeError,
            SpecificationError,
            StateError,
        ):
            assert issubclass(error_class, ReproError)

    def test_scope_error_is_a_context_error(self):
        assert issubclass(ScopeError, ContextError)

    def test_invalid_transition_is_a_state_error(self):
        assert issubclass(InvalidTransitionError, StateError)
