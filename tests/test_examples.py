"""Every example script must run cleanly and produce its key output.

Examples are documentation that executes; this test keeps them honest by
running each through ``runpy`` in-process and checking a marker string
that captures the example's point.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: example file -> a substring its output must contain.
MARKERS = {
    "quickstart.py": "A draft is ready for your review",
    "deadline_awareness.py": "undeliverable (role expired): 1",
    "epidemic_response.py": "awareness delivered to lab stakeholders",
    "newsfeed_integration.py": "Relevant news article found after assessment",
    "overload_comparison.py": "CMI customized awareness",
    "virtual_enterprise.py": "agreement violations",
    "dsl_and_extensions.py": "suppressed burst repeats: 3",
    "telecom_provisioning.py": "failed three times; escalate",
    "durable_enactment.py": "task force = Completed",
    "command_and_control.py": "Mission stalled",
}


def run_example(name: str, argv=()) -> str:
    """Execute an example in-process, returning its stdout."""
    import io
    from contextlib import redirect_stdout

    path = EXAMPLES_DIR / name
    buffer = io.StringIO()
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return buffer.getvalue()


class TestExamples:
    @pytest.mark.parametrize("name", sorted(MARKERS))
    def test_example_runs_and_prints_its_marker(self, name):
        output = run_example(name)
        assert MARKERS[name] in output, (
            f"{name} output missing marker {MARKERS[name]!r}"
        )

    def test_every_example_file_has_a_marker(self):
        on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == set(MARKERS), (
            "examples/ and the marker table are out of sync"
        )

    def test_epidemic_example_accepts_seed_argument(self):
        output = run_example("epidemic_response.py", argv=["13"])
        assert "seed 13" in output
