"""Tests for external event sources (Section 5.1.1 news-service example)."""

import pytest

from repro.errors import EventError
from repro.events.event import EventType, ParameterSpec, base_parameters
from repro.events.external import ExternalEventSource, NewsServiceSource


class TestExternalEventSource:
    def test_produce_validates_against_declared_type(self):
        event_type = EventType(
            "T_sensor",
            (*base_parameters(), ParameterSpec("reading", "int")),
        )
        source = ExternalEventSource("E_sensor", event_type)
        event = source.produce({"time": 3, "reading": 42})
        assert event["reading"] == 42
        assert event.source == "E_sensor"

    def test_time_is_mandatory(self):
        event_type = EventType("T_sensor", base_parameters())
        source = ExternalEventSource("E_sensor", event_type)
        with pytest.raises(EventError):
            source.produce({})


class TestNewsService:
    def test_register_query_and_publish_article(self):
        news = NewsServiceSource()
        query_id = news.register_query(["ebola", "region-9"])
        assert news.keywords_for(query_id) == "ebola region-9"
        event = news.publish_article(
            query_id, "Outbreak contained", time=10, relevance=0.9
        )
        assert event["queryId"] == query_id
        assert event["headline"] == "Outbreak contained"
        assert event["relevance"] == 0.9

    def test_unknown_query_rejected(self):
        news = NewsServiceSource()
        with pytest.raises(EventError):
            news.publish_article("query-99", "x", time=1)

    def test_query_ids_are_sequential(self):
        news = NewsServiceSource()
        assert news.register_query(["a"]) == "query-1"
        assert news.register_query(["b"]) == "query-2"
