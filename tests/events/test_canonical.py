"""Tests for the canonical event type C_P (Section 5.1.2)."""

from repro.events.canonical import (
    canonical_event,
    canonical_type,
    canonical_type_name,
    is_canonical,
)


class TestCanonicalType:
    def test_name_encodes_process_schema(self):
        assert canonical_type_name("P-TF") == "C[P-TF]"
        assert is_canonical("C[P-TF]")
        assert not is_canonical("T_activity")

    def test_types_cached_and_equal_per_schema(self):
        assert canonical_type("P-A") is canonical_type("P-A")
        assert canonical_type("P-A") != canonical_type("P-B")

    def test_declares_generic_information_parameters(self):
        event_type = canonical_type("P-A")
        for name in ("intInfo", "strInfo", "description", "sourceEvent"):
            assert event_type.has_parameter(name)

    def test_declares_partitioning_parameters(self):
        event_type = canonical_type("P-A")
        assert event_type.has_parameter("processSchemaId")
        assert event_type.has_parameter("processInstanceId")


class TestCanonicalEvent:
    def test_construction(self):
        event = canonical_event(
            "P-A", "proc-1", time=9, source="op", int_info=5,
            description="count=5",
        )
        assert event.type_name == "C[P-A]"
        assert event["processInstanceId"] == "proc-1"
        assert event["intInfo"] == 5
        assert event["description"] == "count=5"

    def test_source_event_copied_to_plain_dict(self):
        event = canonical_event(
            "P-A", "proc-1", time=1, source="op",
            source_event={"a": 1},
        )
        assert event["sourceEvent"] == {"a": 1}

    def test_optional_parameters_default_to_none(self):
        event = canonical_event("P-A", "proc-1", time=1, source="op")
        assert event["intInfo"] is None
        assert event["strInfo"] is None
