"""Tests for persistent delivery queues (Section 6.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueError
from repro.events.queues import (
    MemoryDeliveryQueue,
    Notification,
    QueueRegistry,
    SqliteDeliveryQueue,
)


def note(nid="n1", participant="alice", time=1, params=None):
    return Notification(
        notification_id=nid,
        participant_id=participant,
        time=time,
        description="task force deadline moved",
        schema_name="AS_InfoRequest",
        parameters={"intInfo": 50} if params is None else params,
    )


QUEUE_FACTORIES = [MemoryDeliveryQueue, SqliteDeliveryQueue]


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
class TestQueueSemantics:
    def test_enqueue_pending_retrieve(self, factory):
        queue = factory()
        queue.enqueue(note("n1"))
        queue.enqueue(note("n2", time=2))
        assert queue.pending_count("alice") == 2
        pending = queue.pending("alice")
        assert [n.notification_id for n in pending] == ["n1", "n2"]
        retrieved = queue.retrieve("alice")
        assert retrieved == pending
        assert queue.pending("alice") == ()
        assert queue.pending_count() == 0

    def test_queues_partitioned_by_participant(self, factory):
        queue = factory()
        queue.enqueue(note("n1", "alice"))
        queue.enqueue(note("n2", "bob"))
        assert queue.pending_count("alice") == 1
        assert queue.pending_count("bob") == 1
        queue.retrieve("alice")
        assert queue.pending_count("bob") == 1

    def test_fifo_order_preserved(self, factory):
        queue = factory()
        for index in range(10):
            queue.enqueue(note(f"n{index}", time=index))
        times = [n.time for n in queue.pending("alice")]
        assert times == list(range(10))


class TestSqlitePersistence:
    def test_notifications_survive_reopen(self, tmp_path):
        """A participant signed off when the event was detected still
        receives it after sign-on (the paper's persistence requirement)."""
        path = str(tmp_path / "queue.db")
        queue = SqliteDeliveryQueue(path)
        queue.enqueue(note("n1", params={"sourceEvent": {"a": 1}}))
        queue.close()

        reopened = SqliteDeliveryQueue(path)
        pending = reopened.pending("alice")
        assert len(pending) == 1
        assert pending[0].description == "task force deadline moved"
        assert pending[0].parameters["sourceEvent"] == {"a": 1}
        reopened.close()

    def test_retrieve_is_durable(self, tmp_path):
        path = str(tmp_path / "queue.db")
        queue = SqliteDeliveryQueue(path)
        queue.enqueue(note("n1"))
        queue.retrieve("alice")
        queue.close()
        reopened = SqliteDeliveryQueue(path)
        assert reopened.pending("alice") == ()
        reopened.close()

    def test_closed_queue_raises(self):
        queue = SqliteDeliveryQueue()
        queue.close()
        with pytest.raises(QueueError):
            queue.enqueue(note())
        with pytest.raises(QueueError):
            queue.pending("alice")


class TestNotificationSerialization:
    def test_round_trip(self):
        original = note(params={"intInfo": 3, "strInfo": "x"})
        restored = Notification.from_json(original.to_json())
        assert restored.notification_id == original.notification_id
        assert restored.parameters == {"intInfo": 3, "strInfo": "x"}

    def test_frozensets_become_sorted_lists(self):
        original = note(params={"assoc": frozenset([("b", "2"), ("a", "1")])})
        restored = Notification.from_json(original.to_json())
        assert restored.parameters["assoc"] == [["a", "1"], ["b", "2"]]

    def test_non_json_values_fall_back_to_repr(self):
        original = note(params={"obj": object()})
        restored = Notification.from_json(original.to_json())
        assert restored.parameters["obj"].startswith("<object object")

    @given(
        params=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(),
                st.text(max_size=20),
                st.none(),
                st.booleans(),
                st.lists(st.integers(), max_size=4),
            ),
            max_size=6,
        ),
        time=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=100)
    def test_json_round_trip_preserves_jsonable_parameters(self, params, time):
        original = note(params=params, time=time)
        restored = Notification.from_json(original.to_json())
        assert restored.time == time
        assert restored.parameters == {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in params.items()
        }


class TestQueueRegistry:
    def test_default_is_memory_queue(self):
        registry = QueueRegistry()
        assert isinstance(registry.queue, MemoryDeliveryQueue)

    def test_close_delegates(self):
        registry = QueueRegistry(SqliteDeliveryQueue())
        registry.close()
        with pytest.raises(QueueError):
            registry.queue.enqueue(note())


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
class TestQueueTelemetry:
    """The gauges the self-awareness plane samples (queue depth, lag)."""

    def test_pending_by_participant(self, factory):
        queue = factory()
        queue.enqueue(note("n1", "alice"))
        queue.enqueue(note("n2", "alice", time=2))
        queue.enqueue(note("n3", "bob", time=3))
        assert queue.pending_by_participant() == {"alice": 2, "bob": 1}
        queue.retrieve("alice")
        assert queue.pending_by_participant() == {"bob": 1}

    def test_oldest_pending_time(self, factory):
        queue = factory()
        assert queue.oldest_pending_time() is None
        queue.enqueue(note("n1", "alice", time=5))
        queue.enqueue(note("n2", "bob", time=9))
        assert queue.oldest_pending_time() == 5
        queue.retrieve("alice")
        assert queue.oldest_pending_time() == 9
        queue.retrieve("bob")
        assert queue.oldest_pending_time() is None


class TestQueueContextManager:
    def test_memory_queue_enter_returns_self(self):
        with MemoryDeliveryQueue() as queue:
            queue.enqueue(note())
            assert queue.pending_count("alice") == 1
        # close() is a no-op for the in-memory queue.
        assert queue.pending_count("alice") == 1

    def test_sqlite_queue_closed_on_exit(self):
        with SqliteDeliveryQueue() as queue:
            queue.enqueue(note())
            assert queue.pending_count("alice") == 1
        with pytest.raises(QueueError):
            queue.enqueue(note("n2"))
