"""Tests for self-contained events and event types (Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EventError, EventTypeError
from repro.events.event import (
    Event,
    EventType,
    ParameterSpec,
    base_parameters,
)


def simple_type(extra=()):
    return EventType("T_test", (*base_parameters(), *extra))


class TestEventType:
    def test_requires_self_contained_parameters(self):
        with pytest.raises(EventTypeError):
            EventType("T_bad", (ParameterSpec("time", "int"),))

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(EventTypeError):
            EventType(
                "T_bad", (*base_parameters(), ParameterSpec("time", "int"))
            )

    def test_equality_by_name(self):
        assert simple_type() == simple_type((ParameterSpec("x", "int"),))
        assert simple_type() != EventType("T_other", base_parameters())
        assert hash(simple_type()) == hash(simple_type())

    def test_conformance_checks_required_parameters(self):
        event_type = simple_type((ParameterSpec("value", "int"),))
        with pytest.raises(EventTypeError):
            event_type.conforms({"type": "T_test", "time": 1, "source": "s"})

    def test_conformance_checks_value_types(self):
        event_type = simple_type((ParameterSpec("value", "int"),))
        with pytest.raises(EventTypeError):
            event_type.conforms(
                {"type": "T_test", "time": 1, "source": "s", "value": "x"}
            )

    def test_optional_parameters_may_be_absent(self):
        event_type = simple_type(
            (ParameterSpec("value", "int", required=False),)
        )
        event_type.conforms({"type": "T_test", "time": 1, "source": "s"})

    def test_non_nullable_rejects_none(self):
        event_type = simple_type(
            (ParameterSpec("value", "int", nullable=False),)
        )
        with pytest.raises(EventTypeError):
            event_type.conforms(
                {"type": "T_test", "time": 1, "source": "s", "value": None}
            )

    def test_type_name_mismatch_rejected(self):
        event_type = simple_type()
        with pytest.raises(EventTypeError):
            event_type.conforms({"type": "T_other", "time": 1, "source": "s"})


class TestEvent:
    def test_event_fills_type_parameter(self):
        event = Event(simple_type(), {"time": 4, "source": "s"})
        assert event["type"] == "T_test"
        assert event.time == 4
        assert event.source == "s"

    def test_parameters_are_read_only(self):
        event = Event(simple_type(), {"time": 4, "source": "s"})
        with pytest.raises(TypeError):
            event.params["time"] = 9  # type: ignore[index]

    def test_missing_parameter_access_raises(self):
        event = Event(simple_type(), {"time": 4, "source": "s"})
        with pytest.raises(EventError):
            event["ghost"]
        assert event.get("ghost", 42) == 42
        assert "time" in event
        assert "ghost" not in event

    def test_derive_overrides_and_revalidates(self):
        event_type = simple_type((ParameterSpec("value", "int", required=False),))
        event = Event(event_type, {"time": 4, "source": "s", "value": 1})
        derived = event.derive(value=2)
        assert derived["value"] == 2
        assert event["value"] == 1
        with pytest.raises(EventTypeError):
            event.derive(value="nope")

    def test_derive_to_other_type(self):
        source_type = simple_type()
        target_type = EventType("T_target", base_parameters())
        event = Event(source_type, {"time": 4, "source": "s"})
        derived = event.derive(event_type=target_type)
        assert derived.type_name == "T_target"


class TestParameterSpecProperties:
    @given(
        value=st.one_of(
            st.integers(),
            st.text(max_size=10),
            st.floats(allow_nan=False),
            st.booleans(),
            st.none(),
        ),
        value_type=st.sampled_from(["int", "str", "float", "bool", "any"]),
    )
    @settings(max_examples=200)
    def test_check_accepts_iff_type_matches(self, value, value_type):
        spec = ParameterSpec("p", value_type)
        expected_ok = (
            value is None
            or value_type == "any"
            or (value_type == "int" and isinstance(value, int) and not isinstance(value, bool))
            or (value_type == "str" and isinstance(value, str))
            or (value_type == "float" and isinstance(value, float))
            or (value_type == "bool" and isinstance(value, bool))
        )
        if expected_ok:
            spec.check(value)
        else:
            with pytest.raises(EventTypeError):
                spec.check(value)
