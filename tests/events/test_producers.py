"""Tests for the primitive event producers E_activity and E_context."""

from repro.core.context import ContextChange
from repro.core.instances import ActivityStateChange
from repro.events.bus import EventBus
from repro.events.producers import (
    ACTIVITY_EVENT_TYPE,
    CONTEXT_EVENT_TYPE,
    ActivityEventProducer,
    ContextEventProducer,
)


def activity_change(**overrides):
    base = dict(
        time=5,
        activity_instance_id="act-1",
        parent_process_schema_id="P-TF",
        parent_process_instance_id="proc-1",
        user="alice",
        activity_variable_id="assess",
        activity_process_schema_id=None,
        old_state="Ready",
        new_state="Running",
    )
    base.update(overrides)
    return ActivityStateChange(**base)


def context_change():
    return ContextChange(
        time=7,
        context_id="ctx-1",
        context_name="TaskForceContext",
        associations=frozenset({("P-TF", "proc-1"), ("P-IR", "proc-2")}),
        field_name="TaskForceDeadline",
        old_value=100,
        new_value=50,
    )


class TestActivityProducer:
    def test_event_carries_section_511_parameters(self):
        producer = ActivityEventProducer()
        event = producer.produce(activity_change())
        assert event.type_name == "T_activity"
        assert event["activityInstanceId"] == "act-1"
        assert event["parentProcessSchemaId"] == "P-TF"
        assert event["parentProcessInstanceId"] == "proc-1"
        assert event["user"] == "alice"
        assert event["activityVariableId"] == "assess"
        assert event["oldState"] == "Ready"
        assert event["newState"] == "Running"
        assert event.time == 5

    def test_top_level_process_has_null_parent_fields(self):
        producer = ActivityEventProducer()
        event = producer.produce(
            activity_change(
                parent_process_schema_id=None,
                parent_process_instance_id=None,
                activity_variable_id=None,
                activity_process_schema_id="P-TF",
            )
        )
        assert event["parentProcessSchemaId"] is None
        assert event["activityProcessSchemaId"] == "P-TF"

    def test_publishes_on_attached_bus(self):
        bus = EventBus()
        got = []
        bus.subscribe("T_activity", got.append)
        producer = ActivityEventProducer()
        producer.attach(bus)
        producer.produce(activity_change())
        assert len(got) == 1
        assert producer.emitted == 1

    def test_direct_consumers_receive_without_bus(self):
        producer = ActivityEventProducer()
        got = []
        producer.add_consumer(got.append)
        producer.produce(activity_change())
        assert len(got) == 1


class TestIndexedRouting:
    def test_keyed_consumer_sees_only_matching_key(self):
        producer = ContextEventProducer()
        deadline, status = [], []
        producer.add_consumer(
            deadline.append, keys=[("TaskForceContext", "TaskForceDeadline")]
        )
        producer.add_consumer(
            status.append, keys=[("TaskForceContext", "Status")]
        )
        producer.produce(context_change())  # field TaskForceDeadline
        assert len(deadline) == 1
        assert status == []

    def test_wildcard_consumer_sees_everything(self):
        producer = ContextEventProducer()
        wild = []
        producer.add_consumer(
            [].append, keys=[("Other", "field")]
        )
        producer.add_consumer(wild.append)
        producer.produce(context_change())
        assert len(wild) == 1

    def test_remove_consumer_clears_index_entries(self):
        producer = ContextEventProducer()
        got = []
        handle = producer.add_consumer(
            got.append, keys=[("TaskForceContext", "TaskForceDeadline")]
        )
        producer.remove_consumer(handle)
        producer.produce(context_change())
        assert got == []
        assert producer.consumer_count() == 0
        assert producer.indexed_key_count() == 0

    def test_linear_mode_matches_indexed_mode(self):
        for indexed in (True, False):
            producer = ContextEventProducer()
            producer.indexed = indexed
            matching, other = [], []
            producer.add_consumer(
                matching.append,
                keys=[("TaskForceContext", "TaskForceDeadline")],
            )
            producer.add_consumer(other.append, keys=[("Ctx", "x")])
            producer.produce(context_change())
            assert len(matching) == 1, f"indexed={indexed}"
            # Linear mode scans everyone, but only registration differs;
            # the keyed consumer list is what the filter would reject from.
            if indexed:
                assert other == []

    def test_activity_producer_routes_by_schema_and_variable(self):
        producer = ActivityEventProducer()
        assess, other = [], []
        producer.add_consumer(assess.append, keys=[("P-TF", "assess")])
        producer.add_consumer(other.append, keys=[("P-TF", "report")])
        producer.produce(activity_change())
        assert len(assess) == 1
        assert other == []

    def test_attach_installs_bus_key_extractor(self):
        bus = EventBus()
        producer = ContextEventProducer()
        producer.attach(bus)
        extractor = bus.key_extractor("T_context")
        assert extractor is not None
        event = producer.produce(context_change())
        assert extractor(event) == ("TaskForceContext", "TaskForceDeadline")

    def test_produce_batch_emits_all_and_publishes_once_drained(self):
        bus = EventBus()
        got = []
        bus.subscribe("T_context", got.append)
        producer = ContextEventProducer()
        producer.attach(bus)
        direct = []
        producer.add_consumer(direct.append)
        events = producer.produce_batch([context_change(), context_change()])
        assert len(events) == 2
        assert len(direct) == 2
        assert len(got) == 2
        assert producer.emitted == 2


class TestContextProducer:
    def test_event_carries_association_set(self):
        producer = ContextEventProducer()
        event = producer.produce(context_change())
        assert event.type_name == "T_context"
        assert event["contextId"] == "ctx-1"
        assert event["processAssociations"] == frozenset(
            {("P-TF", "proc-1"), ("P-IR", "proc-2")}
        )
        assert event["fieldName"] == "TaskForceDeadline"
        assert event["oldFieldValue"] == 100
        assert event["newFieldValue"] == 50

    def test_type_declarations(self):
        assert ACTIVITY_EVENT_TYPE.has_parameter("newState")
        assert CONTEXT_EVENT_TYPE.has_parameter("processAssociations")


class TestAddConsumers:
    def test_batch_matches_a_loop_of_add_consumer(self):
        producer = ActivityEventProducer()
        order = []
        batch_calls = []
        handles = producer.add_consumers(
            [
                (lambda e, out=order: out.append("wild"), None, None),
                (
                    lambda e, out=order: out.append("keyed"),
                    (("P-TF", "assess"),),
                    lambda events: batch_calls.append(len(events)),
                ),
            ]
        )
        assert len(handles) == 2
        assert producer.consumer_count() == 2
        looped = ActivityEventProducer()
        loop_order = []
        looped.add_consumer(lambda e, out=loop_order: out.append("wild"))
        looped.add_consumer(
            lambda e, out=loop_order: out.append("keyed"),
            (("P-TF", "assess"),),
        )
        producer.produce(activity_change())
        looped.produce(activity_change())
        assert order == loop_order  # batch registration == a loop of adds
        quiet = ActivityEventProducer()
        producer.emit_batch(
            [quiet.produce(activity_change()) for __ in range(3)]
        )
        # The keyed consumer has a batch partner: the run arrives as one
        # partner call, not three per-event calls.
        assert batch_calls == [3]

    def test_batch_handles_support_removal(self):
        producer = ActivityEventProducer()
        seen = []
        handles = producer.add_consumers(
            [(seen.append, None, None), (seen.append, (("P-TF", "assess"),), None)]
        )
        for handle in handles:
            producer.remove_consumer(handle)
        producer.produce(activity_change())
        assert seen == []
        assert producer.consumer_count() == 0
