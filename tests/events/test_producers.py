"""Tests for the primitive event producers E_activity and E_context."""

from repro.core.context import ContextChange
from repro.core.instances import ActivityStateChange
from repro.events.bus import EventBus
from repro.events.producers import (
    ACTIVITY_EVENT_TYPE,
    CONTEXT_EVENT_TYPE,
    ActivityEventProducer,
    ContextEventProducer,
)


def activity_change(**overrides):
    base = dict(
        time=5,
        activity_instance_id="act-1",
        parent_process_schema_id="P-TF",
        parent_process_instance_id="proc-1",
        user="alice",
        activity_variable_id="assess",
        activity_process_schema_id=None,
        old_state="Ready",
        new_state="Running",
    )
    base.update(overrides)
    return ActivityStateChange(**base)


def context_change():
    return ContextChange(
        time=7,
        context_id="ctx-1",
        context_name="TaskForceContext",
        associations=frozenset({("P-TF", "proc-1"), ("P-IR", "proc-2")}),
        field_name="TaskForceDeadline",
        old_value=100,
        new_value=50,
    )


class TestActivityProducer:
    def test_event_carries_section_511_parameters(self):
        producer = ActivityEventProducer()
        event = producer.produce(activity_change())
        assert event.type_name == "T_activity"
        assert event["activityInstanceId"] == "act-1"
        assert event["parentProcessSchemaId"] == "P-TF"
        assert event["parentProcessInstanceId"] == "proc-1"
        assert event["user"] == "alice"
        assert event["activityVariableId"] == "assess"
        assert event["oldState"] == "Ready"
        assert event["newState"] == "Running"
        assert event.time == 5

    def test_top_level_process_has_null_parent_fields(self):
        producer = ActivityEventProducer()
        event = producer.produce(
            activity_change(
                parent_process_schema_id=None,
                parent_process_instance_id=None,
                activity_variable_id=None,
                activity_process_schema_id="P-TF",
            )
        )
        assert event["parentProcessSchemaId"] is None
        assert event["activityProcessSchemaId"] == "P-TF"

    def test_publishes_on_attached_bus(self):
        bus = EventBus()
        got = []
        bus.subscribe("T_activity", got.append)
        producer = ActivityEventProducer()
        producer.attach(bus)
        producer.produce(activity_change())
        assert len(got) == 1
        assert producer.emitted == 1

    def test_direct_consumers_receive_without_bus(self):
        producer = ActivityEventProducer()
        got = []
        producer.add_consumer(got.append)
        producer.produce(activity_change())
        assert len(got) == 1


class TestContextProducer:
    def test_event_carries_association_set(self):
        producer = ContextEventProducer()
        event = producer.produce(context_change())
        assert event.type_name == "T_context"
        assert event["contextId"] == "ctx-1"
        assert event["processAssociations"] == frozenset(
            {("P-TF", "proc-1"), ("P-IR", "proc-2")}
        )
        assert event["fieldName"] == "TaskForceDeadline"
        assert event["oldFieldValue"] == 100
        assert event["newFieldValue"] == 50

    def test_type_declarations(self):
        assert ACTIVITY_EVENT_TYPE.has_parameter("newState")
        assert CONTEXT_EVENT_TYPE.has_parameter("processAssociations")
