"""Tests for the pub/sub event bus."""

import pytest

from repro.events.bus import EventBus
from repro.events.event import Event, EventType, base_parameters


def make_event(type_name="T_a", time=1):
    return Event(
        EventType(type_name, base_parameters()),
        {"time": time, "source": "test"},
    )


class TestSubscribe:
    def test_subscriber_receives_matching_topic_only(self):
        bus = EventBus()
        got_a, got_b = [], []
        bus.subscribe("T_a", got_a.append)
        bus.subscribe("T_b", got_b.append)
        bus.publish(make_event("T_a"))
        assert len(got_a) == 1
        assert got_b == []

    def test_multiple_subscribers_all_receive(self):
        bus = EventBus()
        got1, got2 = [], []
        bus.subscribe("T_a", got1.append)
        bus.subscribe("T_a", got2.append)
        bus.publish(make_event())
        assert len(got1) == len(got2) == 1

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        got = []
        subscription = bus.subscribe("T_a", got.append)
        bus.unsubscribe(subscription)
        bus.publish(make_event())
        assert got == []
        assert bus.subscriber_count("T_a") == 0


class TestDispatchOrder:
    def test_nested_publish_is_queued_not_reentrant(self):
        """An event published from within a handler is delivered after the
        current dispatch completes (FIFO), so handlers observe a consistent
        global order."""
        bus = EventBus()
        order = []

        def handler_a(event):
            order.append(("a", event.time))
            if event.time == 1:
                bus.publish(make_event("T_a", time=2))

        def handler_b(event):
            order.append(("b", event.time))

        bus.subscribe("T_a", handler_a)
        bus.subscribe("T_a", handler_b)
        bus.publish(make_event("T_a", time=1))
        assert order == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_subscription_during_dispatch_applies_to_later_events(self):
        bus = EventBus()
        late = []

        def handler(event):
            if not late:
                bus.subscribe("T_a", late.append)

        bus.subscribe("T_a", handler)
        bus.publish(make_event())
        # The late subscriber was added mid-dispatch; publish again:
        bus.publish(make_event(time=2))
        assert len(late) >= 1


class TestUnsubscribeDuringDispatch:
    def test_unsubscribe_from_handler_stops_future_delivery(self):
        bus = EventBus()
        got = []
        subscription = None

        def once(event):
            got.append(event)
            bus.unsubscribe(subscription)

        subscription = bus.subscribe("T_a", once)
        bus.publish(make_event(time=1))
        bus.publish(make_event(time=2))
        assert len(got) == 1

    def test_stale_entry_is_reaped_on_next_dispatch(self):
        """Unsubscribing mid-dispatch only flips ``active``; the list entry
        must be reaped lazily so it does not accumulate forever."""
        bus = EventBus()
        subscription = None

        def once(event):
            bus.unsubscribe(subscription)

        subscription = bus.subscribe("T_a", once)
        keep = bus.subscribe("T_a", lambda e: None)
        bus.publish(make_event(time=1))
        # The inactive subscription may linger until the next dispatch...
        bus.publish(make_event(time=2))
        # ...after which it must be gone from the subscriber list.
        entry = bus._topics["T_a"]
        assert subscription not in entry.all_subscriptions()
        assert keep in entry.all_subscriptions()

    def test_subscribe_and_unsubscribe_same_dispatch(self):
        bus = EventBus()
        late_events = []

        def handler(event):
            if event.time == 1:
                late = bus.subscribe("T_a", late_events.append)
                bus.unsubscribe(late)

        bus.subscribe("T_a", handler)
        bus.publish(make_event(time=1))
        bus.publish(make_event(time=2))
        assert late_events == []


class TestKeyedSubscriptions:
    @staticmethod
    def keyed_bus():
        bus = EventBus()
        bus.set_key_extractor("T_a", lambda event: event.time)
        return bus

    def test_keyed_subscriber_sees_only_its_key(self):
        bus = self.keyed_bus()
        got = []
        bus.subscribe("T_a", got.append, keys=[1])
        bus.publish(make_event(time=1))
        bus.publish(make_event(time=2))
        assert [e.time for e in got] == [1]

    def test_wildcard_subscriber_sees_everything(self):
        bus = self.keyed_bus()
        keyed, wild = [], []
        bus.subscribe("T_a", keyed.append, keys=[1])
        bus.subscribe("T_a", wild.append)
        bus.publish(make_event(time=1))
        bus.publish(make_event(time=2))
        assert [e.time for e in keyed] == [1]
        assert [e.time for e in wild] == [1, 2]

    def test_subscription_under_several_keys(self):
        bus = self.keyed_bus()
        got = []
        bus.subscribe("T_a", got.append, keys=[1, 3])
        for t in (1, 2, 3):
            bus.publish(make_event(time=t))
        assert [e.time for e in got] == [1, 3]

    def test_unsubscribe_keyed_removes_index_entries(self):
        bus = self.keyed_bus()
        got = []
        subscription = bus.subscribe("T_a", got.append, keys=[1])
        bus.unsubscribe(subscription)
        bus.publish(make_event(time=1))
        assert got == []
        assert bus.subscriber_count("T_a") == 0

    def test_keys_without_extractor_fall_back_to_wildcard_dispatch(self):
        """Keyed subscriptions on a topic with no extractor are never
        reachable by key, but unkeyed topics keep plain-topic dispatch."""
        bus = EventBus()
        wild = []
        bus.subscribe("T_a", wild.append)
        bus.publish(make_event(time=1))
        assert len(wild) == 1

    def test_delivered_count_tracks_keyed_deliveries(self):
        bus = self.keyed_bus()
        bus.subscribe("T_a", lambda e: None, keys=[1])
        bus.subscribe("T_a", lambda e: None)
        bus.publish(make_event(time=1))
        bus.publish(make_event(time=2))
        assert bus.delivered_count("T_a") == 3


class TestPublishBatch:
    def test_batch_delivers_in_order(self):
        bus = EventBus()
        got = []
        bus.subscribe("T_a", got.append)
        bus.publish_batch([make_event(time=t) for t in (1, 2, 3)])
        assert [e.time for e in got] == [1, 2, 3]
        assert bus.published_count("T_a") == 3

    def test_batch_from_handler_is_queued(self):
        bus = EventBus()
        order = []

        def handler(event):
            order.append(event.time)
            if event.time == 1:
                bus.publish_batch([make_event(time=2), make_event(time=3)])

        bus.subscribe("T_a", handler)
        bus.publish(make_event(time=1))
        assert order == [1, 2, 3]


class TestErrorIsolation:
    def test_default_is_fail_fast(self):
        bus = EventBus()
        bus.subscribe("T_a", lambda e: (_ for _ in ()).throw(ValueError("boom")))
        with pytest.raises(ValueError):
            bus.publish(make_event())

    def test_isolated_errors_are_recorded_and_dispatch_continues(self):
        bus = EventBus(isolate_errors=True)
        got = []

        def broken(event):
            raise ValueError("boom")

        bus.subscribe("T_a", broken)
        bus.subscribe("T_a", got.append)
        bus.publish(make_event())
        assert len(got) == 1  # the healthy subscriber still ran
        assert len(bus.handler_errors) == 1
        topic, error = bus.handler_errors[0]
        assert topic == "T_a"
        assert isinstance(error, ValueError)

    def test_isolated_failures_do_not_count_as_delivered(self):
        bus = EventBus(isolate_errors=True)
        bus.subscribe("T_a", lambda e: (_ for _ in ()).throw(ValueError()))
        bus.publish(make_event())
        assert bus.delivered_count("T_a") == 0
        assert bus.published_count("T_a") == 1

    def test_failed_counter_tracks_partial_failures(self):
        """A partially-failing topic is not silently undercounted: the
        failures show up in their own counter."""
        bus = EventBus(isolate_errors=True)
        bus.subscribe("T_a", lambda e: (_ for _ in ()).throw(ValueError()))
        bus.subscribe("T_a", lambda e: None)
        bus.publish(make_event(time=1))
        bus.publish(make_event(time=2))
        assert bus.published_count("T_a") == 2
        assert bus.delivered_count("T_a") == 2
        assert bus.failed_count("T_a") == 2
        assert bus.failed_count() == 2
        assert bus.failed_count("T_other") == 0


class TestStatistics:
    def test_counters(self):
        bus = EventBus()
        bus.subscribe("T_a", lambda e: None)
        bus.subscribe("T_a", lambda e: None)
        bus.publish(make_event())
        bus.publish(make_event("T_b"))
        assert bus.published_count("T_a") == 1
        assert bus.published_count() == 2
        assert bus.delivered_count("T_a") == 2
        assert bus.delivered_count("T_b") == 0
        assert "T_a" in bus.topics()


class TestSubscribeMany:
    def test_batch_matches_a_loop_of_subscribes(self):
        batched, looped = EventBus(), EventBus()
        for bus in (batched, looped):
            bus.set_key_extractor("T_a", lambda e: e.params["source"])
        order_batched, order_looped = [], []
        registrations = [
            (lambda e, i=i, out=order_batched: out.append(i), keys)
            for i, keys in enumerate(
                [None, ("test",), ("other",), ("test", "other")]
            )
        ]
        batched_subs = batched.subscribe_many("T_a", registrations)
        for i, keys in enumerate(
            [None, ("test",), ("other",), ("test", "other")]
        ):
            looped.subscribe(
                "T_a", lambda e, i=i, out=order_looped: out.append(i), keys
            )
        batched.publish(make_event())
        looped.publish(make_event())
        assert order_batched == order_looped
        assert len(batched_subs) == 4

    def test_batch_after_dispatch_invalidates_snapshots(self):
        # The first publish builds the per-key dispatch snapshots; the
        # batch registration must invalidate exactly the touched ones.
        bus = EventBus()
        bus.set_key_extractor("T_a", lambda e: e.params["source"])
        first, second = [], []
        bus.subscribe("T_a", first.append, keys=("test",))
        bus.publish(make_event())
        bus.subscribe_many(
            "T_a", [(second.append, ("test",)), (second.append, None)]
        )
        bus.publish(make_event())
        assert len(first) == 2
        assert len(second) == 2  # keyed + wildcard both saw the event

    def test_batch_subscriptions_unsubscribe_normally(self):
        bus = EventBus()
        got = []
        (subscription,) = bus.subscribe_many("T_a", [(got.append, None)])
        bus.unsubscribe(subscription)
        bus.publish(make_event())
        assert got == []
