"""Tests for the pub/sub event bus."""

import pytest

from repro.events.bus import EventBus
from repro.events.event import Event, EventType, base_parameters


def make_event(type_name="T_a", time=1):
    return Event(
        EventType(type_name, base_parameters()),
        {"time": time, "source": "test"},
    )


class TestSubscribe:
    def test_subscriber_receives_matching_topic_only(self):
        bus = EventBus()
        got_a, got_b = [], []
        bus.subscribe("T_a", got_a.append)
        bus.subscribe("T_b", got_b.append)
        bus.publish(make_event("T_a"))
        assert len(got_a) == 1
        assert got_b == []

    def test_multiple_subscribers_all_receive(self):
        bus = EventBus()
        got1, got2 = [], []
        bus.subscribe("T_a", got1.append)
        bus.subscribe("T_a", got2.append)
        bus.publish(make_event())
        assert len(got1) == len(got2) == 1

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        got = []
        subscription = bus.subscribe("T_a", got.append)
        bus.unsubscribe(subscription)
        bus.publish(make_event())
        assert got == []
        assert bus.subscriber_count("T_a") == 0


class TestDispatchOrder:
    def test_nested_publish_is_queued_not_reentrant(self):
        """An event published from within a handler is delivered after the
        current dispatch completes (FIFO), so handlers observe a consistent
        global order."""
        bus = EventBus()
        order = []

        def handler_a(event):
            order.append(("a", event.time))
            if event.time == 1:
                bus.publish(make_event("T_a", time=2))

        def handler_b(event):
            order.append(("b", event.time))

        bus.subscribe("T_a", handler_a)
        bus.subscribe("T_a", handler_b)
        bus.publish(make_event("T_a", time=1))
        assert order == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_subscription_during_dispatch_applies_to_later_events(self):
        bus = EventBus()
        late = []

        def handler(event):
            if not late:
                bus.subscribe("T_a", late.append)

        bus.subscribe("T_a", handler)
        bus.publish(make_event())
        # The late subscriber was added mid-dispatch; publish again:
        bus.publish(make_event(time=2))
        assert len(late) >= 1


class TestErrorIsolation:
    def test_default_is_fail_fast(self):
        bus = EventBus()
        bus.subscribe("T_a", lambda e: (_ for _ in ()).throw(ValueError("boom")))
        with pytest.raises(ValueError):
            bus.publish(make_event())

    def test_isolated_errors_are_recorded_and_dispatch_continues(self):
        bus = EventBus(isolate_errors=True)
        got = []

        def broken(event):
            raise ValueError("boom")

        bus.subscribe("T_a", broken)
        bus.subscribe("T_a", got.append)
        bus.publish(make_event())
        assert len(got) == 1  # the healthy subscriber still ran
        assert len(bus.handler_errors) == 1
        topic, error = bus.handler_errors[0]
        assert topic == "T_a"
        assert isinstance(error, ValueError)

    def test_isolated_failures_do_not_count_as_delivered(self):
        bus = EventBus(isolate_errors=True)
        bus.subscribe("T_a", lambda e: (_ for _ in ()).throw(ValueError()))
        bus.publish(make_event())
        assert bus.delivered_count("T_a") == 0
        assert bus.published_count("T_a") == 1


class TestStatistics:
    def test_counters(self):
        bus = EventBus()
        bus.subscribe("T_a", lambda e: None)
        bus.subscribe("T_a", lambda e: None)
        bus.publish(make_event())
        bus.publish(make_event("T_b"))
        assert bus.published_count("T_a") == 1
        assert bus.published_count() == 2
        assert bus.delivered_count("T_a") == 2
        assert bus.delivered_count("T_b") == 0
        assert "T_a" in bus.topics()
