"""Tests for the crisis workloads: task force, epidemic, generator, demo."""

import pytest

from repro import EnactmentSystem
from repro.errors import WorkloadError
from repro.workloads import (
    CrisisWorkload,
    WorkloadConfig,
    build_demonstration,
)
from repro.workloads.epidemic import EpidemicScenario
from repro.workloads.taskforce import TaskForceApplication


class TestTaskForceApplication:
    def test_leader_always_a_member(self, system, alice, bob, taskforce_app):
        task_force = taskforce_app.create_task_force(alice, [bob], 100)
        assert alice in task_force.members
        assert task_force.deadline == 100

    def test_non_member_cannot_request(self, system, alice, bob, carol, taskforce_app):
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        with pytest.raises(WorkloadError):
            taskforce_app.request_information(task_force, carol, 50)

    def test_request_pool_exhaustion(self, system, alice, epidemiologists):
        app = TaskForceApplication(system, suffix="@small", max_requests=1)
        task_force = app.create_task_force(alice, [alice], 100)
        app.request_information(task_force, alice, 50)
        with pytest.raises(WorkloadError):
            app.request_information(task_force, alice, 60)

    def test_double_awareness_install_rejected(self, system, taskforce_app):
        with pytest.raises(WorkloadError):
            taskforce_app.install_awareness()

    def test_cancel_request_terminates_process(
        self, system, alice, bob, taskforce_app
    ):
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        request = taskforce_app.request_information(task_force, bob, 80)
        taskforce_app.cancel_request(request)
        assert request.process.current_state == "Terminated"

    def test_max_requests_validation(self, system):
        with pytest.raises(WorkloadError):
            TaskForceApplication(system, suffix="@bad", max_requests=0)


class TestEpidemicScenario:
    def test_figure1_structure_holds(self):
        """Any seed produces the Figure 1 shape: the three mandatory task
        forces always run; lab tests stop after a positive result."""
        report = EpidemicScenario(EnactmentSystem(), seed=21).run()
        timeline = report.timeline
        assert "patient-interview-task-force" in timeline
        assert "hospital-relations-task-force" in timeline
        assert "media-task-force" in timeline
        assert 1 <= report.lab_tests_run <= 3
        if report.positive_test is not None:
            assert report.positive_test == report.lab_tests_run

    def test_positive_result_notifies_stakeholders(self):
        system = EnactmentSystem()
        report = EpidemicScenario(system, seed=7).run()
        if report.positive_test is not None:
            # leader + both technicians got the digested positive-lab event.
            assert all(
                count == 1
                for count in report.notifications_by_participant.values()
            )
        else:
            assert all(
                count == 0
                for count in report.notifications_by_participant.values()
            )

    def test_deterministic_given_seed(self):
        a = EpidemicScenario(EnactmentSystem(), seed=5).run()
        b = EpidemicScenario(EnactmentSystem(), seed=5).run()
        assert a.lab_tests_run == b.lab_tests_run
        assert a.positive_test == b.positive_test
        assert a.expertise_rounds == b.expertise_rounds

    def test_process_completes(self):
        report = EpidemicScenario(EnactmentSystem(), seed=3).run()
        assert report.process.current_state == "Completed"

    def test_all_negative_run_delivers_no_lab_awareness(self):
        """Seed 1 runs all three lab tests, all negative: the positive-lab
        schema must stay silent and every test must have run."""
        report = EpidemicScenario(EnactmentSystem(), seed=1).run()
        assert report.positive_test is None
        assert report.lab_tests_run == 3
        assert all(
            count == 0
            for count in report.notifications_by_participant.values()
        )


class TestCrisisWorkload:
    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(task_forces=0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(members_per_force=1)
        with pytest.raises(WorkloadError):
            WorkloadConfig(participant_pool=2, members_per_force=4)
        with pytest.raises(WorkloadError):
            WorkloadConfig(violation_probability=1.5)

    def test_run_produces_expected_shape(self):
        result = CrisisWorkload(
            WorkloadConfig(task_forces=3, seed=11)
        ).run()
        scores = {s.mechanism: s for s in result.raw_scores}
        cmi = scores["CMI customized awareness"]
        monitor = scores["monitor-everything (WfMS manager)"]
        worklist = scores["worklist-only (WfMS worker)"]
        # The paper's claims, as ordering constraints:
        assert cmi.recall == 1.0
        assert cmi.precision == 1.0
        assert monitor.deliveries_per_participant > 5 * cmi.deliveries_per_participant
        assert monitor.precision < cmi.precision
        assert worklist.recall < 1.0  # misses the violations

    def test_digested_mode_zeroes_baseline_situation_recall(self):
        result = CrisisWorkload(
            WorkloadConfig(task_forces=3, seed=11)
        ).run()
        digested = {s.mechanism: s for s in result.digested_scores}
        assert digested["CMI customized awareness"].recall == 1.0
        assert digested["content-filter pub/sub (Elvin)"].true_positives == 0

    def test_violations_recorded(self):
        workload = CrisisWorkload(
            WorkloadConfig(task_forces=3, violation_probability=1.0, seed=2)
        )
        result = workload.run()
        assert result.violations >= 3

    def test_table_renders(self):
        result = CrisisWorkload(WorkloadConfig(task_forces=2, seed=4)).run()
        assert "mechanism" in result.table("raw")
        assert "digested mode" in result.table("digested")

    def test_shape_holds_across_seeds(self):
        """The QE1 ordering claims are not a one-seed artifact."""
        for seed in (3, 17, 42):
            result = CrisisWorkload(
                WorkloadConfig(
                    task_forces=3, violation_probability=0.7, seed=seed
                )
            ).run()
            scores = {s.mechanism: s for s in result.raw_scores}
            cmi = scores["CMI customized awareness"]
            monitor = scores["monitor-everything (WfMS manager)"]
            diy = scores["worklist + log analysis (custom monitoring app)"]
            assert cmi.recall == 1.0, f"seed {seed}"
            assert cmi.precision == 1.0, f"seed {seed}"
            assert monitor.precision < cmi.precision, f"seed {seed}"
            assert (
                monitor.deliveries_per_participant
                > cmi.deliveries_per_participant
            ), f"seed {seed}"
            if result.violations:
                assert diy.mean_delay > 0.0, f"seed {seed}"


class TestDemonstration:
    def test_section7_statistics_reproduced(self):
        report = build_demonstration().run()
        assert report.process_schemas == 9
        assert report.cmm_activities > 50
        assert 200 <= report.wfms_activities <= 600  # "a few hundreds"
        assert report.awareness_specifications == 8
        assert report.context_scripts == 30
        assert report.all_functionality_provided
        assert report.cmm_limitations == ()

    def test_everything_runs_to_completion(self):
        report = build_demonstration().run()
        assert report.processes_run == report.processes_completed
        assert report.scripts_executed == 30
        assert report.notifications_delivered > 0
