"""System-level integration tests across all engines.

These tests exercise whole paper scenarios through the public federation
API — the same paths the examples and benchmarks use.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EnactmentSystem, Participant, RoleRef
from repro.workloads.epidemic import EpidemicScenario
from repro.workloads.taskforce import TaskForceApplication


class TestSection54EndToEnd:
    """The complete deadline-violation story of Section 5.4."""

    def test_full_story(self):
        system = EnactmentSystem()
        leader = system.register_participant(Participant("u-lead", "dr-lee"))
        member = system.register_participant(Participant("u-mem", "dr-kim"))
        system.core.roles.define_role("epidemiologist").add_member(leader)
        system.core.roles.role("epidemiologist").add_member(member)

        app = TaskForceApplication(system)
        app.install_awareness()

        # 1. Health crisis leader creates the task force with a deadline.
        task_force = app.create_task_force(leader, [leader, member], 200)
        # 2. A member requests external information with an earlier deadline.
        request = app.request_information(task_force, member, 150)
        # 3. External situation changes; leader moves the deadline earlier.
        app.change_task_force_deadline(task_force, 120)
        # 4. The requestor (and only the requestor) is notified.
        member_client = system.participant_client(member)
        leader_client = system.participant_client(leader)
        notifications = member_client.check_awareness()
        assert len(notifications) == 1
        assert leader_client.check_awareness() == ()
        # 5. The requestor renegotiates the request deadline below the new
        #    task force deadline; a later harmless move stays silent.
        app.change_request_deadline(request, 100)
        app.change_task_force_deadline(task_force, 110)
        assert member_client.check_awareness() == ()
        # 6. A further violating move notifies again.
        app.change_task_force_deadline(task_force, 90)
        assert len(member_client.check_awareness()) == 1

    def test_awareness_roles_differ_from_coordination_roles(self):
        """Section 5.2: delivery roles may differ from coordination roles.
        The work is offered to epidemiologists; the awareness goes to the
        Requestor scoped role only."""
        system = EnactmentSystem()
        leader = system.register_participant(Participant("u-lead", "lead"))
        member = system.register_participant(Participant("u-mem", "mem"))
        outsider = system.register_participant(Participant("u-out", "out"))
        role = system.core.roles.define_role("epidemiologist")
        for participant in (leader, member, outsider):
            role.add_member(participant)
        app = TaskForceApplication(system)
        app.install_awareness()
        task_force = app.create_task_force(leader, [leader, member], 100)
        app.request_information(task_force, member, 80)
        # Outsider sees work items (coordination role)...
        assert len(system.participant_client(outsider).work_items()) > 0
        app.change_task_force_deadline(task_force, 50)
        # ...but never the scoped awareness.
        assert system.participant_client(outsider).check_awareness() == ()
        assert len(system.participant_client(member).check_awareness()) == 1


class TestMultipleTaskForcesIsolation:
    def test_violations_do_not_cross_task_forces(self):
        system = EnactmentSystem()
        role = system.core.roles.define_role("epidemiologist")
        people = []
        for index in range(4):
            participant = system.register_participant(
                Participant(f"u{index}", f"person-{index}")
            )
            role.add_member(participant)
            people.append(participant)
        app = TaskForceApplication(system)
        app.install_awareness()

        tf_a = app.create_task_force(people[0], people[:2], 100)
        tf_b = app.create_task_force(people[2], people[2:], 100)
        app.request_information(tf_a, people[1], 80)
        app.request_information(tf_b, people[3], 80)

        # Violate only task force A's deadline.
        app.change_task_force_deadline(tf_a, 50)
        assert len(system.participant_client(people[1]).check_awareness()) == 1
        assert system.participant_client(people[3]).check_awareness() == ()

    @given(
        violate_a=st.booleans(),
        violate_b=st.booleans(),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_notification_pattern_matches_violations(
        self, violate_a, violate_b, seed
    ):
        system = EnactmentSystem()
        role = system.core.roles.define_role("epidemiologist")
        people = [
            system.register_participant(Participant(f"u{i}", f"p{i}"))
            for i in range(4)
        ]
        for participant in people:
            role.add_member(participant)
        app = TaskForceApplication(system)
        app.install_awareness()
        tf_a = app.create_task_force(people[0], people[:2], 100 + seed)
        tf_b = app.create_task_force(people[2], people[2:], 100 + seed)
        app.request_information(tf_a, people[1], 80)
        app.request_information(tf_b, people[3], 80)
        app.change_task_force_deadline(tf_a, 50 if violate_a else 150)
        app.change_task_force_deadline(tf_b, 50 if violate_b else 150)
        got_a = len(system.participant_client(people[1]).check_awareness())
        got_b = len(system.participant_client(people[3]).check_awareness())
        assert got_a == (1 if violate_a else 0)
        assert got_b == (1 if violate_b else 0)


class TestEpidemicIntegration:
    def test_scenarios_complete_across_seeds(self):
        for seed in (1, 2, 3, 4, 5):
            report = EpidemicScenario(EnactmentSystem(), seed=seed).run()
            assert report.process.current_state == "Completed"
            # The Section 2 invariant: tests stop at the first positive.
            if report.positive_test is not None:
                assert report.positive_test == report.lab_tests_run

    def test_system_stats_consistent(self):
        system = EnactmentSystem()
        EpidemicScenario(system, seed=9).run()
        stats = system.stats()
        assert stats["activity_events_gathered"] == (
            stats["bus_events_published"] - stats["context_events_gathered"]
        )
        assert stats["instances_total"] > 10


class TestSignOnLaterDelivery:
    def test_notification_waits_for_sign_on(self):
        """Section 6.5: a participant not logged on still receives the
        awareness event later — the queue is persistent."""
        system = EnactmentSystem()
        leader = system.register_participant(Participant("u1", "lead"))
        member = system.register_participant(Participant("u2", "mem"))
        system.core.roles.define_role("epidemiologist").add_member(leader)
        app = TaskForceApplication(system)
        app.install_awareness()
        task_force = app.create_task_force(leader, [leader, member], 100)
        app.request_information(task_force, member, 80)
        # member is signed off when the violation happens.
        assert not member.signed_on
        app.change_task_force_deadline(task_force, 50)
        # Much later, member signs on and finds the notification.
        client = system.participant_client(member)
        client.sign_on()
        assert len(client.check_awareness()) == 1
