"""The CI smoke expectations, as a test module.

These assertions used to live inline in ``.github/workflows/ci.yml`` as
``python -c`` one-liners with hard-coded magic numbers (16 notifications,
45 deduped operators).  Here each expectation is *derived* from the
workload parameters the command is invoked with, so changing a default
breaks a named test with a readable diff instead of a YAML step.

Every command runs in-process through ``repro.cli.main(argv)``.
"""

import json
import multiprocessing
import re

import pytest

from repro.cli import _FLEET_SPEC_TEMPLATE, main
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

#: Parameters of the `repro shards` CI smoke invocation.
SHARDS = 2
FORCES = 4
WINDOWS_PER_FORCE = 2
EVENTS_PER_FORCE = 40

#: Parameters of the `repro plans` CI smoke invocation (the CLI default).
PLAN_WINDOWS = 16


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def operators_per_window():
    """Operator definitions in the fleet template (one plan node each)."""
    return sum(
        1
        for line in _FLEET_SPEC_TEMPLATE.splitlines()
        if re.match(r"\s*\w+\s*=", line)
    )


class TestHealthSmoke:
    def test_health_reports_and_parses(self, capsys):
        # The stock demonstration never drains participant queues, so the
        # backlog rules honestly report degraded (exit 1); only 2+
        # (failing) or a crash is a smoke failure.
        code, out = run_cli(capsys, "health", "--json")
        assert code <= 1, f"health exited {code}"
        payload = json.loads(out)
        assert payload["federation"]
        assert payload["systems"] and payload["systems"][0]["rules"]


class TestPlanCacheSmoke:
    def test_fleet_deploy_shares_the_template_plan(self, capsys):
        code, out = run_cli(
            capsys, "plans", "--windows", str(PLAN_WINDOWS), "--json"
        )
        assert code == 0
        payload = json.loads(out)
        stats = payload["stats"]
        nodes = operators_per_window()
        assert stats["windows_deployed"] == PLAN_WINDOWS
        # One live node per template operator; every later window shares
        # all of them.
        assert stats["nodes_live"] == nodes
        assert stats["operators_resolved"] == nodes * PLAN_WINDOWS
        assert stats["operators_deduped"] == nodes * (PLAN_WINDOWS - 1)
        assert len(payload["nodes"]) == nodes


class TestShardingSmoke:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the process backend requires the fork start method",
    )
    def test_forked_workers_merge_the_full_stream(self, capsys):
        code, out = run_cli(
            capsys,
            "shards",
            "--shards",
            str(SHARDS),
            "--backend",
            "process",
            "--forces",
            str(FORCES),
            "--windows",
            str(WINDOWS_PER_FORCE),
            "--events",
            str(EVENTS_PER_FORCE),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        expected = ShardStreamWorkload(
            ShardStreamConfig(
                forces=FORCES,
                windows_per_force=WINDOWS_PER_FORCE,
                events_per_force=EVENTS_PER_FORCE,
            )
        ).expected_notifications()
        totals = payload["totals"]
        assert totals["shards_alive"] == SHARDS
        assert payload["notifications_merged"] == expected
        assert all(row["alive"] for row in payload["shards"])

    def test_serial_backend_agrees_with_the_workload_math(self, capsys):
        code, out = run_cli(
            capsys,
            "shards",
            "--shards",
            str(SHARDS),
            "--forces",
            str(FORCES),
            "--windows",
            str(WINDOWS_PER_FORCE),
            "--events",
            str(EVENTS_PER_FORCE),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        expected = ShardStreamWorkload(
            ShardStreamConfig(
                forces=FORCES,
                windows_per_force=WINDOWS_PER_FORCE,
                events_per_force=EVENTS_PER_FORCE,
            )
        ).expected_notifications()
        assert payload["notifications_merged"] == expected
