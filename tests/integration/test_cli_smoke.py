"""The CI smoke expectations, as a test module.

These assertions used to live inline in ``.github/workflows/ci.yml`` as
``python -c`` one-liners with hard-coded magic numbers (16 notifications,
45 deduped operators).  Here each expectation is *derived* from the
workload parameters the command is invoked with, so changing a default
breaks a named test with a readable diff instead of a YAML step.

Every command runs in-process through ``repro.cli.main(argv)``.
"""

import json
import multiprocessing
import re

import pytest

from repro.cli import _FLEET_SPEC_TEMPLATE, main
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

#: Parameters of the `repro shards` CI smoke invocation.
SHARDS = 2
FORCES = 4
WINDOWS_PER_FORCE = 2
EVENTS_PER_FORCE = 40

#: Parameters of the `repro plans` CI smoke invocation (the CLI default).
PLAN_WINDOWS = 16


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def operators_per_window():
    """Operator definitions in the fleet template (one plan node each)."""
    return sum(
        1
        for line in _FLEET_SPEC_TEMPLATE.splitlines()
        if re.match(r"\s*\w+\s*=", line)
    )


class TestHealthSmoke:
    def test_health_reports_and_parses(self, capsys):
        # The stock demonstration never drains participant queues, so the
        # backlog rules honestly report degraded (exit 1); only 2+
        # (failing) or a crash is a smoke failure.
        code, out = run_cli(capsys, "health", "--json")
        assert code <= 1, f"health exited {code}"
        payload = json.loads(out)
        assert payload["federation"]
        assert payload["systems"] and payload["systems"][0]["rules"]


class TestPlanCacheSmoke:
    def test_fleet_deploy_shares_the_template_plan(self, capsys):
        code, out = run_cli(
            capsys, "plans", "--windows", str(PLAN_WINDOWS), "--json"
        )
        assert code == 0
        payload = json.loads(out)
        stats = payload["stats"]
        nodes = operators_per_window()
        assert stats["windows_deployed"] == PLAN_WINDOWS
        # One live node per template operator; every later window shares
        # all of them.
        assert stats["nodes_live"] == nodes
        assert stats["operators_resolved"] == nodes * PLAN_WINDOWS
        assert stats["operators_deduped"] == nodes * (PLAN_WINDOWS - 1)
        assert len(payload["nodes"]) == nodes


class TestFederatedObservabilitySmoke:
    def test_export_emits_shard_labelled_prometheus_text(self, capsys):
        code, out = run_cli(capsys, "export", "--shards", str(SHARDS))
        assert code == 0
        assert "# TYPE bus_published_total counter" in out
        for shard in range(SHARDS):
            assert f'{{shard="{shard}"' in out
        # The facade's own registry rides along under its own label.
        assert 'shard="facade"' in out

    def test_export_without_shards_renders_the_demonstration(self, capsys):
        code, out = run_cli(capsys, "export")
        assert code == 0
        assert "# TYPE notifications_delivered_total counter" in out

    def test_trace_shards_assembles_cross_shard_traces(self, capsys):
        code, out = run_cli(
            capsys, "trace", "--shards", str(SHARDS), "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["traces"], "every wave is sampled in this mode"
        multi = [
            trace for trace in payload["traces"] if len(trace["shards"]) >= 2
        ]
        assert multi, "a full ingest wave must touch both shards"
        for trace in payload["traces"]:
            for entry in trace["spans"]:
                assert entry["span"]["name"] == "shard.ingest"
        assert payload["orphaned"] == 0
        assert payload["stage_p95_us"]

    def test_health_shards_exit_code_tracks_worker_breach(self, capsys):
        # Relaxed limits + drained queues: ok.
        code, out = run_cli(
            capsys, "health", "--shards", str(SHARDS), "--json"
        )
        payload = json.loads(out)
        assert code in (0, 1)
        assert payload["status"] in ("ok", "degraded")
        assert payload["federation"]["stats"]["shards_alive"] == SHARDS
        # Undrained queues + a 1-notification limit: a worker-side SLO
        # breach must surface as the documented exit code.
        code, out = run_cli(
            capsys,
            "health",
            "--shards",
            str(SHARDS),
            "--no-drain",
            "--limit",
            "queue-depth=1",
            "--json",
        )
        payload = json.loads(out)
        assert code == 1
        assert payload["status"] == "degraded"
        assert payload["rules"]["queue-depth"]["firing"]
        assert payload["federation"]["stats"]["shards_alive"] == SHARDS


class TestShardingSmoke:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the process backend requires the fork start method",
    )
    def test_forked_workers_merge_the_full_stream(self, capsys):
        code, out = run_cli(
            capsys,
            "shards",
            "--shards",
            str(SHARDS),
            "--backend",
            "process",
            "--forces",
            str(FORCES),
            "--windows",
            str(WINDOWS_PER_FORCE),
            "--events",
            str(EVENTS_PER_FORCE),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        expected = ShardStreamWorkload(
            ShardStreamConfig(
                forces=FORCES,
                windows_per_force=WINDOWS_PER_FORCE,
                events_per_force=EVENTS_PER_FORCE,
            )
        ).expected_notifications()
        totals = payload["totals"]
        assert totals["shards_alive"] == SHARDS
        assert payload["notifications_merged"] == expected
        assert all(row["alive"] for row in payload["shards"])

    def test_serial_backend_agrees_with_the_workload_math(self, capsys):
        code, out = run_cli(
            capsys,
            "shards",
            "--shards",
            str(SHARDS),
            "--forces",
            str(FORCES),
            "--windows",
            str(WINDOWS_PER_FORCE),
            "--events",
            str(EVENTS_PER_FORCE),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        expected = ShardStreamWorkload(
            ShardStreamConfig(
                forces=FORCES,
                windows_per_force=WINDOWS_PER_FORCE,
                events_per_force=EVENTS_PER_FORCE,
            )
        ).expected_notifications()
        assert payload["notifications_merged"] == expected
