"""End-to-end test of the process invocation operator (Translate).

Mirrors the telecom provisioning example: an order process invokes a
provisioning subprocess; the order-level awareness description lifts the
subprocess's context events via Translate and escalates to the order's
scoped account-manager role.
"""

import pytest

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.awareness.operators.filters import ContextFilter

ORDER = "P-Order"
PROVISIONING = "P-Prov"


@pytest.fixture
def telecom_system():
    system = EnactmentSystem()
    tech = system.register_participant(Participant("u-tech", "technician"))
    system.core.roles.define_role("field-technician").add_member(tech)

    provisioning = ProcessActivitySchema(PROVISIONING, "provisioning")
    provisioning.add_context_schema(
        ContextSchema(
            "ProvisioningContext", [ContextFieldSpec("attempts", "int")]
        )
    )
    provisioning.add_activity_variable(
        ActivityVariable(
            "configure",
            BasicActivitySchema(
                "b-conf", "configure", performer=RoleRef("field-technician")
            ),
        )
    )
    provisioning.mark_entry("configure")

    order = ProcessActivitySchema(ORDER, "service-order")
    order.add_context_schema(
        ContextSchema("OrderContext", [ContextFieldSpec("manager", "role")])
    )
    order.add_activity_variable(
        ActivityVariable(
            "intake",
            BasicActivitySchema(
                "b-intake", "intake", performer=RoleRef("field-technician")
            ),
        )
    )
    order.add_activity_variable(
        ActivityVariable("provisioning", provisioning, optional=True)
    )
    order.mark_entry("intake")
    system.core.register_schema(order)

    window = system.awareness.create_window(ORDER)
    attempts = window.place_operator(
        ContextFilter(
            PROVISIONING, "ProvisioningContext", "attempts",
            instance_name="attempts",
        )
    )
    window.connect(window.source("ContextEvent"), attempts, 0)
    lifted = window.place(
        "Translate", PROVISIONING, "provisioning", instance_name="lift"
    )
    window.connect(window.source("ActivityEvent"), lifted, 0)
    window.connect(attempts, lifted, 1)
    escalate = window.place("Compare1", lambda n: n >= 3, instance_name="esc")
    window.connect(lifted, escalate, 0)
    window.output(
        escalate,
        delivery_role=RoleRef("manager", "OrderContext"),
        user_description="escalate",
        schema_name="AS_Escalate",
    )
    system.awareness.deploy(window)
    return system, order


def start_order(system, order, manager):
    instance = system.coordination.start_process(order)
    system.core.create_scoped_role(
        instance.context("OrderContext"), "manager", (manager,)
    )
    provisioning = system.coordination.start_optional_activity(
        instance, "provisioning"
    )
    return instance, provisioning


class TestTranslateEndToEnd:
    def test_escalation_reaches_the_right_orders_manager(self, telecom_system):
        system, order = telecom_system
        mia = system.register_participant(Participant("u-mia", "mia"))
        noah = system.register_participant(Participant("u-noah", "noah"))
        __, prov_a = start_order(system, order, mia)
        __, prov_b = start_order(system, order, noah)

        context_a = prov_a.context("ProvisioningContext")
        for attempt in (1, 2, 3):
            context_a.set("attempts", attempt)
        prov_b.context("ProvisioningContext").set("attempts", 1)

        assert len(system.participant_client(mia).check_awareness()) == 1
        assert system.participant_client(noah).check_awareness() == ()

    def test_no_escalation_below_threshold(self, telecom_system):
        system, order = telecom_system
        mia = system.register_participant(Participant("u-mia", "mia"))
        __, provisioning = start_order(system, order, mia)
        provisioning.context("ProvisioningContext").set("attempts", 2)
        assert system.participant_client(mia).check_awareness() == ()

    def test_subprocess_events_before_invocation_learning_are_dropped(
        self, telecom_system
    ):
        """A provisioning process started *standalone* (not through the
        order's activity variable) never reaches order-level awareness —
        Translate only lifts events of learned invocations."""
        system, order = telecom_system
        mia = system.register_participant(Participant("u-mia", "mia"))
        # A standalone provisioning instance: the schema is registered
        # (recursively) so it can start as a top-level process.
        provisioning_schema = system.core.schema(PROVISIONING)
        standalone = system.coordination.start_process(provisioning_schema)
        for attempt in (1, 2, 3, 4):
            standalone.context("ProvisioningContext").set("attempts", attempt)
        assert system.awareness.delivery.delivered == 0
        assert system.awareness.delivery.undeliverable == []
