"""Failure-injection tests: the system degrades loudly, never silently."""

import pytest

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.errors import (
    EnactmentError,
    InvalidTransitionError,
    QueueError,
    ReproError,
    SpecificationError,
    WorklistError,
)
from repro.events.bus import EventBus
from repro.events.queues import SqliteDeliveryQueue
from repro.workloads.taskforce import TaskForceApplication


class TestBrokenDetectorIsolation:
    def test_broken_bus_subscriber_does_not_silence_healthy_ones(self):
        """With isolation on, one faulty component cannot starve the rest
        of the awareness engine of events."""
        bus = EventBus(isolate_errors=True)
        healthy = []

        def broken(event):
            raise RuntimeError("detector crashed")

        bus.subscribe("T_context", broken)
        bus.subscribe("T_context", healthy.append)

        from repro.events.event import Event
        from repro.events.producers import CONTEXT_EVENT_TYPE

        for tick in range(5):
            bus.publish(
                Event(
                    CONTEXT_EVENT_TYPE,
                    {
                        "time": tick,
                        "source": "E_context",
                        "contextId": "c",
                        "contextName": "C",
                        "processAssociations": frozenset(),
                        "fieldName": "f",
                        "oldFieldValue": None,
                        "newFieldValue": tick,
                    },
                )
            )
        assert len(healthy) == 5
        assert len(bus.handler_errors) == 5


class TestMisuseIsRejectedNotIgnored:
    def test_completing_unclaimed_activity_fails(
        self, system, alice, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        draft = instance.child("draft")
        # Ready -> Completed is not a legal transition: no silent skip.
        with pytest.raises(InvalidTransitionError):
            system.coordination.complete_activity(draft)

    def test_double_claim_races_fail_deterministically(
        self, system, alice, bob, epidemiologists, simple_process
    ):
        system.coordination.start_process(simple_process)
        item = system.participant_client(alice).work_items()[0]
        system.participant_client(alice).claim(item)
        with pytest.raises(WorklistError):
            system.participant_client(bob).claim(item)

    def test_deploying_half_authored_window_fails(self, system):
        window = system.awareness.create_window("P-X")
        window.place("Count")  # never wired, never rooted
        with pytest.raises(SpecificationError):
            system.awareness.deploy(window)

    def test_subprocess_start_on_missing_variable_fails(
        self, system, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        with pytest.raises(ReproError):
            system.coordination.start_optional_activity(instance, "ghost")


class TestQueueOutage:
    def test_closed_queue_surfaces_not_swallows(self, tmp_path):
        """If the persistent store is down, delivery raises — awareness is
        never silently dropped."""
        path = str(tmp_path / "cmi.db")
        queue = SqliteDeliveryQueue(path)
        system = EnactmentSystem(queue=queue)
        leader = system.register_participant(Participant("u1", "lead"))
        member = system.register_participant(Participant("u2", "mem"))
        system.core.roles.define_role("epidemiologist").add_member(leader)
        app = TaskForceApplication(system)
        app.install_awareness()
        task_force = app.create_task_force(leader, [leader, member], 100)
        app.request_information(task_force, member, 80)

        queue.close()  # simulated storage outage
        with pytest.raises(QueueError):
            app.change_task_force_deadline(task_force, 50)


class TestScopeViolations:
    def test_revoked_reference_cannot_leak_writes(
        self, system, alice, taskforce_app
    ):
        task_force = taskforce_app.create_task_force(alice, [alice], 100)
        ref = task_force.process.context("TaskForceContext")
        ref.revoke()
        from repro.errors import ScopeError

        with pytest.raises(ScopeError):
            ref.set("TaskForceDeadline", 1)

    def test_awareness_survives_unrelated_process_termination(
        self, system, alice, bob, taskforce_app
    ):
        """Terminating one task force does not disturb another's
        detection state (per-instance replication under failure)."""
        tf_a = taskforce_app.create_task_force(alice, [alice, bob], 100)
        tf_b = taskforce_app.create_task_force(alice, [alice, bob], 100)
        taskforce_app.request_information(tf_a, bob, 80)
        taskforce_app.request_information(tf_b, bob, 80)
        system.coordination.terminate_activity(tf_a.process, user="chief")
        # tf_b's awareness still works.
        taskforce_app.change_task_force_deadline(tf_b, 50)
        notifications = system.participant_client(bob).check_awareness()
        assert len(notifications) == 1
        assert (
            notifications[0].parameters["processInstanceId"]
            != tf_a.process.instance_id
        )
