"""Journaling and awareness coexist: recovery + re-deployment story."""

from repro import EnactmentSystem, Participant
from repro.awareness.dsl import compile_specification, window_to_dsl
from repro.coordination import CoordinationEngine
from repro.awareness.engine import AwarenessEngine
from repro.federation.journal import Journal, recover_core
from repro.workloads.taskforce import (
    AWARENESS_SCHEMA_NAME,
    TaskForceApplication,
)


class TestJournalWithAwareness:
    def test_journaled_system_delivers_awareness_normally(self):
        journal = Journal()
        system = EnactmentSystem(journal=journal)
        leader = system.register_participant(Participant("u1", "lead"))
        member = system.register_participant(Participant("u2", "mem"))
        system.core.roles.define_role("epidemiologist").add_member(leader)
        app = TaskForceApplication(system)
        app.install_awareness()
        task_force = app.create_task_force(leader, [leader, member], 100)
        app.request_information(task_force, member, 80)
        app.change_task_force_deadline(task_force, 50)
        assert len(system.participant_client(member).check_awareness()) == 1
        assert len(journal) > 0

    def test_full_restart_story_with_spec_persistence(self):
        """Server restart: CORE state recovers from the journal; the
        awareness specification recompiles from its persisted DSL text;
        post-restart situations are detected and delivered."""
        journal = Journal()
        system = EnactmentSystem(journal=journal)
        leader = system.register_participant(Participant("u1", "lead"))
        member = system.register_participant(Participant("u2", "mem"))
        system.core.roles.define_role("epidemiologist").add_member(leader)
        app = TaskForceApplication(system)
        app.install_awareness()
        # Persist the awareness specification as DSL text.
        spec_text = window_to_dsl(app.window)

        task_force = app.create_task_force(leader, [leader, member], 100)
        app.request_information(task_force, member, 80)
        # -- crash here; second server lifetime: --------------------------------
        recovered = recover_core(journal)
        coordination = CoordinationEngine(recovered)
        awareness = AwarenessEngine(recovered)
        window = awareness.create_window(app.info_request_schema.schema_id)
        compile_specification(window, spec_text)
        awareness.deploy(window)

        # The recovered task force's deadline moves; BUT the new detector
        # never saw the pre-crash RequestDeadline context event, so its
        # Compare2 slot 1 is empty: a single post-crash move cannot fire.
        twin_tf = recovered.instance(task_force.process.instance_id)
        twin_tf.context("TaskForceContext").set("TaskForceDeadline", 50)
        assert awareness.delivery.delivered == 0

        # A new request made after recovery re-populates the description
        # and the violation is detected and delivered to the requestor.
        twin_request = recovered.instance(task_force.process.instance_id)
        # File a fresh request through the recovered schemas.
        app2 = _rebind_app(recovered, coordination, app)
        request = app2.request_information_on(
            twin_tf, recovered.roles.participant("u2"), 45
        )
        twin_tf.context("TaskForceContext").set("TaskForceDeadline", 40)
        viewer = awareness.viewer_for(recovered.roles.participant("u2"))
        assert viewer.unread_count() == 1


def _rebind_app(core, coordination, app):
    """Minimal facade over recovered schemas for filing a new request."""

    class Rebound:
        def request_information_on(self, task_force_instance, requestor, deadline):
            slot = next(
                f"inforequest{i}"
                for i in range(1, app.max_requests + 1)
                if not task_force_instance.has_child(f"inforequest{i}")
            )
            process = coordination.start_process(
                core.schema(app.info_request_schema.schema_id),
                parent=task_force_instance,
                activity_variable_name=slot,
            )
            tf_ref = task_force_instance.context("TaskForceContext")
            core.share_context(tf_ref, process)
            ir_ref = process.context("InfoRequestContext")
            core.create_scoped_role(ir_ref, "Requestor", (requestor,))
            ir_ref.set("RequestDeadline", deadline)
            return process

    return Rebound()
