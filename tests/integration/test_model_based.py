"""Model-based property test of the Section 5.4 awareness path.

A random sequence of application operations (file requests, move the
task-force deadline, renegotiate, complete, cancel) is run against the
real system *and* against a small Python oracle that predicts, from the
paper's operator semantics, exactly how many notifications each
participant must receive and how many composites must be undeliverable.

The oracle encodes:

* ``Compare2`` latest-pair semantics — per information-request instance,
  slot 0 holds the latest task-force deadline *seen by that instance*
  (only deadline moves after the request was created reach it), slot 1 the
  latest request deadline; any update of either slot fires when both are
  present and ``slot0 <= slot1``;
* scoped-role lifetime — fires for completed/cancelled requests are
  undeliverable (the ``Requestor`` role expired with its context).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EnactmentSystem, Participant
from repro.workloads.taskforce import TaskForceApplication

BASE_DEADLINE = 1000
N_MEMBERS = 3
MAX_REQUESTS = 6


@dataclass
class _OracleRequest:
    requestor_index: int
    deadline: int
    live: bool = True
    slot0: Optional[int] = None  # latest TF deadline seen by this instance


class _Oracle:
    """Predicts notification/undeliverable counts from the op sequence."""

    def __init__(self) -> None:
        self.requests: List[_OracleRequest] = []
        self.expected: Dict[int, int] = {i: 0 for i in range(N_MEMBERS)}
        self.undeliverable = 0

    def file_request(self, member: int, deadline: int) -> None:
        self.requests.append(_OracleRequest(member, deadline))

    def move_deadline(self, new: int) -> None:
        for request in self.requests:
            request.slot0 = new
            if new <= request.deadline:
                self._fire(request)

    def renegotiate(self, index: int, new: int) -> None:
        request = self.requests[index]
        request.deadline = new
        if request.slot0 is not None and request.slot0 <= new:
            self._fire(request)

    def close(self, index: int) -> None:
        self.requests[index].live = False

    def _fire(self, request: _OracleRequest) -> None:
        if request.live:
            self.expected[request.requestor_index] += 1
        else:
            self.undeliverable += 1


@st.composite
def operation_sequences(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("request"),
                    st.integers(0, N_MEMBERS - 1),
                    st.integers(-200, -1),  # deadline offset below base
                ),
                st.tuples(
                    st.just("move"),
                    st.integers(-250, 100),  # offset around base
                ),
                st.tuples(
                    st.just("renegotiate"),
                    st.integers(0, MAX_REQUESTS - 1),
                    st.integers(-200, -1),
                ),
                st.tuples(st.just("complete"), st.integers(0, MAX_REQUESTS - 1)),
                st.tuples(st.just("cancel"), st.integers(0, MAX_REQUESTS - 1)),
            ),
            min_size=1,
            max_size=18,
        )
    )
    return ops


class TestModelBased:
    @given(ops=operation_sequences())
    @settings(max_examples=60, deadline=None)
    def test_system_matches_oracle(self, ops):
        system = EnactmentSystem()
        role = system.core.roles.define_role("epidemiologist")
        members = []
        for index in range(N_MEMBERS):
            participant = system.register_participant(
                Participant(f"u{index}", f"member-{index}")
            )
            role.add_member(participant)
            members.append(participant)
        app = TaskForceApplication(system, max_requests=MAX_REQUESTS)
        app.install_awareness()
        task_force = app.create_task_force(
            members[0], members, BASE_DEADLINE
        )
        # NOTE: create_task_force sets the initial deadline before any
        # request exists, so no instance sees it (matching the oracle's
        # "slot0 empty until a move happens after creation").

        oracle = _Oracle()
        live_requests: List = []  # parallel to oracle.requests

        for op in ops:
            kind = op[0]
            if kind == "request":
                __, member_index, offset = op
                if len(live_requests) >= MAX_REQUESTS:
                    continue
                request = app.request_information(
                    task_force, members[member_index], BASE_DEADLINE + offset
                )
                live_requests.append(request)
                oracle.file_request(member_index, BASE_DEADLINE + offset)
            elif kind == "move":
                __, offset = op
                system.clock.advance(1)
                app.change_task_force_deadline(task_force, BASE_DEADLINE + offset)
                oracle.move_deadline(BASE_DEADLINE + offset)
            elif kind == "renegotiate":
                __, index, offset = op
                if index >= len(live_requests):
                    continue
                if not oracle.requests[index].live:
                    continue
                system.clock.advance(1)
                app.change_request_deadline(
                    live_requests[index], BASE_DEADLINE + offset
                )
                oracle.renegotiate(index, BASE_DEADLINE + offset)
            elif kind in ("complete", "cancel"):
                __, index = op
                if index >= len(live_requests):
                    continue
                if not oracle.requests[index].live:
                    continue
                if kind == "complete":
                    app.complete_request(live_requests[index])
                else:
                    app.cancel_request(live_requests[index])
                oracle.close(index)

        for index, participant in enumerate(members):
            got = len(system.participant_client(participant).check_awareness())
            assert got == oracle.expected[index], (
                f"member {index}: system delivered {got}, oracle expected "
                f"{oracle.expected[index]} (ops: {ops})"
            )
        assert (
            len(system.awareness.delivery.undeliverable)
            == oracle.undeliverable
        ), f"undeliverable mismatch (ops: {ops})"
