"""Shared fixtures for the CMI reproduction test suite."""

from __future__ import annotations

import pytest

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    DependencyType,
    DependencyVariable,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.workloads.taskforce import TaskForceApplication


@pytest.fixture
def system():
    """A fresh enactment system (all four engines, memory queue)."""
    return EnactmentSystem()


@pytest.fixture
def alice(system):
    participant = system.register_participant(Participant("u-alice", "alice"))
    return participant


@pytest.fixture
def bob(system):
    participant = system.register_participant(Participant("u-bob", "bob"))
    return participant


@pytest.fixture
def carol(system):
    participant = system.register_participant(Participant("u-carol", "carol"))
    return participant


@pytest.fixture
def epidemiologists(system, alice, bob, carol):
    """The 'epidemiologist' organizational role with three members."""
    role = system.core.roles.define_role("epidemiologist")
    for participant in (alice, bob, carol):
        role.add_member(participant)
    return role


@pytest.fixture
def simple_process(system):
    """A two-step sequential process: draft -> review."""
    draft = BasicActivitySchema("b-draft", "draft", performer=RoleRef("epidemiologist"))
    review = BasicActivitySchema(
        "b-review", "review", performer=RoleRef("epidemiologist")
    )
    process = ProcessActivitySchema("p-simple", "simple-report")
    process.add_activity_variable(ActivityVariable("draft", draft))
    process.add_activity_variable(ActivityVariable("review", review))
    process.add_dependency(
        DependencyVariable(
            "d-seq", DependencyType.SEQUENCE, ("draft",), "review"
        )
    )
    process.mark_entry("draft")
    system.core.register_schema(process)
    return process


@pytest.fixture
def taskforce_app(system, epidemiologists):
    """The Section 5.4 application with AS_InfoRequest deployed."""
    app = TaskForceApplication(system)
    app.install_awareness()
    return app
