"""Tests for work items and worklists."""

import pytest

from repro.coordination.worklist import WorklistManager
from repro.core import BasicActivitySchema, Participant
from repro.core.instances import ActivityInstance
from repro.errors import WorklistError


def make_activity(name="work"):
    return ActivityInstance(f"act-{name}", BasicActivitySchema(f"b-{name}", name))


def people(*names):
    return tuple(Participant(f"u-{n}", n) for n in names)


class TestOffer:
    def test_offer_creates_open_item(self):
        manager = WorklistManager()
        alice, = people("alice")
        item = manager.offer(make_activity(), frozenset({alice}), time=3)
        assert item.open
        assert item.offered_at == 3
        assert manager.open_items() == (item,)

    def test_double_offer_rejected(self):
        manager = WorklistManager()
        activity = make_activity()
        alice, = people("alice")
        manager.offer(activity, frozenset({alice}), time=1)
        with pytest.raises(WorklistError):
            manager.offer(activity, frozenset({alice}), time=2)

    def test_item_for_activity(self):
        manager = WorklistManager()
        activity = make_activity()
        alice, = people("alice")
        item = manager.offer(activity, frozenset({alice}), time=1)
        assert manager.item_for_activity(activity.instance_id) is item
        assert manager.item_for_activity("ghost") is None


class TestClaim:
    def test_claim_by_candidate(self):
        manager = WorklistManager()
        alice, bob = people("alice", "bob")
        item = manager.offer(make_activity(), frozenset({alice, bob}), time=1)
        manager.claim(item, alice)
        assert item.claimed_by == alice
        assert alice.load == 1

    def test_claim_by_non_candidate_rejected(self):
        manager = WorklistManager()
        alice, bob = people("alice", "bob")
        item = manager.offer(make_activity(), frozenset({alice}), time=1)
        with pytest.raises(WorklistError):
            manager.claim(item, bob)

    def test_double_claim_rejected(self):
        manager = WorklistManager()
        alice, bob = people("alice", "bob")
        item = manager.offer(make_activity(), frozenset({alice, bob}), time=1)
        manager.claim(item, alice)
        with pytest.raises(WorklistError):
            manager.claim(item, bob)

    def test_claim_after_finish_rejected(self):
        manager = WorklistManager()
        alice, = people("alice")
        item = manager.offer(make_activity(), frozenset({alice}), time=1)
        manager.finish(item)
        with pytest.raises(WorklistError):
            manager.claim(item, alice)


class TestFinish:
    def test_finish_releases_load(self):
        manager = WorklistManager()
        alice, = people("alice")
        item = manager.offer(make_activity(), frozenset({alice}), time=1)
        manager.claim(item, alice)
        manager.finish(item)
        assert alice.load == 0
        assert not item.open

    def test_double_finish_rejected(self):
        manager = WorklistManager()
        alice, = people("alice")
        item = manager.offer(make_activity(), frozenset({alice}), time=1)
        manager.finish(item)
        with pytest.raises(WorklistError):
            manager.finish(item)


class TestWorklistView:
    def test_worklist_shows_offers_and_claims(self):
        manager = WorklistManager()
        alice, bob = people("alice", "bob")
        item_shared = manager.offer(
            make_activity("shared"), frozenset({alice, bob}), time=1
        )
        item_bob = manager.offer(make_activity("solo"), frozenset({bob}), time=2)
        assert [i.item_id for i in manager.worklist_for(alice).items()] == [
            item_shared.item_id
        ]
        assert len(manager.worklist_for(bob)) == 2
        manager.claim(item_shared, bob)
        # Once bob claims, the item leaves alice's list but stays on bob's.
        assert manager.worklist_for(alice).items() == ()
        assert item_shared in manager.worklist_for(bob).items()

    def test_completed_items_disappear(self):
        manager = WorklistManager()
        alice, = people("alice")
        item = manager.offer(make_activity(), frozenset({alice}), time=1)
        manager.finish(item)
        assert manager.worklist_for(alice).items() == ()
        assert manager.all_items() == (item,)
