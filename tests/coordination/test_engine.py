"""Tests for the coordination engine: enactment operations and routing."""

import pytest

from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    DependencyType,
    DependencyVariable,
    ProcessActivitySchema,
)
from repro.core.roles import RoleRef
from repro.errors import EnactmentError


class TestStartProcess:
    def test_process_starts_running_with_entry_activity_ready(
        self, system, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        assert instance.current_state == "Running"
        draft = instance.child("draft")
        assert draft.current_state == "Ready"
        assert not instance.has_child("review")

    def test_subprocess_start_requires_variable_name(
        self, system, epidemiologists, simple_process
    ):
        parent = system.coordination.start_process(simple_process)
        with pytest.raises(EnactmentError):
            system.coordination.start_process(simple_process, parent=parent)


class TestClaimCompleteRoute(object):
    def test_completing_draft_readies_review(
        self, system, alice, epidemiologists, simple_process
    ):
        coordination = system.coordination
        instance = coordination.start_process(simple_process)
        item = coordination.worklist_for(alice).items()[0]
        coordination.claim(item, alice)
        draft = instance.child("draft")
        assert draft.current_state == "Running"
        assert draft.performer == alice
        coordination.complete_activity(draft, user=alice.name)
        assert draft.current_state == "Completed"
        assert instance.child("review").current_state == "Ready"

    def test_process_autocompletes_after_last_activity(
        self, system, alice, epidemiologists, simple_process
    ):
        coordination = system.coordination
        instance = coordination.start_process(simple_process)
        for __ in range(2):
            item = [
                i
                for i in coordination.worklist_for(alice).items()
                if i.claimed_by is None
            ][0]
            coordination.claim(item, alice)
            coordination.complete_activity(item.activity, user=alice.name)
        assert instance.current_state == "Completed"

    def test_cannot_complete_process_directly(
        self, system, epidemiologists, simple_process
    ):
        instance = system.coordination.start_process(simple_process)
        with pytest.raises(EnactmentError):
            system.coordination.complete_activity(instance)


class TestSuspendResume:
    def test_suspend_and_resume(self, system, alice, epidemiologists, simple_process):
        coordination = system.coordination
        instance = coordination.start_process(simple_process)
        item = coordination.worklist_for(alice).items()[0]
        coordination.claim(item, alice)
        draft = instance.child("draft")
        coordination.suspend_activity(draft, user=alice.name)
        assert draft.current_state == "Suspended"
        coordination.resume_activity(draft, user=alice.name)
        assert draft.current_state == "Running"


class TestTerminate:
    def test_terminate_process_terminates_open_children(
        self, system, epidemiologists, simple_process
    ):
        coordination = system.coordination
        instance = coordination.start_process(simple_process)
        coordination.terminate_activity(instance, user="chief")
        assert instance.current_state == "Terminated"
        assert instance.child("draft").current_state == "Terminated"

    def test_terminated_activity_finishes_its_work_item(
        self, system, alice, epidemiologists, simple_process
    ):
        coordination = system.coordination
        instance = coordination.start_process(simple_process)
        coordination.terminate_activity(instance)
        assert coordination.worklists.open_items() == ()

    def test_terminating_source_kills_downstream_and_completes_process(
        self, system, epidemiologists, simple_process
    ):
        coordination = system.coordination
        instance = coordination.start_process(simple_process)
        draft = instance.child("draft")
        coordination.terminate_activity(draft)
        # review can never start; process completes via dead-path logic.
        assert not instance.has_child("review")
        assert instance.current_state == "Completed"


class TestOptionalActivities:
    def _process_with_optional(self, system):
        basic = BasicActivitySchema(
            "b-main", "main-work", performer=RoleRef("epidemiologist")
        )
        extra = BasicActivitySchema(
            "b-extra", "extra-analysis", performer=RoleRef("epidemiologist")
        )
        process = ProcessActivitySchema("p-opt", "optional-demo")
        process.add_activity_variable(ActivityVariable("main", basic))
        process.add_activity_variable(
            ActivityVariable("extra", extra, optional=True)
        )
        process.mark_entry("main")
        system.core.register_schema(process)
        return process

    def test_optional_started_by_decision(self, system, alice, epidemiologists):
        process = self._process_with_optional(system)
        instance = system.coordination.start_process(process)
        started = system.coordination.start_optional_activity(
            instance, "extra", user=alice.name
        )
        assert started.current_state == "Ready"

    def test_optional_cannot_start_twice(self, system, alice, epidemiologists):
        process = self._process_with_optional(system)
        instance = system.coordination.start_process(process)
        system.coordination.start_optional_activity(instance, "extra")
        with pytest.raises(EnactmentError):
            system.coordination.start_optional_activity(instance, "extra")

    def test_non_optional_rejected(self, system, epidemiologists, simple_process):
        instance = system.coordination.start_process(simple_process)
        with pytest.raises(EnactmentError):
            system.coordination.start_optional_activity(instance, "review")


class TestJoins:
    def test_and_join_routing(self, system, alice, epidemiologists):
        a = BasicActivitySchema("b-a", "a", performer=RoleRef("epidemiologist"))
        b = BasicActivitySchema("b-b", "b", performer=RoleRef("epidemiologist"))
        c = BasicActivitySchema("b-c", "c", performer=RoleRef("epidemiologist"))
        process = ProcessActivitySchema("p-and", "and-join")
        for name, schema in (("a", a), ("b", b), ("c", c)):
            process.add_activity_variable(ActivityVariable(name, schema))
        process.mark_entry("a")
        process.mark_entry("b")
        process.add_dependency(
            DependencyVariable(
                "join", DependencyType.SYNC_AND, ("a", "b"), "c"
            )
        )
        system.core.register_schema(process)
        coordination = system.coordination
        instance = coordination.start_process(process)
        for name in ("a", "b"):
            child = instance.child(name)
            item = coordination.worklists.item_for_activity(child.instance_id)
            coordination.claim(item, alice)
            coordination.complete_activity(child)
            if name == "a":
                assert not instance.has_child("c")
        assert instance.child("c").current_state == "Ready"


class TestNestedProcesses:
    def test_subprocess_completion_bubbles_up(
        self, system, alice, epidemiologists
    ):
        leaf = BasicActivitySchema(
            "b-leaf", "leaf", performer=RoleRef("epidemiologist")
        )
        inner = ProcessActivitySchema("p-inner", "inner")
        inner.add_activity_variable(ActivityVariable("leaf", leaf))
        inner.mark_entry("leaf")
        outer = ProcessActivitySchema("p-outer", "outer")
        outer.add_activity_variable(ActivityVariable("inner", inner))
        outer.mark_entry("inner")
        system.core.register_schema(outer)
        coordination = system.coordination
        instance = coordination.start_process(outer)
        inner_instance = instance.child("inner")
        assert inner_instance.current_state == "Running"
        leaf_instance = inner_instance.child("leaf")
        item = coordination.worklists.item_for_activity(leaf_instance.instance_id)
        coordination.claim(item, alice)
        coordination.complete_activity(leaf_instance)
        assert inner_instance.current_state == "Completed"
        assert instance.current_state == "Completed"
