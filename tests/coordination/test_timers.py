"""Tests for the timer service and deadline monitors."""

import pytest

from repro.clock import LogicalClock
from repro.coordination.timers import (
    DeadlineMonitor,
    TimerService,
    attach_deadline_monitors,
)
from repro.errors import EnactmentError


class TestTimerService:
    def test_fires_when_clock_reaches_due(self):
        clock = LogicalClock()
        timers = TimerService(clock)
        fired = []
        timers.schedule(5, fired.append)
        clock.advance(4)
        assert fired == []
        clock.advance(1)
        assert fired == [5]

    def test_fires_on_jump_past_due(self):
        clock = LogicalClock()
        timers = TimerService(clock)
        fired = []
        timers.schedule(5, fired.append)
        clock.advance(100)
        assert fired == [100]  # callback gets the actual now

    def test_past_due_fires_immediately(self):
        clock = LogicalClock(start=50)
        timers = TimerService(clock)
        fired = []
        timer = timers.schedule(10, fired.append)
        assert timer.fired
        assert fired == [50]

    def test_multiple_timers_fire_in_due_order(self):
        clock = LogicalClock()
        timers = TimerService(clock)
        order = []
        timers.schedule(7, lambda now: order.append("b"))
        timers.schedule(3, lambda now: order.append("a"))
        timers.schedule(7, lambda now: order.append("c"))
        clock.advance(10)
        assert order == ["a", "b", "c"]  # due order, ties by scheduling

    def test_cancel(self):
        clock = LogicalClock()
        timers = TimerService(clock)
        fired = []
        timer = timers.schedule(5, fired.append)
        timers.cancel(timer)
        clock.advance(10)
        assert fired == []
        assert timers.pending_count() == 0

    def test_cannot_cancel_fired_timer(self):
        clock = LogicalClock(start=9)
        timers = TimerService(clock)
        timer = timers.schedule(5, lambda now: None)
        with pytest.raises(EnactmentError):
            timers.cancel(timer)

    def test_fired_counter(self):
        clock = LogicalClock()
        timers = TimerService(clock)
        for due in (1, 2, 3):
            timers.schedule(due, lambda now: None)
        clock.advance(2)
        assert timers.fired == 2


class TestDeadlineMonitor:
    def _system_with_deadline_context(self):
        from repro import (
            ActivityVariable,
            BasicActivitySchema,
            ContextFieldSpec,
            ContextSchema,
            EnactmentSystem,
            ProcessActivitySchema,
        )

        system = EnactmentSystem()
        process = ProcessActivitySchema("P-D", "deadlined")
        process.add_context_schema(
            ContextSchema(
                "DeadlineCtx",
                [
                    ContextFieldSpec("deadline", "int"),
                    ContextFieldSpec("expired-at", "int"),
                ],
            )
        )
        process.add_activity_variable(
            ActivityVariable("w", BasicActivitySchema("b-w", "w"))
        )
        process.mark_entry("w")
        system.core.register_schema(process)
        instance = system.coordination.start_process(process)
        return system, instance.context("DeadlineCtx")

    def test_expiry_marks_context(self):
        system, ref = self._system_with_deadline_context()
        timers = TimerService(system.clock)
        ref.set("deadline", system.clock.now() + 10)
        DeadlineMonitor(timers, ref, "deadline", "expired-at")
        system.clock.advance(20)
        assert ref.is_set("expired-at")
        assert ref.get("expired-at") >= 10

    def test_deadline_move_reschedules(self):
        system, ref = self._system_with_deadline_context()
        timers = TimerService(system.clock)
        start = system.clock.now()
        ref.set("deadline", start + 10)
        monitor = DeadlineMonitor(timers, ref, "deadline", "expired-at")
        monitor.deadline_changed(start + 50)  # pushed out
        system.clock.advance(20)
        assert not ref.is_set("expired-at")  # old timer was cancelled
        system.clock.advance(40)
        assert ref.is_set("expired-at")

    def test_destroyed_context_does_not_crash_expiry(self):
        system, ref = self._system_with_deadline_context()
        timers = TimerService(system.clock)
        ref.set("deadline", system.clock.now() + 5)
        monitor = DeadlineMonitor(timers, ref, "deadline", "expired-at")
        system.core.destroy_context(ref)
        system.clock.advance(10)  # expiry fires, write fails silently
        assert monitor.expired

    def test_expiry_event_drives_awareness(self):
        """The headline use: 'deadline passed' awareness authored as a
        plain Filter_context over the marker field."""
        from repro import Participant, RoleRef

        system, ref = self._system_with_deadline_context()
        watcher = system.register_participant(Participant("u-w", "watcher"))
        system.core.roles.define_role("watchers").add_member(watcher)
        window = system.awareness.create_window("P-D")
        expired = window.place("Filter_context", "DeadlineCtx", "expired-at")
        window.connect(window.source("ContextEvent"), expired, 0)
        window.output(
            expired,
            RoleRef("watchers"),
            user_description="Deadline passed without completion",
            schema_name="AS_Expired",
        )
        system.awareness.deploy(window)

        timers = TimerService(system.clock)
        ref.set("deadline", system.clock.now() + 10)
        DeadlineMonitor(timers, ref, "deadline", "expired-at")
        system.clock.advance(30)
        notifications = system.participant_client(watcher).check_awareness()
        assert len(notifications) == 1
        assert "Deadline passed" in notifications[0].description


class TestAttachDeadlineMonitors:
    def test_monitors_auto_created_per_context(self):
        from repro import (
            ActivityVariable,
            BasicActivitySchema,
            ContextFieldSpec,
            ContextSchema,
            EnactmentSystem,
            ProcessActivitySchema,
        )

        system = EnactmentSystem()
        process = ProcessActivitySchema("P-D", "deadlined")
        process.add_context_schema(
            ContextSchema(
                "DeadlineCtx",
                [
                    ContextFieldSpec("deadline", "int"),
                    ContextFieldSpec("expired-at", "int"),
                ],
            )
        )
        process.add_activity_variable(
            ActivityVariable("w", BasicActivitySchema("b-w", "w"))
        )
        process.mark_entry("w")
        system.core.register_schema(process)

        timers = TimerService(system.clock)
        monitor_count = attach_deadline_monitors(
            system.core, timers, "DeadlineCtx", "deadline", "expired-at"
        )

        refs = []
        for __ in range(3):
            instance = system.coordination.start_process(process)
            ref = instance.context("DeadlineCtx")
            ref.set("deadline", system.clock.now() + 10)
            refs.append(ref)
        assert monitor_count() == 3

        # Push one context's deadline out; expire the other two.
        refs[0].set("deadline", system.clock.now() + 100)
        system.clock.advance(30)
        assert not refs[0].is_set("expired-at")
        assert refs[1].is_set("expired-at")
        assert refs[2].is_set("expired-at")
