"""Tests for dependency evaluation (SEQUENCE/CONDITION/AND/OR joins)."""

from repro.coordination.dependencies import DependencyEvaluator
from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    CoreEngine,
    DependencyType,
    DependencyVariable,
    ProcessActivitySchema,
)


def build(dependency_type, n_sources=1, condition=None, optional_target=False):
    """A process with *n_sources* entry activities joined into 'target'."""
    engine = CoreEngine()
    process = ProcessActivitySchema("p", "joiner")
    sources = []
    for index in range(n_sources):
        name = f"src{index}"
        process.add_activity_variable(
            ActivityVariable(name, BasicActivitySchema(f"b-{name}", name))
        )
        process.mark_entry(name)
        sources.append(name)
    process.add_activity_variable(
        ActivityVariable(
            "target",
            BasicActivitySchema("b-target", "target"),
            optional=optional_target,
        )
    )
    process.add_dependency(
        DependencyVariable(
            "join", dependency_type, tuple(sources), "target", condition
        )
    )
    engine.register_schema(process)
    instance = engine.create_process_instance(process)
    for name in sources:
        child = engine.create_activity_instance(instance, name)
        engine.change_state(child, "Ready")
    return engine, process, instance


def close(engine, instance, name, state="Completed"):
    child = instance.child(name)
    engine.change_state(child, "Running")
    engine.change_state(child, state)


class TestSequence:
    def test_enabled_after_source_completes(self):
        engine, process, instance = build(DependencyType.SEQUENCE)
        evaluator = DependencyEvaluator(process)
        assert evaluator.enabled_activities(instance) == ()
        close(engine, instance, "src0")
        assert evaluator.enabled_activities(instance) == ("target",)

    def test_dead_after_source_terminates(self):
        engine, process, instance = build(DependencyType.SEQUENCE)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0", "Terminated")
        assert evaluator.enabled_activities(instance) == ()
        assert evaluator.dead_activities(instance) == ("target",)


class TestCondition:
    def test_condition_guards_enablement(self):
        flag = {"go": False}
        engine, process, instance = build(
            DependencyType.CONDITION, condition=lambda proc: flag["go"]
        )
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0")
        assert evaluator.enabled_activities(instance) == ()
        flag["go"] = True
        assert evaluator.enabled_activities(instance) == ("target",)

    def test_condition_receives_process_instance(self):
        seen = []
        engine, process, instance = build(
            DependencyType.CONDITION,
            condition=lambda proc: seen.append(proc) or True,
        )
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0")
        evaluator.enabled_activities(instance)
        assert seen[0] is instance


class TestAndJoin:
    def test_requires_all_sources(self):
        engine, process, instance = build(DependencyType.SYNC_AND, n_sources=3)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0")
        close(engine, instance, "src1")
        assert evaluator.enabled_activities(instance) == ()
        close(engine, instance, "src2")
        assert evaluator.enabled_activities(instance) == ("target",)

    def test_dies_if_any_source_terminates(self):
        engine, process, instance = build(DependencyType.SYNC_AND, n_sources=2)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0")
        close(engine, instance, "src1", "Terminated")
        assert evaluator.dead_activities(instance) == ("target",)


class TestOrJoin:
    def test_any_source_enables(self):
        engine, process, instance = build(DependencyType.SYNC_OR, n_sources=3)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src1")
        assert evaluator.enabled_activities(instance) == ("target",)

    def test_dies_only_when_all_terminate(self):
        engine, process, instance = build(DependencyType.SYNC_OR, n_sources=2)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0", "Terminated")
        assert evaluator.dead_activities(instance) == ()
        close(engine, instance, "src1", "Terminated")
        assert evaluator.dead_activities(instance) == ("target",)


class TestCompletion:
    def test_cannot_complete_with_open_children(self):
        engine, process, instance = build(DependencyType.SEQUENCE)
        evaluator = DependencyEvaluator(process)
        assert not evaluator.process_can_complete(instance)

    def test_cannot_complete_with_pending_mandatory_target(self):
        engine, process, instance = build(DependencyType.SEQUENCE)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0")
        # target enabled but not yet instantiated -> not complete
        assert not evaluator.process_can_complete(instance)

    def test_completes_after_all_children_close(self):
        engine, process, instance = build(DependencyType.SEQUENCE)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0")
        child = engine.create_activity_instance(instance, "target")
        engine.change_state(child, "Ready")
        close(engine, instance, "target")
        assert evaluator.process_can_complete(instance)

    def test_dead_mandatory_target_does_not_block(self):
        engine, process, instance = build(DependencyType.SEQUENCE)
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0", "Terminated")
        assert evaluator.process_can_complete(instance)

    def test_unstarted_optional_does_not_block(self):
        engine, process, instance = build(
            DependencyType.SEQUENCE, optional_target=True
        )
        evaluator = DependencyEvaluator(process)
        close(engine, instance, "src0", "Terminated")
        assert evaluator.process_can_complete(instance)
