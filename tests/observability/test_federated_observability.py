"""The federation observability plane, unit level.

Covers the facade-side pieces in isolation: registry snapshot/merge
round trips (property-tested — the codec must be lossless for the
metrics plane to aggregate honestly), the trace assembler's stitching
and accounting, the structured-log drain cursor and the merged log
view's ordering, and SLO evaluation straight against a merged registry.
The end-to-end paths (real shards shipping over the wire) live in
``tests/parallel/test_federated_observability.py``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import (
    DEFAULT_SAMPLE_EVERY,
    FederationLogView,
    MetricsError,
    MetricsRegistry,
    StructuredLog,
    TraceAssembler,
    TraceContext,
)
from repro.observability.health import (
    evaluate_registry,
    threshold_rule,
)
from repro.observability.registry import Gauge, Histogram
from repro.observability.selfawareness import FederationMetricsView


# -- snapshot / merge round trips (property-tested) ------------------------

label_values = st.text(
    alphabet="abcdefXYZ-_.0123456789", min_size=0, max_size=8
)


def label_tuples(arity):
    return st.lists(
        st.tuples(*[label_values] * arity), min_size=1, max_size=4, unique=True
    )


@st.composite
def registries(draw):
    """A registry with a few counters, gauges, and histograms, each
    carrying randomly labelled series."""
    registry = MetricsRegistry()
    for index in range(draw(st.integers(0, 3))):
        arity = draw(st.integers(0, 2))
        counter = registry.counter(
            f"counter_{index}", f"c{index}", tuple(f"l{i}" for i in range(arity))
        )
        for labels in draw(label_tuples(arity)):
            counter.inc(draw(st.integers(0, 1000)), labels)
    for index in range(draw(st.integers(0, 3))):
        arity = draw(st.integers(0, 2))
        gauge = registry.gauge(
            f"gauge_{index}", f"g{index}", tuple(f"l{i}" for i in range(arity))
        )
        for labels in draw(label_tuples(arity)):
            gauge.set(draw(st.integers(-500, 500)), labels)
    for index in range(draw(st.integers(0, 2))):
        arity = draw(st.integers(0, 1))
        edges = sorted(
            draw(
                st.lists(
                    st.integers(1, 10_000), min_size=1, max_size=5, unique=True
                )
            )
        )
        histogram = registry.histogram(
            f"hist_{index}",
            edges,
            f"h{index}",
            tuple(f"l{i}" for i in range(arity)),
        )
        for labels in draw(label_tuples(arity)):
            for value in draw(
                st.lists(st.integers(0, 20_000), min_size=0, max_size=10)
            ):
                histogram.observe(value, labels)
    return registry


def series_of(registry):
    """Every series of every instrument, in comparable form."""
    out = {}
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Histogram):
            out[name] = {
                labels: instrument.snapshot(labels)
                for labels in instrument.series_labels()
            }
        else:
            out[name] = dict(instrument.series())
    return out


class TestSnapshotMergeRoundTrip:
    @given(registry=registries())
    @settings(max_examples=60, deadline=None)
    def test_snapshot_json_merge_reproduces_every_series(self, registry):
        # The wire trip every worker snapshot takes: snapshot -> JSON ->
        # decode -> merge into an empty facade registry.
        decoded = json.loads(json.dumps(registry.snapshot()))
        rebuilt = MetricsRegistry()
        rebuilt.merge(decoded)
        assert series_of(rebuilt) == series_of(registry)
        for name in registry.names():
            original = registry.get(name)
            copy = rebuilt.get(name)
            assert copy.label_names == original.label_names
            if isinstance(original, Histogram):
                assert copy.buckets == original.buckets

    @given(registry=registries())
    @settings(max_examples=40, deadline=None)
    def test_shard_label_prefixes_every_series(self, registry):
        rebuilt = MetricsRegistry()
        rebuilt.merge(registry.snapshot(), shard="7")
        for name in registry.names():
            original = registry.get(name)
            copy = rebuilt.get(name)
            assert copy.label_names == ("shard",) + original.label_names
            if isinstance(original, Histogram):
                expected = {
                    ("7",) + labels: original.snapshot(labels)
                    for labels in original.series_labels()
                }
                actual = {
                    labels: copy.snapshot(labels)
                    for labels in copy.series_labels()
                }
            else:
                expected = {
                    ("7",) + labels: value
                    for labels, value in original.series().items()
                }
                actual = dict(copy.series())
            assert actual == expected

    @given(registry=registries())
    @settings(max_examples=30, deadline=None)
    def test_merging_the_same_shard_twice_doubles_counters_only(
        self, registry
    ):
        snapshot = registry.snapshot()
        rebuilt = MetricsRegistry()
        rebuilt.merge(snapshot, shard="0")
        rebuilt.merge(snapshot, shard="0")
        for name in registry.names():
            original = registry.get(name)
            copy = rebuilt.get(name)
            if isinstance(original, Histogram):
                for labels in original.series_labels():
                    __, total, count = original.snapshot(labels)
                    __, merged_total, merged_count = copy.snapshot(
                        ("0",) + labels
                    )
                    assert merged_total == 2 * total
                    assert merged_count == 2 * count
                continue
            for labels, value in original.series().items():
                if original.kind == "counter":
                    assert copy.value(("0",) + labels) == 2 * value
                elif isinstance(copy, Gauge):
                    # Gauges overwrite: merging twice is idempotent.
                    assert copy.value(("0",) + labels) == value

    def test_callback_gauges_decode_as_plain_gauges(self):
        registry = MetricsRegistry()
        registry.callback_gauge("depth", lambda: 17.0, "live depth")
        registry.multi_callback_gauge(
            "queue_depth",
            lambda: {("lee",): 3.0, ("kim",): 9.0},
            "per participant",
            ("participant",),
        )
        rebuilt = MetricsRegistry()
        rebuilt.merge(json.loads(json.dumps(registry.snapshot())), shard="2")
        depth = rebuilt.get("depth")
        assert isinstance(depth, Gauge)
        assert depth.value(("2",)) == 17.0
        queue = rebuilt.get("queue_depth")
        assert isinstance(queue, Gauge)
        assert queue.series() == {("2", "lee"): 3.0, ("2", "kim"): 9.0}

    def test_bucket_layout_mismatch_refuses_to_merge(self):
        ours = MetricsRegistry()
        ours.histogram("lat", (1, 10), "latency").observe(5)
        theirs = MetricsRegistry()
        theirs.histogram("lat", (1, 100), "latency").observe(5)
        with pytest.raises(MetricsError, match="bucket layout"):
            ours.merge(theirs.snapshot())

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(MetricsError, match="unknown kind"):
            MetricsRegistry().merge(
                {"x": {"kind": "summary", "series": []}}
            )


class TestHistogramQuantile:
    def test_p95_interpolates_within_the_bucket(self):
        histogram = MetricsRegistry().histogram("h", (10, 100, 1000))
        for value in (5, 5, 50, 50, 50, 50, 500, 500, 500, 500):
            histogram.observe(value)
        # p50 falls in the (10, 100] bucket, p95 in the (100, 1000] one.
        assert 10 < histogram.quantile(0.5) <= 100
        assert 100 < histogram.quantile(0.95) <= 1000

    def test_empty_series_is_zero(self):
        assert MetricsRegistry().histogram("h", (1,)).quantile(0.95) == 0.0

    def test_overflow_clamps_to_the_last_finite_edge(self):
        histogram = MetricsRegistry().histogram("h", (1, 10))
        histogram.observe(50_000)
        assert histogram.quantile(0.95) == 10.0


# -- trace context + assembler ---------------------------------------------


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext("t000007", "t000007.root", True)
        assert TraceContext.from_wire(context.to_wire()) == context
        assert TraceContext.from_wire(None) is None

    def test_unsampled_flag_survives(self):
        context = TraceContext("t1", "t1.root", False)
        assert TraceContext.from_wire(context.to_wire()).sampled is False


class TestTraceAssembler:
    def batch(self, context, shard=0, name="shard.ingest"):
        return {
            "trace": context.trace_id,
            "parent": context.parent_span_id,
            "shard": shard,
            "span": {"name": name, "duration_us": 1.0, "children": []},
        }

    def test_head_sampling_matches_the_tracer_cadence(self):
        assembler = TraceAssembler(sample_every=4)
        decisions = [
            assembler.begin("op").sampled for __ in range(12)
        ]
        assert decisions == [False, False, False, True] * 3
        assert len(assembler.traces()) == 3

    def test_default_cadence_is_the_tracers(self):
        assert TraceAssembler().sample_every == DEFAULT_SAMPLE_EVERY

    def test_batches_from_many_shards_stitch_into_one_trace(self):
        assembler = TraceAssembler(sample_every=1)
        context = assembler.begin("federation.ingest")
        assert assembler.add_batch(self.batch(context, shard=0))
        assert assembler.add_batch(self.batch(context, shard=2))
        (trace,) = assembler.traces()
        assert assembler.shards_of(trace) == (0, 2)
        assert trace["root_span_id"] == context.parent_span_id
        rendered = assembler.render(trace)
        assert "shards=[0, 2]" in rendered
        assert "shard.ingest" in rendered

    def test_wrong_parent_is_orphaned_not_misattached(self):
        assembler = TraceAssembler(sample_every=1)
        context = assembler.begin("op")
        bad = self.batch(context)
        bad["parent"] = "someone.else"
        assert not assembler.add_batch(bad)
        assert assembler.orphaned == 1
        (trace,) = assembler.traces()
        assert trace["spans"] == []

    def test_unknown_trace_is_orphaned(self):
        assembler = TraceAssembler(sample_every=1)
        assembler.begin("op")
        stray = self.batch(TraceContext("t999999", "t999999.root", True))
        assert not assembler.add_batch(stray)
        assert assembler.orphaned == 1

    def test_window_evicts_oldest_and_counts_it(self):
        assembler = TraceAssembler(max_traces=2, sample_every=1)
        contexts = [assembler.begin("op") for __ in range(5)]
        assert assembler.evicted == 3
        assert [trace["trace_id"] for trace in assembler.traces()] == [
            contexts[3].trace_id,
            contexts[4].trace_id,
        ]
        # A batch for an evicted trace has no home left.
        assert not assembler.add_batch(self.batch(contexts[0]))
        assert assembler.orphaned == 1


# -- structured-log drain + merged view ------------------------------------


class TestStructuredLogDrain:
    def test_cursor_walks_the_stream_without_duplicates(self):
        log = StructuredLog()
        log.enabled = True
        for index in range(5):
            log.emit("bus", "published", n=index)
        records, dropped, cursor = log.drain(0)
        assert [record["n"] for record in records] == [0, 1, 2, 3, 4]
        assert dropped == 0 and cursor == 5
        log.emit("bus", "published", n=5)
        records, dropped, cursor = log.drain(cursor)
        assert [record["n"] for record in records] == [5]
        assert dropped == 0 and cursor == 6

    def test_ring_overflow_is_counted_as_dropped(self):
        log = StructuredLog(max_records=3)
        log.enabled = True
        for index in range(10):
            log.emit("bus", "published", n=index)
        records, dropped, cursor = log.drain(0)
        assert [record["n"] for record in records] == [7, 8, 9]
        assert dropped == 7
        assert cursor == 10

    def test_clear_preserves_the_cursor_space(self):
        log = StructuredLog()
        log.enabled = True
        log.emit("bus", "published")
        log.clear()
        log.emit("bus", "published")
        records, dropped, __ = log.drain(1)
        assert len(records) == 1
        assert dropped == 0

    def test_set_seq_renumbers_for_replay(self):
        log = StructuredLog()
        log.enabled = True
        log.emit("bus", "published")
        log.emit("bus", "published")
        log.set_seq(0)
        replayed = log.emit("bus", "published")
        assert replayed["_seq"] == 1  # collides with the shipped stream


class TestFederationLogView:
    def record(self, seq, tick, **fields):
        return {"_seq": seq, "tick": tick, "component": "bus",
                "event": "published", **fields}

    def test_merged_order_is_tick_shard_seq(self):
        view = FederationLogView()
        view.extend(1, [self.record(1, 5), self.record(2, 2)])
        view.extend(0, [self.record(1, 2), self.record(2, 9)])
        keys = [
            (record["tick"], record["shard"], record["_seq"])
            for record in view.records()
        ]
        assert keys == [(2, 0, 1), (2, 1, 2), (5, 1, 1), (9, 0, 2)]

    def test_filters_by_component_and_shard(self):
        view = FederationLogView()
        view.extend(0, [self.record(1, 1)])
        view.extend(1, [dict(self.record(1, 1), component="delivery")])
        assert len(view.records(component="bus")) == 1
        assert len(view.records(shard=1)) == 1
        assert view.records(shard=1)[0]["component"] == "delivery"

    def test_worker_drops_accumulate_per_shard(self):
        view = FederationLogView()
        view.extend(0, [], dropped=3)
        view.extend(0, [], dropped=2)
        view.extend(1, [], dropped=1)
        assert view.dropped() == {0: 5, 1: 1}

    def test_bounded_ring_counts_evictions(self):
        view = FederationLogView(max_records=2)
        view.extend(0, [self.record(seq, 1) for seq in range(1, 5)])
        assert view.evicted == 2
        assert len(view.records()) == 2
        assert "published" in view.render_lines()


# -- SLO evaluation over a merged registry ---------------------------------


class TestEvaluateRegistry:
    def rules(self):
        return (
            threshold_rule("queue-depth", "queue_depth", ">", 50),
            threshold_rule(
                "dead-shards", "dead_shards", ">", 0, severity="failing"
            ),
        )

    def merged(self, depths):
        merged = MetricsRegistry()
        for shard, depth in depths.items():
            worker = MetricsRegistry()
            worker.gauge("queue_depth").set(depth)
            merged.merge(worker.snapshot(), shard=str(shard))
        return merged

    def test_all_quiet_is_ok(self):
        health = evaluate_registry(
            self.merged({0: 3, 1: 7}), rules=self.rules()
        )
        assert health.status == "ok"
        assert health.exit_code == 0
        assert not health.firing()

    def test_one_breaching_shard_degrades_the_federation(self):
        health = evaluate_registry(
            self.merged({0: 3, 1: 99}), rules=self.rules(), tick=12
        )
        assert health.status == "degraded"
        assert health.exit_code == 1
        (firing,) = health.firing()
        assert firing.rule.name == "queue-depth"
        assert firing.last_value == 99
        assert firing.last_breach_tick == 12

    def test_failing_severity_dominates(self):
        merged = self.merged({0: 99})
        merged.gauge("dead_shards", label_names=("shard",)).set(1, ("0",))
        health = evaluate_registry(merged, rules=self.rules())
        assert health.status == "failing"
        assert health.exit_code == 2

    def test_non_threshold_rules_are_skipped(self):
        from repro.observability.health import rate_rule

        health = evaluate_registry(
            self.merged({0: 99}),
            rules=(rate_rule("failures", "bus_failed_total", 5, ">", 0),),
        )
        assert health.rules == ()
        assert health.status == "ok"


class TestFederationMetricsView:
    def worker_snapshot(self, events, stage_us):
        registry = MetricsRegistry()
        registry.counter("events_total").inc(events)
        histogram = registry.histogram(
            "pipeline_stage_us", (10, 100, 1000), "stage", ("stage",)
        )
        for value in stage_us:
            histogram.observe(value, ("bus.dispatch",))
        return registry.snapshot()

    def test_latest_snapshot_per_shard_wins(self):
        view = FederationMetricsView()
        view.update(0, self.worker_snapshot(10, [5]))
        view.update(0, self.worker_snapshot(25, [5, 50]))
        view.update(1, self.worker_snapshot(7, [500]))
        assert view.shards() == (0, 1)
        registry = view.registry()
        counter = registry.get("events_total")
        # Snapshots are cumulative: the rebuild must not double-count
        # shard 0's first generation.
        assert counter.series() == {("0",): 25.0, ("1",): 7.0}
        assert "events_total" in view.render_text()

    def test_stage_p95_per_shard(self):
        view = FederationMetricsView()
        view.update(0, self.worker_snapshot(1, [5] * 20))
        view.update(1, self.worker_snapshot(1, [500] * 20))
        p95 = view.stage_p95()
        assert set(p95) == {("0", "bus.dispatch"), ("1", "bus.dispatch")}
        assert p95[("0", "bus.dispatch")] <= 10
        assert p95[("1", "bus.dispatch")] > 100

    def test_health_sees_worker_breaches(self):
        view = FederationMetricsView()
        worker = MetricsRegistry()
        worker.gauge("queue_depth").set(80)
        view.update(3, worker.snapshot())
        health = view.health(
            rules=(threshold_rule("queue-depth", "queue_depth", ">", 50),)
        )
        assert health.status == "degraded"
