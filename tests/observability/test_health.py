"""Tests for SLO rules, the health evaluator, and the federation rollup."""

import pytest

from repro import EnactmentSystem
from repro.awareness.engine import SYSTEM_SOURCE
from repro.awareness.sources import SystemTelemetrySource
from repro.errors import SpecificationError
from repro.events.queues import Notification
from repro.observability import instrumented
from repro.observability.health import (
    STATUS_EXIT_CODES,
    HealthEvaluator,
    SloRule,
    default_rules,
    rate_rule,
    restart_storm_rule,
    staleness_rule,
    threshold_rule,
    worst_status,
)
from repro.observability.selfawareness import (
    FederationHealthView,
    SelfAwareness,
)


def flood(system, count, time=0, participant="flooded"):
    """Enqueue *count* synthetic notifications to inflate queue_depth."""
    queue = system.awareness.delivery.queue
    for index in range(count):
        queue.enqueue(
            Notification(
                notification_id=f"syn-{participant}-{index}",
                participant_id=participant,
                time=time,
                description="synthetic backlog",
                schema_name="AS_Backlog",
                parameters={},
            )
        )


class TestSloRule:
    def test_breached_uses_named_comparison(self):
        rule = threshold_rule("depth", "queue_depth", ">", 50)
        assert rule.breached(51)
        assert not rule.breached(50)

    def test_unknown_comparison_rejected(self):
        with pytest.raises(SpecificationError, match="unknown comparison"):
            SloRule(name="x", metric="m", comparison="~", limit=1)

    def test_unknown_severity_rejected(self):
        with pytest.raises(SpecificationError, match="severity"):
            SloRule(name="x", metric="m", comparison=">", limit=1, severity="bad")

    def test_schema_and_description(self):
        rule = threshold_rule("depth", "queue_depth", ">", 50)
        assert rule.schema_name() == "AS_Health_depth"
        assert "queue_depth > 50" in rule.user_description()

    def test_rate_factory_derives_metric(self):
        rule = rate_rule("fails", "bus_failed_total", 5, ">", 0)
        assert rule.metric == "rate[bus_failed_total/5]"
        assert rule.kind == "rate"
        assert rule.base_metric == "bus_failed_total"
        assert rule.window == 5

    def test_staleness_factory_derives_metric(self):
        rule = staleness_rule("watchdog", "heartbeats_total", 2)
        assert rule.metric == "stale[heartbeats_total]"
        assert rule.kind == "staleness"
        assert rule.breached(3)
        assert not rule.breached(2)

    def test_restart_storm_factory_watches_shard_recoveries(self):
        rule = restart_storm_rule(window=5, limit=1)
        assert rule.base_metric == "shard_recoveries"
        assert rule.kind == "rate"
        assert rule.window == 5
        assert rule.breached(2)
        assert not rule.breached(1)
        # Opt-in: crash loops only matter on durable sharded federations.
        assert "restart-storm" not in {r.name for r in default_rules()}

    def test_default_rules_cover_the_issue_set(self):
        names = {rule.name for rule in default_rules()}
        assert {
            "queue-depth",
            "delivery-lag",
            "failure-rate",
            "timer-backlog",
            "journal-divergence",
        } <= names
        assert len(names) >= 4

    def test_worst_status(self):
        assert worst_status([]) == "ok"
        assert worst_status(["ok", "ok"]) == "ok"
        assert worst_status(["ok", "degraded"]) == "degraded"
        assert worst_status(["degraded", "failing", "ok"]) == "failing"

    def test_exit_codes(self):
        assert STATUS_EXIT_CODES == {"ok": 0, "degraded": 1, "failing": 2}


class TestThresholdFireAndClear:
    def test_queue_depth_fires_then_clears(self):
        system = EnactmentSystem(name="alpha")
        awareness = SelfAwareness(system, interval=2)
        assert awareness.health().status == "ok"

        flood(system, 51, time=system.clock.now())
        system.clock.advance(2)
        health = awareness.health()
        assert health.status == "degraded"
        firing = {state.rule.name for state in health.firing()}
        assert "queue-depth" in firing
        # The breach reached the operator role as a pipeline notification.
        alerts = awareness.alerts()
        assert any(a.schema_name == "AS_Health_queue-depth" for a in alerts)

        # Draining the backlog clears the rule on the next pass.
        system.awareness.delivery.queue.retrieve("flooded")
        awareness.alerts()  # health agent reads its own queue
        system.awareness.delivery.queue.retrieve(SelfAwareness.AGENT_ID)
        system.clock.advance(2)
        health = awareness.health()
        assert health.status == "ok"
        assert not health.firing()

    def test_persistent_breach_alerts_once_per_episode(self):
        system = EnactmentSystem(name="edge")
        awareness = SelfAwareness(system, interval=1)
        flood(system, 60, time=system.clock.now())
        system.clock.advance(5)
        first = [
            a
            for a in awareness.alerts()
            if a.schema_name == "AS_Health_queue-depth"
        ]
        assert len(first) == 1
        # Clear the breach, then breach again: a second episode alerts.
        system.awareness.delivery.queue.retrieve("flooded")
        system.clock.advance(2)
        flood(system, 60, time=system.clock.now(), participant="again")
        system.clock.advance(2)
        second = [
            a
            for a in awareness.alerts()
            if a.schema_name == "AS_Health_queue-depth"
        ]
        assert len(second) == 2


class TestRateFireAndClear:
    def test_bus_failure_rate(self):
        system = EnactmentSystem(name="ratesys")
        rules = (
            rate_rule(
                "failure-rate",
                "bus_failed_total",
                3,
                ">",
                0,
                severity="failing",
            ),
        )
        awareness = SelfAwareness(system, rules=rules, interval=1)
        system.clock.advance(1)  # baseline pass
        assert awareness.health().status == "ok"

        failed = system.metrics.get("bus_failed_total")
        failed.inc(1, ("T_activity",))
        system.clock.advance(1)
        health = awareness.health()
        assert health.status == "failing"
        assert health.exit_code == 2
        assert any(a.schema_name == "AS_Health_failure-rate"
                   for a in awareness.alerts())

        # No further failures: tick-by-tick passes age the increase out
        # of the window.
        for __ in range(4):
            system.clock.advance(1)
        assert awareness.health().status == "ok"


class TestStalenessFireAndClear:
    def test_watchdog_over_application_counter(self):
        system = EnactmentSystem(name="stale-sys")
        heartbeat = system.metrics.counter(
            "heartbeats_total", "application heartbeats"
        )
        source = SystemTelemetrySource(
            system.clock,
            system.metrics,
            bus=system.bus,
            system_id=system.name,
            interval=1,
            sampled_metrics=("heartbeats_total",),
        )
        system.awareness.register_external_source(
            SYSTEM_SOURCE, source.producer
        )
        evaluator = HealthEvaluator(
            system.awareness,
            source,
            system_name=system.name,
            rules=(staleness_rule("watchdog", "heartbeats_total", 2),),
        )
        heartbeat.inc()
        source.sample_now()  # moving: misses = 0
        assert evaluator.health().status == "ok"
        for __ in range(3):
            source.sample_now()  # silent passes: misses 1, 2, 3
        health = evaluator.health()
        assert health.status == "degraded"
        assert health.firing()[0].rule.name == "watchdog"
        heartbeat.inc()
        source.sample_now()  # moving again clears the watchdog
        assert evaluator.health().status == "ok"


class TestAlertProvenance:
    def test_alert_chain_reaches_the_telemetry_event(self):
        with instrumented():
            system = EnactmentSystem(name="prov")
            awareness = SelfAwareness(system, interval=1)
            flood(system, 60, time=system.clock.now())
            system.clock.advance(1)
            alerts = [
                a
                for a in awareness.alerts()
                if a.schema_name == "AS_Health_queue-depth"
            ]
            assert alerts
            chain = alerts[0].parameters.get("provenance")
            assert chain is not None
            primitives = chain.primitives()
            assert primitives
            assert any(
                node.event_type == "T_system" for node in primitives
            )


class TestEvaluatorLifecycle:
    def test_rules_frozen_after_deploy(self):
        system = EnactmentSystem(name="frozen")
        awareness = SelfAwareness(system, interval=1)
        with pytest.raises(SpecificationError, match="before deploy"):
            awareness.evaluator.add_rule(
                threshold_rule("late", "queue_depth", ">", 1)
            )

    def test_duplicate_rule_rejected(self):
        system = EnactmentSystem(name="dup")
        source = SystemTelemetrySource(
            system.clock, system.metrics, bus=system.bus, interval=1
        )
        evaluator = HealthEvaluator(system.awareness, source, rules=())
        evaluator.add_rule(threshold_rule("once", "queue_depth", ">", 1))
        with pytest.raises(SpecificationError, match="already exists"):
            evaluator.add_rule(threshold_rule("once", "queue_depth", ">", 2))


class TestFederation:
    def test_one_degraded_member_flips_the_rollup(self):
        alpha = EnactmentSystem(name="alpha")
        beta = EnactmentSystem(name="beta")
        view = FederationHealthView(
            [SelfAwareness(alpha, interval=1), SelfAwareness(beta, interval=1)]
        )
        for member in view.members():
            member.sample_now()
        assert view.rollup().status == "ok"
        assert view.rollup().exit_code == 0

        flood(alpha, 60, time=alpha.clock.now())
        alpha.clock.advance(1)
        rollup = view.rollup()
        assert rollup.status == "degraded"
        assert rollup.exit_code == 1
        by_name = {health.system: health for health in rollup.systems}
        assert by_name["alpha"].status == "degraded"
        assert by_name["beta"].status == "ok"

        payload = view.as_dict()
        assert payload["federation"] == "degraded"
        assert {entry["system"] for entry in payload["systems"]} == {
            "alpha",
            "beta",
        }

        rendered = view.render()
        assert "alpha" in rendered and "degraded" in rendered
        assert rendered.strip().endswith("federation: degraded")

    def test_duplicate_system_name_rejected(self):
        alpha = EnactmentSystem(name="alpha")
        clone = EnactmentSystem(name="alpha")
        view = FederationHealthView([SelfAwareness(alpha, interval=1)])
        with pytest.raises(ValueError, match="distinct name"):
            view.add(SelfAwareness(clone, interval=1))
