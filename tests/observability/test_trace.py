"""Tests for the span tracer: nesting, ring buffer, sampling, histograms."""

from repro.metrics.latency import STAGE_LATENCY_BUCKETS_US
from repro.observability import MetricsRegistry, Tracer


def record_one_trace(tracer, name="root", children=()):
    root = tracer.begin(name, logical_time=1)
    for child in children:
        span = tracer.begin(child)
        tracer.end(span)
    tracer.end(root)
    return root


class TestNesting:
    def test_children_nest_under_the_active_span(self):
        tracer = Tracer(sample_every=1)
        with tracer.span("root", logical_time=3, topic="T"):
            with tracer.span("middle"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        (root,) = tracer.recent()
        assert root.name == "root"
        assert root.logical_time == 3
        assert [child.name for child in root.children] == [
            "middle",
            "sibling",
        ]
        assert [leaf.name for leaf in root.children[0].children] == ["leaf"]
        assert root.duration_us >= root.children[0].duration_us

    def test_begin_end_matches_context_manager(self):
        tracer = Tracer(sample_every=1)
        record_one_trace(tracer, children=("a", "b"))
        (root,) = tracer.recent()
        assert [child.name for child in root.children] == ["a", "b"]
        assert tracer.active_depth == 0

    def test_render_and_json_export(self):
        tracer = Tracer(sample_every=1)
        with tracer.span("root", logical_time=9, node="op1"):
            with tracer.span("leaf"):
                pass
        rendered = tracer.recent()[0].render()
        assert "root" in rendered and "leaf" in rendered
        assert "t=9" in rendered and "node=op1" in rendered
        (payload,) = tracer.export_json()
        assert payload["name"] == "root"
        assert payload["attributes"] == {"node": "op1"}
        assert payload["children"][0]["name"] == "leaf"


class TestRingBuffer:
    def test_oldest_roots_are_evicted(self):
        tracer = Tracer(max_traces=4, sample_every=1)
        for index in range(7):
            record_one_trace(tracer, name=f"trace-{index}")
        recent = tracer.recent()
        assert len(recent) == 4
        assert [span.name for span in recent] == [
            "trace-3",
            "trace-4",
            "trace-5",
            "trace-6",
        ]
        assert tracer.completed_spans == 7

    def test_clear_drops_traces_and_counters(self):
        tracer = Tracer(sample_every=1)
        record_one_trace(tracer)
        tracer.clear()
        assert tracer.recent() == ()
        assert tracer.completed_spans == 0


class TestSampling:
    def test_one_in_n_traces_recorded(self):
        tracer = Tracer(sample_every=4)
        for __ in range(8):
            record_one_trace(tracer, children=("stage",))
        # Traces 4 and 8 (the multiples of sample_every) are recorded.
        assert len(tracer.recent()) == 2
        assert tracer.completed_spans == 4  # 2 roots + 2 children

    def test_unsampled_traces_cost_no_state(self):
        tracer = Tracer(sample_every=2)
        root = tracer.begin("root")
        inner = tracer.begin("inner")
        tracer.end(inner)
        tracer.end(root)
        assert tracer.recent() == ()
        assert tracer._light_depth == 0
        assert tracer.active_depth == 0
        # The next trace is the sampled one.
        record_one_trace(tracer)
        assert len(tracer.recent()) == 1

    def test_context_manager_spans_respect_sampling(self):
        tracer = Tracer(sample_every=2)
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
        assert tracer.recent() == ()
        with tracer.span("root"):
            pass
        assert len(tracer.recent()) == 1

    def test_sample_every_one_records_everything(self):
        tracer = Tracer(sample_every=1)
        for __ in range(5):
            record_one_trace(tracer)
        assert len(tracer.recent()) == 5


class TestStageHistograms:
    def test_spans_feed_the_stage_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, sample_every=1)
        record_one_trace(tracer, name="source.emit", children=("bus.dispatch",))
        record_one_trace(tracer, name="source.emit")
        summary = tracer.stage_summary()
        assert summary["source.emit"][0] == 2
        assert summary["bus.dispatch"][0] == 1
        assert summary["source.emit"][1] >= 0.0
        histogram = registry.get("pipeline_stage_us")
        assert histogram.buckets == STAGE_LATENCY_BUCKETS_US
        __, ___, count = histogram.snapshot(("source.emit",))
        assert count == 2

    def test_unregistered_tracer_has_empty_summary(self):
        tracer = Tracer(sample_every=1)
        record_one_trace(tracer)
        assert tracer.stage_summary() == {}
