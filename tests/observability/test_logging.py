"""Tests for the structured logging plane (JSON-lines flight recorder)."""

import io
import json

from repro.observability.logging import (
    STRUCTURED_LOG,
    StructuredLog,
    logging_enabled,
    render_record,
    structured_log,
)


class TestStructuredLog:
    def test_emit_records_and_filters(self):
        log = StructuredLog()
        log.emit("bus", "handler_error", level="error", tick=4, topic="T_x")
        log.emit("delivery", "undeliverable", level="warning", tick=5)
        assert len(log.records()) == 2
        bus_only = log.records(component="bus")
        assert len(bus_only) == 1
        assert bus_only[0]["event"] == "handler_error"
        assert bus_only[0]["tick"] == 4
        assert log.records(event="undeliverable")[0]["component"] == "delivery"

    def test_ring_buffer_drops_oldest(self):
        log = StructuredLog(max_records=3)
        for index in range(5):
            log.emit("c", "e", seq=index)
        seqs = [record["seq"] for record in log.records()]
        assert seqs == [2, 3, 4]

    def test_sink_receives_json_lines(self):
        lines = []
        log = StructuredLog()
        log.set_sink(lines.append)
        log.emit("health", "slo_fired", rule="queue-depth", value=65)
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["component"] == "health"
        assert parsed["rule"] == "queue-depth"
        assert parsed["value"] == 65

    def test_stream_sink(self):
        stream = io.StringIO()
        log = StructuredLog()
        log.set_sink(stream)
        log.emit("a", "b")
        log.emit("a", "c")
        emitted = stream.getvalue().splitlines()
        assert len(emitted) == 2
        assert json.loads(emitted[1])["event"] == "c"

    def test_render_record_stringifies_non_json(self):
        line = render_record({"component": "x", "event": "y", "obj": object()})
        assert json.loads(line)["component"] == "x"  # no raise

    def test_render_lines_and_clear(self):
        log = StructuredLog()
        log.emit("a", "b")
        assert json.loads(log.render_lines())["event"] == "b"
        log.clear()
        assert log.records() == ()
        assert log.render_lines() == ""

    def test_trace_correlation(self):
        from repro.observability.trace import Tracer

        log = StructuredLog()
        tracer = Tracer(sample_every=1)
        log.bind_tracer(tracer)
        with tracer.span("bus.dispatch", logical_time=1):
            record = log.emit("bus", "handler_error")
        assert "trace" in record
        assert record["span"] >= 1
        # Outside any span the record carries no trace fields.
        plain = log.emit("bus", "handler_error")
        assert "trace" not in plain


class TestProcessWidePlane:
    def test_disabled_by_default(self):
        assert structured_log() is STRUCTURED_LOG

    def test_logging_enabled_scope(self):
        lines = []
        assert not STRUCTURED_LOG.enabled
        with logging_enabled(lines.append) as log:
            assert log.enabled
            log.emit("scope", "inside")
        assert not STRUCTURED_LOG.enabled
        assert len(lines) == 1
        # Records are kept after the scope; `clear=True` on the next entry
        # drops them.
        assert STRUCTURED_LOG.records(component="scope")
        with logging_enabled():
            assert STRUCTURED_LOG.records(component="scope") == ()

    def test_pipeline_emits_on_handler_error(self, system):
        # A failing subscriber under error isolation writes a structured
        # record from the bus dispatch path.
        system.bus._isolate_errors = True

        def boom(event):
            raise RuntimeError("broken detector")

        system.bus.subscribe("T_activity", boom)
        with logging_enabled():
            from repro.events.event import Event
            from repro.events.producers import ACTIVITY_EVENT_TYPE

            system.bus.publish(
                Event.trusted(
                    ACTIVITY_EVENT_TYPE,
                    {
                        "time": 1,
                        "activityInstanceId": "a-1",
                        "parentProcessSchemaId": None,
                        "parentProcessInstanceId": None,
                        "user": None,
                        "activityVariableId": None,
                        "activityProcessSchemaId": None,
                        "oldState": "Ready",
                        "newState": "Running",
                    },
                )
            )
        records = STRUCTURED_LOG.records(component="bus", event="handler_error")
        assert records
        assert records[-1]["level"] == "error"
        assert "broken detector" in records[-1]["error"]
