"""Tests for the metrics registry (counters, gauges, histograms, labels)."""

import json
import threading

import pytest

from repro.observability import (
    MetricsError,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_value_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events", ("topic",))
        counter.inc(1, ("a",))
        counter.inc(2, ("a",))
        counter.inc(5, ("b",))
        assert counter.value(("a",)) == 3
        assert counter.value(("b",)) == 5
        assert counter.total() == 8

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(MetricsError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_arity_mismatch_rejected(self):
        counter = MetricsRegistry().counter("c", label_names=("topic",))
        with pytest.raises(MetricsError, match="declares labels"):
            counter.inc(1, ())
        with pytest.raises(MetricsError, match="declares labels"):
            counter.inc(1, ("a", "b"))

    def test_bound_child_shares_the_series(self):
        counter = MetricsRegistry().counter("c", label_names=("topic",))
        child = counter.child(("a",))
        child.inc()
        child.inc(4)
        counter.inc(1, ("a",))
        assert child.value() == 6
        assert counter.value(("a",)) == 6

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(MetricsError, match="not a gauge"):
            registry.gauge("c")

    def test_label_redeclaration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", label_names=("topic",))
        with pytest.raises(MetricsError, match="registered with labels"):
            registry.counter("c", label_names=("queue",))


class TestLabelCardinality:
    def test_series_bound_enforced(self):
        registry = MetricsRegistry(max_series=3)
        counter = registry.counter("c", label_names=("key",))
        for index in range(3):
            counter.inc(1, (f"k{index}",))
        with pytest.raises(MetricsError, match="cardinality"):
            counter.inc(1, ("one-too-many",))
        # Existing series still work after the rejection.
        counter.inc(1, ("k0",))
        assert counter.value(("k0",)) == 2

    def test_child_creation_respects_the_bound(self):
        registry = MetricsRegistry(max_series=1)
        histogram = registry.histogram(
            "h", buckets=(1.0,), label_names=("stage",)
        )
        histogram.child(("a",))
        with pytest.raises(MetricsError, match="cardinality"):
            histogram.child(("b",))


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_callback_gauge_evaluates_at_collection(self):
        registry = MetricsRegistry()
        holder = {"value": 1}
        registry.callback_gauge("g", lambda: holder["value"])
        assert registry.value("g") == 1
        holder["value"] = 7
        assert registry.value("g") == 7

    def test_registry_value_of_unknown_instrument_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0


class TestHistogramBuckets:
    def test_observation_on_the_edge_lands_in_that_bucket(self):
        """`le` semantics: v <= edge counts toward the edge's bucket."""
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 5.0, 10.0))
        histogram.observe(1.0)  # exactly the first edge
        histogram.observe(0.5)  # below the first edge
        histogram.observe(5.0)  # exactly the second edge
        histogram.observe(5.1)  # just above the second edge
        histogram.observe(99.0)  # above the last edge -> overflow
        counts, total, count = histogram.snapshot()
        assert counts == (2, 1, 1, 1)
        assert count == 5
        assert total == pytest.approx(110.6)

    def test_bucket_placement_exhaustive(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (1.0, 0.5):
            histogram.observe(value)
        assert histogram.snapshot()[0] == (2, 0, 0, 0)
        histogram.observe(5.0)
        assert histogram.snapshot()[0] == (2, 1, 0, 0)
        histogram.observe(5.1)
        assert histogram.snapshot()[0] == (2, 1, 1, 0)
        histogram.observe(10.0)
        assert histogram.snapshot()[0] == (2, 1, 2, 0)
        histogram.observe(10.0001)
        assert histogram.snapshot()[0] == (2, 1, 2, 1)

    def test_cumulative_counts(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 0.1):
            histogram.observe(value)
        assert histogram.cumulative() == (2, 3, 4)

    def test_edges_must_ascend(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError, match="ascending"):
            registry.histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(MetricsError, match="ascending"):
            registry.histogram("h2", buckets=(1.0, 1.0))
        with pytest.raises(MetricsError, match="at least one bucket"):
            registry.histogram("h3", buckets=())

    def test_relaxed_observe_matches_locked(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 2.0), label_names=("s",)
        )
        locked = histogram.child(("locked",))
        relaxed = histogram.child(("relaxed",))
        for value in (0.5, 1.5, 9.0):
            locked.observe(value)
            relaxed.observe_relaxed(value)
        assert histogram.snapshot(("locked",)) == histogram.snapshot(
            ("relaxed",)
        )


class TestConcurrency:
    def test_concurrent_increments_are_exact(self):
        counter = MetricsRegistry().counter("c", label_names=("t",))
        child = counter.child(("x",))
        n_threads, per_thread = 8, 5_000

        def work():
            for __ in range(per_thread):
                child.inc()
                counter.inc(1, ("x",))

        threads = [threading.Thread(target=work) for __ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(("x",)) == n_threads * per_thread * 2

    def test_concurrent_histogram_observes_are_exact(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.5,))
        child = histogram.child()
        n_threads, per_thread = 8, 2_000

        def work():
            for __ in range(per_thread):
                child.observe(1.0)

        threads = [threading.Thread(target=work) for __ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counts, __, count = histogram.snapshot()
        assert count == n_threads * per_thread
        assert counts[-1] == n_threads * per_thread


class TestRendering:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "all events", ("topic",)).inc(
            3, ("t1",)
        )
        registry.gauge("depth").set(2)
        registry.histogram("lat_us", buckets=(1.0, 10.0)).observe(5.0)
        return registry

    def test_text_exposition(self):
        text = self.make_registry().render_text()
        assert "# TYPE events_total counter" in text
        assert 'events_total{topic="t1"} 3' in text
        assert "# HELP events_total all events" in text
        assert "depth 2" in text
        assert 'lat_us_bucket{le="10"} 1' in text
        assert 'lat_us_bucket{le="+Inf"} 1' in text
        assert "lat_us_count 1" in text

    def test_json_round_trips(self):
        payload = json.loads(self.make_registry().render_json())
        assert payload["events_total"]["kind"] == "counter"
        assert payload["events_total"]["series"][0]["labels"] == {
            "topic": "t1"
        }
        assert payload["lat_us"]["series"][0]["count"] == 1

    def test_reset_and_unregister(self):
        registry = self.make_registry()
        registry.unregister("depth")
        assert registry.get("depth") is None
        registry.reset()
        assert registry.names() == ()


class TestMultiCallbackGauge:
    def make(self, registry=None, max_series=None):
        if registry is None:
            registry = (
                MetricsRegistry()
                if max_series is None
                else MetricsRegistry(max_series=max_series)
            )
        self.depths = {("alice",): 3, ("bob",): 1}
        return registry.multi_callback_gauge(
            "queue_depth",
            lambda: self.depths,
            "pending notifications per participant",
            ("participant",),
        )

    def test_series_computed_at_collection_time(self):
        gauge = self.make()
        assert gauge.series() == {("alice",): 3.0, ("bob",): 1.0}
        self.depths[("carol",)] = 7
        assert gauge.value(("carol",)) == 7.0

    def test_missing_series_reads_zero(self):
        gauge = self.make()
        assert gauge.value(("nobody",)) == 0.0

    def test_cardinality_bound_enforced(self):
        gauge = self.make(max_series=1)
        with pytest.raises(MetricsError, match="cardinality bound"):
            gauge.series()

    def test_replacing_a_non_gauge_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("queue_depth")
        with pytest.raises(MetricsError, match="not a multi-callback gauge"):
            registry.multi_callback_gauge("queue_depth", dict)

    def test_rendered_in_text_and_json(self):
        registry = MetricsRegistry()
        self.make(registry)
        text = registry.render_text()
        assert 'queue_depth{participant="alice"} 3' in text
        payload = json.loads(registry.render_json())
        series = {
            entry["labels"]["participant"]: entry["value"]
            for entry in payload["queue_depth"]["series"]
        }
        assert series == {"alice": 3.0, "bob": 1.0}
