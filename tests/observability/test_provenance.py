"""Tests for recognition provenance chains and the disabled no-op path."""

from repro.awareness.operators.count import Count
from repro.awareness.operators.filters import ContextFilter
from repro.awareness.operators.generic import And, Seq
from repro.core.context import ContextChange
from repro.events.canonical import canonical_event
from repro.events.producers import ContextEventProducer
from repro.observability import (
    INSTRUMENTATION,
    ProvenanceNode,
    ProvenanceTracker,
    instrumented,
)


def context_change(index, field="field0"):
    return ContextChange(
        time=index,
        context_id="ctx-1",
        context_name="Ctx",
        associations=frozenset({("P-X", "proc-1")}),
        field_name=field,
        old_value=index,
        new_value=index + 1,
    )


def canonical(time, instance="proc-1", description=None):
    return canonical_event(
        "P-X", instance, time=time, source="test", description=description
    )


class TestPrimitives:
    def test_producer_stamps_primitive_events(self):
        producer = ContextEventProducer()
        with instrumented():
            event = producer.produce(context_change(1))
        node = event.provenance
        assert isinstance(node, ProvenanceNode)
        assert node.is_primitive
        assert node.node == "E_context"
        assert node.event_type == "T_context"
        assert node.inputs == ()
        assert "field0" in node.summary_text()

    def test_summary_text_formats_digests_lazily(self):
        activity = ProvenanceNode(
            1, "E_activity", "primitive", "T_activity", 3,
            ("activity", "Review", "Ready", "Running"),
        )
        context = ProvenanceNode(
            2, "E_context", "primitive", "T_context", 4,
            ("context", "Ctx", "deadline", 99),
        )
        assert activity.summary_text() == "activity 'Review': Ready -> Running"
        assert context.summary_text() == "context 'Ctx'.deadline = 99"


class TestOperatorChains:
    def test_chain_through_count(self):
        producer = ContextEventProducer()
        flt = ContextFilter("P-X", "Ctx", "field0", instance_name="watch")
        count = Count("P-X", instance_name="seen")
        producer.add_consumer(lambda event: flt.consume(0, event))
        outputs = []
        flt.add_consumer(
            lambda slot, event: outputs.extend(count.consume(slot, event)), 0
        )
        with instrumented():
            producer.produce(context_change(1))
        (composite,) = outputs
        chain = composite.provenance
        assert chain.kind == "Count"
        assert chain.node == "seen"
        assert [node.kind for node in chain.primitives()] == ["primitive"]
        assert chain.operator_nodes() == ("seen", "watch")
        assert "count=1" in chain.summary_text()

    def test_and_links_all_constituents(self):
        conjunction = And("P-X", instance_name="both")
        with instrumented():
            first = canonical(1, description="left")
            second = canonical(2, description="right")
            INSTRUMENTATION.provenance.record_operator(
                first, "left-src", "Filter", (first,)
            )
            INSTRUMENTATION.provenance.record_operator(
                second, "right-src", "Filter", (second,)
            )
            assert conjunction.consume(0, first) == []
            (output,) = conjunction.consume(1, second)
        chain = output.provenance
        assert chain.kind == "And"
        # Both constituents' chains hang off the composite's node.
        assert len(chain.inputs) == 2
        assert {node.node for node in chain.inputs} == {
            "left-src",
            "right-src",
        }

    def test_seq_links_all_constituents(self):
        sequence = Seq("P-X", instance_name="ordered")
        with instrumented():
            first = canonical(1)
            second = canonical(2)
            assert sequence.consume(0, first) == []
            (output,) = sequence.consume(1, second)
        chain = output.provenance
        assert chain.kind == "Seq"
        assert len(chain.inputs) == 0 or len(chain.inputs) <= 2
        # Constituent events carried no chains (built outside a producer),
        # but the node itself still records the operator hop.
        assert chain.node == "ordered"

    def test_render_and_to_dict(self):
        tracker = ProvenanceTracker()
        event = canonical(5, description="leaf")
        leaf = tracker.record_operator(event, "op-leaf", "Filter", (event,))
        composite = canonical(6, description="top")
        composite.provenance = None
        node = tracker.record_operator(
            composite, "op-top", "Count", (event,)
        )
        rendered = node.render()
        assert "op-top" in rendered and "op-leaf" in rendered
        assert "ev-" in rendered
        payload = node.to_dict()
        assert payload["node"] == "op-top"
        assert payload["inputs"][0]["node"] == "op-leaf"
        assert payload["event_id"].startswith("ev-")
        assert leaf.event_id < node.event_id


class TestDeliveryRingBuffer:
    def test_recent_deliveries_bounded(self):
        tracker = ProvenanceTracker(max_deliveries=3)
        for index in range(5):
            event = canonical(index)
            tracker.record_primitive(event, "E")
            tracker.record_delivery(
                f"n-{index}", "user", "AS_X", "desc", index, event
            )
        records = tracker.recent_deliveries()
        assert len(records) == 3
        assert [record.notification_id for record in records] == [
            "n-2",
            "n-3",
            "n-4",
        ]
        assert all(record.chain is not None for record in records)
        assert "notification n-4" in records[-1].render()

    def test_clear_resets_ids_and_buffer(self):
        tracker = ProvenanceTracker()
        event = canonical(1)
        tracker.record_primitive(event, "E")
        tracker.record_delivery("n-1", "u", "AS", "d", 1, event)
        tracker.clear()
        assert tracker.recent_deliveries() == ()
        fresh = canonical(2)
        node = tracker.record_primitive(fresh, "E")
        assert node.event_id == 1


class TestDisabledPath:
    def test_disabled_pipeline_stamps_nothing(self):
        assert not INSTRUMENTATION.enabled
        producer = ContextEventProducer()
        flt = ContextFilter("P-X", "Ctx", "field0")
        count = Count("P-X")
        producer.add_consumer(lambda event: flt.consume(0, event))
        outputs = []
        flt.add_consumer(
            lambda slot, event: outputs.extend(count.consume(slot, event)), 0
        )
        before_spans = INSTRUMENTATION.tracer.completed_spans
        before_deliveries = len(INSTRUMENTATION.provenance.recent_deliveries())
        event = producer.produce(context_change(1))
        assert event.provenance is None
        (composite,) = outputs
        assert composite.provenance is None
        assert INSTRUMENTATION.tracer.completed_spans == before_spans
        assert (
            len(INSTRUMENTATION.provenance.recent_deliveries())
            == before_deliveries
        )

    def test_instrumented_scope_restores_previous_state(self):
        assert not INSTRUMENTATION.enabled
        with instrumented():
            assert INSTRUMENTATION.enabled
            with instrumented():
                assert INSTRUMENTATION.enabled
            # The inner scope restores the outer scope's enabled state.
            assert INSTRUMENTATION.enabled
        assert not INSTRUMENTATION.enabled
