"""Public API surface checks: exports exist, are importable, documented."""

import importlib
import inspect

import pytest

PUBLIC_PACKAGES = (
    "repro",
    "repro.core",
    "repro.coordination",
    "repro.service",
    "repro.events",
    "repro.awareness",
    "repro.awareness.operators",
    "repro.baselines",
    "repro.federation",
    "repro.workloads",
    "repro.metrics",
)


class TestExports:
    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists {name!r} but it is missing"
            )

    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_all_is_sorted(self, package_name):
        package = importlib.import_module(package_name)
        exported = list(package.__all__)
        assert exported == sorted(exported), (
            f"{package_name}.__all__ is not sorted"
        )

    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_package_docstring_present(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__.strip()) > 40


class TestDocstrings:
    @pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
    def test_every_exported_class_and_function_is_documented(
        self, package_name
    ):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports without docstrings: {undocumented}"
        )


class TestVersion:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
