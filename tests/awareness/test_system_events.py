"""Tests for the self-awareness event plane: ``T_system`` telemetry.

Covers the telemetry source agent (sampling, derivations, delta
suppression), the ``Filter_system`` and ``Edge`` operators, the
``E_system`` producer, and the DSL spelling of a health schema.
"""

import pytest

from repro.awareness.dsl import compile_specification, window_to_dsl
from repro.awareness.operators import Edge, SystemFilter
from repro.awareness.sources import (
    DEFAULT_SYSTEM_METRICS,
    SystemTelemetrySource,
)
from repro.awareness.specification import SpecificationWindow
from repro.clock import LogicalClock
from repro.errors import ParameterError
from repro.events.bus import EventBus
from repro.events.event import Event
from repro.events.producers import SYSTEM_EVENT_TYPE, SystemEventProducer
from repro.observability import MetricsRegistry


def system_event(**overrides):
    params = dict(
        time=3,
        source="E_system",
        systemId="alpha",
        metric="queue_depth",
        seriesLabel=None,
        value=7,
    )
    params.update(overrides)
    return Event(SYSTEM_EVENT_TYPE, params)


class TestSystemEventProducer:
    def test_produce_builds_a_self_contained_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe("T_system", seen.append)
        producer = SystemEventProducer(system_id="alpha")
        producer.attach(bus)
        event = producer.produce(4, "queue_depth", "alice", 12)
        assert event.type_name == "T_system"
        assert event["systemId"] == "alpha"
        assert event["metric"] == "queue_depth"
        assert event["seriesLabel"] == "alice"
        assert event["value"] == 12
        assert seen == [event]

    def test_produce_batch_is_one_bus_batch(self):
        bus = EventBus()
        producer = SystemEventProducer(system_id="alpha")
        producer.attach(bus)
        events = producer.produce_batch(
            5, [("queue_depth", None, 3), ("timer_backlog", None, 1)]
        )
        assert [event["metric"] for event in events] == [
            "queue_depth",
            "timer_backlog",
        ]


class TestSystemFilter:
    def test_matching_metric_passes_as_canonical(self):
        operator = SystemFilter("P-Health", "queue_depth")
        out = operator.consume(0, system_event())
        assert len(out) == 1
        event = out[0]
        assert event.type_name == "C[P-Health]"
        assert event["processInstanceId"] == "alpha"
        assert event["intInfo"] == 7
        assert event["sourceEvent"]["metric"] == "queue_depth"

    def test_other_metric_blocked(self):
        operator = SystemFilter("P-Health", "queue_depth")
        assert operator.consume(0, system_event(metric="timer_backlog")) == []

    def test_series_label_selects_one_series(self):
        operator = SystemFilter("P-Health", "queue_depth", "alice")
        assert operator.consume(0, system_event()) == []
        out = operator.consume(0, system_event(seriesLabel="alice", value=9))
        assert out[0]["intInfo"] == 9
        assert out[0]["strInfo"] == "alice"

    def test_any_series_wildcard(self):
        operator = SystemFilter(
            "P-Health", "queue_depth", SystemFilter.ANY_SERIES
        )
        assert operator.consume(0, system_event())
        assert operator.consume(0, system_event(seriesLabel="bob"))

    def test_routing_keys_are_the_metric(self):
        operator = SystemFilter("P-Health", "queue_depth")
        assert operator.routing_keys(0) == ["queue_depth"]

    def test_empty_metric_rejected(self):
        with pytest.raises(ParameterError):
            SystemFilter("P-Health", "")


class TestEdgeOperator:
    def canonical(self, value, instance="alpha"):
        operator = SystemFilter("P-Health", "queue_depth")
        return operator.consume(
            0, system_event(value=value, systemId=instance)
        )[0]

    def test_emits_only_on_rising_edge(self):
        edge = Edge("P-Health", lambda v: v > 50)
        assert len(edge.consume(0, self.canonical(60))) == 1
        # Still breached: suppressed.
        assert edge.consume(0, self.canonical(61)) == []
        assert edge.consume(0, self.canonical(70)) == []
        # Recovers, then breaches again: re-armed, emits once more.
        assert edge.consume(0, self.canonical(10)) == []
        assert len(edge.consume(0, self.canonical(80))) == 1

    def test_partitions_are_independent(self):
        edge = Edge("P-Health", lambda v: v > 50)
        assert len(edge.consume(0, self.canonical(60, "alpha"))) == 1
        # A different process instance has its own edge state.
        assert len(edge.consume(0, self.canonical(60, "beta"))) == 1
        assert edge.consume(0, self.canonical(61, "alpha")) == []

    def test_requires_callable(self):
        with pytest.raises(ParameterError):
            Edge("P-Health", 50)


class TestTelemetrySource:
    def make(self, **kwargs):
        clock = LogicalClock()
        metrics = MetricsRegistry()
        bus = EventBus()
        seen = []
        bus.subscribe("T_system", seen.append)
        source = SystemTelemetrySource(
            clock, metrics, bus=bus, system_id="alpha", **kwargs
        )
        return clock, metrics, source, seen

    def test_interval_must_be_positive(self):
        clock = LogicalClock()
        with pytest.raises(ValueError):
            SystemTelemetrySource(clock, MetricsRegistry(), interval=0)

    def test_samples_registered_counters(self):
        clock, metrics, source, seen = self.make(
            interval=1, sampled_metrics=("bus_failed_total",)
        )
        metrics.counter("bus_failed_total", "failures", ("topic",)).inc(
            2, ("T_x",)
        )
        samples = source.sample_now()
        assert ("bus_failed_total", None, 2) in samples
        assert any(event["metric"] == "bus_failed_total" for event in seen)

    def test_absent_metrics_skipped(self):
        __, __, source, seen = self.make(
            interval=1, sampled_metrics=("no_such_metric",)
        )
        assert source.sample_now() == []
        assert seen == []

    def test_clock_driven_sampling_honours_interval(self):
        clock, metrics, source, seen = self.make(
            interval=3, sampled_metrics=("ticks_total",)
        )
        ticks = metrics.counter("ticks_total", "ticks")
        ticks.inc()
        clock.advance(1)
        clock.advance(1)
        assert seen == []  # not yet due
        clock.advance(1)
        assert len(seen) == 1  # one pass at tick 3

    def test_delta_suppression_republishes_only_changes(self):
        clock, metrics, source, seen = self.make(
            interval=1, sampled_metrics=("a_total", "b_total")
        )
        a = metrics.counter("a_total", "a")
        metrics.counter("b_total", "b")
        a.inc()
        source.sample_now()
        first = len(seen)
        assert first == 2  # both metrics published on the first pass
        # Nothing changed: the pass publishes no events at all.
        samples = source.sample_now()
        assert len(samples) == 2  # observers still see the full set
        assert len(seen) == first
        # One metric moves: only that reading is re-published.
        a.inc()
        source.sample_now()
        assert len(seen) == first + 1
        assert seen[-1]["metric"] == "a_total"

    def test_watch_rate_derives_increase_over_window(self):
        clock, metrics, source, __ = self.make(
            interval=1, sampled_metrics=("ops_total",)
        )
        ops = metrics.counter("ops_total", "ops")
        name = source.watch_rate("ops_total", 2)
        assert name == "rate[ops_total/2]"

        def rate():
            return dict(
                (metric, value)
                for metric, label, value in source.sample_now()
                if label is None
            )[name]

        assert rate() == 0  # baseline pass
        ops.inc(5)
        assert rate() == 5
        assert rate() == 5  # still within the 2-pass window
        assert rate() == 0  # aged out

    def test_watch_rate_validates_window(self):
        __, __, source, __ = self.make(interval=1)
        with pytest.raises(ValueError):
            source.watch_rate("ops_total", 0)

    def test_watch_staleness_counts_silent_passes(self):
        clock, metrics, source, __ = self.make(
            interval=1, sampled_metrics=("beats_total",)
        )
        beats = metrics.counter("beats_total", "heartbeats")
        name = source.watch_staleness("beats_total")
        assert name == "stale[beats_total]"

        def stale():
            return dict(
                (metric, value)
                for metric, label, value in source.sample_now()
                if label is None
            )[name]

        beats.inc()
        assert stale() == 0  # moving
        assert stale() == 1
        assert stale() == 2
        beats.inc()
        assert stale() == 0  # moving again resets the watchdog

    def test_default_metric_set_covers_the_health_surface(self):
        assert {
            "queue_depth",
            "delivery_lag",
            "bus_failed_total",
            "timer_backlog",
        } <= set(DEFAULT_SYSTEM_METRICS)


HEALTH_SPEC = """
depth = Filter_system[queue_depth](SystemEvent)
breach = Edge[>, 50](depth)
deliver breach to TaskForceContext.Manager using identity \\
    as "queue depth SLO breached" named AS_QueueDepth
"""


class TestHealthDsl:
    def make_window(self):
        return SpecificationWindow(
            "P-Health",
            {"SystemEvent": SystemEventProducer(system_id="alpha")},
        )

    def test_compiles_and_detects_on_rising_edge(self):
        window = self.make_window()
        compile_specification(window, HEALTH_SPEC)
        schema = window.schema("AS_QueueDepth")
        detected = []
        schema.description.on_detected(detected.append)
        producer = window.source("SystemEvent")
        producer.produce(1, "queue_depth", None, 10)
        producer.produce(2, "queue_depth", None, 60)
        producer.produce(3, "queue_depth", None, 61)  # suppressed
        producer.produce(4, "timer_backlog", None, 99)  # wrong metric
        assert len(detected) == 1
        assert detected[0]["intInfo"] == 60

    def test_round_trip_is_stable(self):
        window_a = self.make_window()
        compile_specification(window_a, HEALTH_SPEC)
        text_a = window_to_dsl(window_a)
        assert "Filter_system[queue_depth]" in text_a
        assert "Edge[>, 50]" in text_a

        window_b = self.make_window()
        compile_specification(window_b, text_a)
        assert window_to_dsl(window_b) == text_a
