"""Tests for the process invocation (Translate) operator."""

import pytest

from repro.awareness.operators import Translate
from repro.errors import ParameterError
from repro.events.canonical import canonical_event
from repro.events.event import Event
from repro.events.producers import ACTIVITY_EVENT_TYPE


def invocation_event(invoked_instance="ir-1", invoking_instance="tf-1"):
    """An activity event showing tf-1 invoked P-IR via 'inforequest'."""
    return Event(
        ACTIVITY_EVENT_TYPE,
        {
            "time": 1,
            "source": "E_activity",
            "activityInstanceId": invoked_instance,
            "parentProcessSchemaId": "P-TF",
            "parentProcessInstanceId": invoking_instance,
            "user": None,
            "activityVariableId": "inforequest",
            "activityProcessSchemaId": "P-IR",
            "oldState": "Uninitialized",
            "newState": "Ready",
        },
    )


def invoked_cp(instance="ir-1", time=5, int_info=42):
    return canonical_event(
        "P-IR", instance, time=time, source="inner", int_info=int_info
    )


class TestTranslate:
    def make(self):
        return Translate("P-TF", "P-IR", "inforequest")

    def test_translates_after_learning_invocation(self):
        operator = self.make()
        assert operator.consume(0, invocation_event()) == []
        out = operator.consume(1, invoked_cp())
        assert len(out) == 1
        event = out[0]
        assert event.type_name == "C[P-TF]"
        assert event["processInstanceId"] == "tf-1"
        assert event["intInfo"] == 42
        assert "translated from P-IR" in event["description"]

    def test_unmapped_instance_ignored(self):
        operator = self.make()
        operator.consume(0, invocation_event("ir-1", "tf-1"))
        assert operator.consume(1, invoked_cp("ir-99")) == []

    def test_learning_filters_on_all_three_parameters(self):
        operator = self.make()
        wrong_schema = invocation_event()
        wrong_schema = Event(
            ACTIVITY_EVENT_TYPE,
            dict(wrong_schema.params, parentProcessSchemaId="P-OTHER"),
        )
        operator.consume(0, wrong_schema)
        wrong_variable = Event(
            ACTIVITY_EVENT_TYPE,
            dict(invocation_event().params, activityVariableId="other"),
        )
        operator.consume(0, wrong_variable)
        wrong_invoked = Event(
            ACTIVITY_EVENT_TYPE,
            dict(invocation_event().params, activityProcessSchemaId="P-X"),
        )
        operator.consume(0, wrong_invoked)
        assert operator.known_invocations() == 0

    def test_multiple_invocations_tracked(self):
        operator = self.make()
        operator.consume(0, invocation_event("ir-1", "tf-1"))
        operator.consume(0, invocation_event("ir-2", "tf-2"))
        assert operator.known_invocations() == 2
        out1 = operator.consume(1, invoked_cp("ir-1"))
        out2 = operator.consume(1, invoked_cp("ir-2"))
        assert out1[0]["processInstanceId"] == "tf-1"
        assert out2[0]["processInstanceId"] == "tf-2"

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            Translate("P-TF", "", "inforequest")
        with pytest.raises(ParameterError):
            Translate("P-TF", "P-IR", "")

    def test_slot_types(self):
        operator = self.make()
        assert operator.slot_type(0).name == "T_activity"
        assert operator.slot_type(1).name == "C[P-IR]"
        assert operator.output_type.name == "C[P-TF]"
