"""Predicate-indexed routing through the full awareness pipeline.

These tests exercise the tentpole property end to end: a primitive event
is dispatched only to the operators whose static parameters can match it.
Filters expose their match key via ``EventOperator.routing_keys`` and the
shared event source producers index deployed consumers by that key, so
independently deployed specification windows never see each other's
events — and retiring a window removes its index entries.
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)


def build_system(fields=("alpha", "beta")):
    system = EnactmentSystem()
    watcher = system.register_participant(Participant("u-w", "watcher"))
    system.core.roles.define_role("watchers").add_member(watcher)
    process = ProcessActivitySchema("P-X", "watched")
    process.add_context_schema(
        ContextSchema("Ctx", [ContextFieldSpec(f, "int") for f in fields])
    )
    process.add_activity_variable(
        ActivityVariable("w", BasicActivitySchema("b-w", "w"))
    )
    process.mark_entry("w")
    system.core.register_schema(process)
    return system, process


def deploy_field_watcher(system, field_name, name):
    window = system.awareness.create_window("P-X")
    flt = window.place(
        "Filter_context", "Ctx", field_name, instance_name=f"flt-{name}"
    )
    window.connect(window.source("ContextEvent"), flt, 0)
    window.output(flt, RoleRef("watchers"), schema_name=f"AS_{name}")
    return system.awareness.deploy(window)


class TestZeroCrossTalk:
    def test_two_fields_two_schemas_no_cross_talk(self):
        """Each deployed window recognizes exactly its own field's changes
        even though both windows hang off the same shared producer."""
        system, process = build_system()
        det_alpha = deploy_field_watcher(system, "alpha", "alpha")
        det_beta = deploy_field_watcher(system, "beta", "beta")

        ref = system.coordination.start_process(process).context("Ctx")
        for value in range(5):
            ref.set("alpha", value)
        ref.set("beta", 99)

        assert det_alpha.recognized == 5
        assert det_beta.recognized == 1

    def test_filters_only_visited_for_matching_key(self):
        """The index routes around non-matching filters entirely: the beta
        filter's consumed-event counter stays at exactly its own events,
        proving it was never dispatched alpha's changes."""
        system, process = build_system()
        deploy_field_watcher(system, "alpha", "alpha")
        det_beta = deploy_field_watcher(system, "beta", "beta")
        beta_filter = next(iter(det_beta.window.graph.operators()))

        ref = system.coordination.start_process(process).context("Ctx")
        for value in range(4):
            ref.set("alpha", value)
        ref.set("beta", 7)

        assert beta_filter.consumed == 1

    def test_activity_filters_keyed_by_schema_and_variable(self):
        """Activity filters route on (parentProcessSchemaId,
        activityVariableId); a filter for a different variable is never
        visited."""
        from repro.awareness.operators.filters import ActivityFilter

        flt_w = ActivityFilter("P-X", "w")
        flt_other = ActivityFilter("P-X", "other")
        assert flt_w.routing_keys(0) == [("P-X", "w")]
        assert flt_other.routing_keys(0) == [("P-X", "other")]

        system, process = build_system()
        producer = system.awareness.activity_source.producer
        producer.add_consumer(
            lambda event: flt_w.consume(0, event), keys=flt_w.routing_keys(0)
        )
        producer.add_consumer(
            lambda event: flt_other.consume(0, event),
            keys=flt_other.routing_keys(0),
        )
        system.coordination.start_process(process)

        assert flt_w.consumed >= 1  # "w" was started by the entry mark
        assert flt_other.consumed == 0


class TestWildcardSubscribers:
    def test_bus_wildcard_subscriber_sees_all_events(self):
        """A plain (unkeyed) bus subscription still observes the complete
        ``T_context`` stream regardless of how filters are keyed."""
        system, process = build_system()
        deploy_field_watcher(system, "alpha", "alpha")
        seen = []
        system.awareness.bus.subscribe("T_context", seen.append)

        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        ref.set("beta", 2)

        assert [e["fieldName"] for e in seen] == ["alpha", "beta"]

    def test_dynamic_predicate_operators_stay_wildcard(self):
        """Operators whose match predicate is runtime state (bound queries)
        report no static routing key, so the producer keeps them in the
        wildcard bucket and they see every event."""
        from repro.awareness.operators.filters import ExternalFilter

        flt = ExternalFilter("P-X", "NewsEvent")
        assert flt.routing_keys(0) is None


class TestUndeploy:
    def test_undeploy_removes_index_entries(self):
        system, process = build_system()
        producer = system.awareness.context_source.producer
        baseline_consumers = producer.consumer_count()
        baseline_keys = producer.indexed_key_count()

        detector = deploy_field_watcher(system, "alpha", "alpha")
        assert producer.consumer_count() == baseline_consumers + 1
        assert producer.indexed_key_count() == baseline_keys + 1

        system.awareness.undeploy(detector)
        assert producer.consumer_count() == baseline_consumers
        assert producer.indexed_key_count() == baseline_keys
        assert detector not in system.awareness.detectors()

    def test_no_ghost_deliveries_after_undeploy(self):
        """Events arriving after undeploy are not dispatched to the retired
        window's operators, while surviving windows keep working."""
        system, process = build_system()
        det_alpha = deploy_field_watcher(system, "alpha", "alpha")
        det_beta = deploy_field_watcher(system, "beta", "beta")

        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        assert det_alpha.recognized == 1

        system.awareness.undeploy(det_alpha)
        ref.set("alpha", 2)
        ref.set("beta", 3)

        assert det_alpha.recognized == 1  # frozen: no ghost deliveries
        assert det_beta.recognized == 1  # survivor unaffected

    def test_undeploy_is_idempotent(self):
        system, process = build_system()
        detector = deploy_field_watcher(system, "alpha", "alpha")
        system.awareness.undeploy(detector)
        system.awareness.undeploy(detector)  # second call is a no-op
        assert detector not in system.awareness.detectors()

    def test_redeploy_rewires_without_double_delivery(self):
        """deploy -> undeploy -> deploy restores exactly one leaf link and
        one detection listener: events flow again and are delivered once."""
        system, process = build_system()
        producer = system.awareness.context_source.producer
        window = system.awareness.create_window("P-X")
        flt = window.place("Filter_context", "Ctx", "alpha")
        window.connect(window.source("ContextEvent"), flt, 0)
        window.output(flt, RoleRef("watchers"), schema_name="AS_alpha")

        first = system.awareness.deploy(window)
        system.awareness.undeploy(first)
        before = producer.consumer_count()
        second = system.awareness.deploy(window)
        assert producer.consumer_count() == before + 1

        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        assert first.recognized == 0  # the retired agent stays silent
        assert second.recognized == 1
        participant = system.core.roles.participant("u-w")
        notifications = system.awareness.viewer_for(participant).retrieve()
        assert len(notifications) == 1  # delivered once, not once per deploy
