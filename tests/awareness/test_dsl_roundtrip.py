"""Tests for DSL decompilation (window -> text -> window)."""

import pytest

from repro.awareness.dsl import (
    compile_specification,
    window_to_dsl,
)
from repro.awareness.specification import SpecificationWindow
from repro.core.roles import RoleRef
from repro.errors import SpecificationError
from repro.events.producers import ActivityEventProducer, ContextEventProducer


def make_window(process_schema_id="P-IR"):
    return SpecificationWindow(
        process_schema_id,
        {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )


FULL_SPEC = """
op1 = Filter_context[TaskForceContext, TaskForceDeadline](ContextEvent)
op2 = Filter_context[InfoRequestContext, RequestDeadline](ContextEvent)
violation = Compare2[<=](op1, op2)
started = Filter_activity[gather, *, {Running}](ActivityEvent)
n = Count[](started)
third = Compare1[>=, 3](n)
either = Or[](violation, third)
deliver either to InfoRequestContext.Requestor using signed_on \\
    as "attention needed" named AS_Full
"""


class TestDecompile:
    def test_round_trip_is_stable(self):
        """compile -> decompile -> compile yields the same DSL text."""
        window_a = make_window()
        compile_specification(window_a, FULL_SPEC)
        text_a = window_to_dsl(window_a)

        window_b = make_window()
        compile_specification(window_b, text_a)
        text_b = window_to_dsl(window_b)
        assert text_a == text_b

    def test_recompiled_window_behaves_identically(self):
        window_a = make_window()
        compile_specification(window_a, FULL_SPEC)
        window_b = make_window()
        compile_specification(window_b, window_to_dsl(window_a))

        schema_a = window_a.schema("AS_Full")
        schema_b = window_b.schema("AS_Full")
        assert schema_a.delivery_role == schema_b.delivery_role
        assert schema_a.assignment_name == schema_b.assignment_name
        assert schema_a.description.depth() == schema_b.description.depth()
        assert len(window_a.operators()) == len(window_b.operators())

    def test_decompiled_text_mentions_every_family(self):
        window = make_window()
        compile_specification(window, FULL_SPEC)
        text = window_to_dsl(window)
        for family in ("Filter_context", "Filter_activity", "Compare2[<=]",
                       "Count[]", "Compare1[>=, 3]", "Or[]"):
            assert family in text

    def test_global_role_and_default_assignment_render_minimal(self):
        window = make_window()
        compile_specification(
            window,
            'a = Filter_context[C, f](ContextEvent)\n'
            'deliver a to analysts as "hi" named AS_A\n',
        )
        text = window_to_dsl(window)
        assert "deliver a to analysts" in text
        assert "using" not in text  # identity is the default

    def test_explicit_p_filter_renders_with_p(self):
        window = make_window("P-TF")
        compile_specification(
            window,
            "inner = Filter_context[P-IR, Ctx, f](ContextEvent)\n"
            "lifted = Translate[P-IR, invoke1](ActivityEvent, inner)\n"
            "deliver lifted to leader named AS_T\n",
        )
        text = window_to_dsl(window)
        assert "Filter_context[P-IR, Ctx, f]" in text
        assert "Translate[P-IR, invoke1]" in text
        # And it recompiles.
        window_b = make_window("P-TF")
        compile_specification(window_b, text)

    def test_hand_built_compare1_refuses_decompilation(self):
        window = make_window()
        flt = window.place("Filter_context", "C", "f")
        window.connect(window.source("ContextEvent"), flt, 0)
        odd = window.place("Compare1", lambda v: v % 7 == 0)
        window.connect(flt, odd, 0)
        window.output(odd, RoleRef("r"), schema_name="AS_X")
        with pytest.raises(SpecificationError, match="boolFunc1"):
            window_to_dsl(window)

    def test_and_seq_copy_round_trip(self):
        window = make_window()
        compile_specification(
            window,
            "a = Filter_context[C, f](ContextEvent)\n"
            "b = Filter_context[C, g](ContextEvent)\n"
            "x = And[2](a, b)\n"
            "y = Seq[1](a, b)\n"
            "z = Or[](x, y)\n"
            "deliver z to r named AS_Z\n",
        )
        text = window_to_dsl(window)
        assert "And[2]" in text
        assert "Seq[1]" in text
        window_b = make_window()
        compile_specification(window_b, text)
        operators = {o.instance_name: o for o in window_b.operators()}
        assert operators["x"].copy == 2
