"""Tests for the awareness delivery agent (Section 6.5)."""

import pytest

from repro.awareness.delivery import DeliveryAgent
from repro.awareness.operators.output import DELIVERY_EVENT_TYPE
from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    ContextSchema,
    CoreEngine,
    Participant,
    ProcessActivitySchema,
)
from repro.core.context import ContextFieldSpec
from repro.events.event import Event


def delivery_event(
    role="Requestor",
    context="Ctx",
    instance_id="proc-1",
    assignment="identity",
    time=9,
):
    return Event(
        DELIVERY_EVENT_TYPE,
        {
            "time": time,
            "source": "Output(AS_X)",
            "schemaName": "AS_X",
            "deliveryRole": role,
            "deliveryContext": context,
            "assignment": assignment,
            "processSchemaId": "P-X",
            "processInstanceId": instance_id,
            "userDescription": "something happened",
            "intInfo": 7,
            "strInfo": None,
            "sourceEvent": {"a": 1},
        },
    )


@pytest.fixture
def engine_with_scope():
    engine = CoreEngine()
    alice = engine.roles.register_participant(Participant("u1", "alice"))
    bob = engine.roles.register_participant(Participant("u2", "bob"))
    process = ProcessActivitySchema("P-X", "x")
    process.add_context_schema(
        ContextSchema("Ctx", [ContextFieldSpec("Requestor", "role")])
    )
    process.add_activity_variable(
        ActivityVariable("work", BasicActivitySchema("b-w", "work"))
    )
    process.mark_entry("work")
    engine.register_schema(process)
    instance = engine.create_process_instance(process)
    engine.create_scoped_role(instance.context("Ctx"), "Requestor", (alice,))
    return engine, instance, alice, bob


class TestScopedDelivery:
    def test_scoped_role_resolved_at_detection_time(self, engine_with_scope):
        engine, instance, alice, bob = engine_with_scope
        agent = DeliveryAgent(engine)
        notifications = agent.deliver(
            delivery_event(instance_id=instance.instance_id)
        )
        assert [n.participant_id for n in notifications] == ["u1"]
        assert agent.queue.pending_count("u1") == 1
        assert agent.queue.pending_count("u2") == 0
        assert agent.delivered == 1

    def test_notification_content(self, engine_with_scope):
        engine, instance, alice, bob = engine_with_scope
        agent = DeliveryAgent(engine)
        notification = agent.deliver(
            delivery_event(instance_id=instance.instance_id)
        )[0]
        assert notification.description == "something happened"
        assert notification.schema_name == "AS_X"
        assert notification.time == 9
        assert notification.parameters["intInfo"] == 7
        assert notification.parameters["sourceEvent"] == {"a": 1}

    def test_expired_role_makes_event_undeliverable(self, engine_with_scope):
        """Destroying the context ends the delivery interval (Section 1)."""
        engine, instance, alice, bob = engine_with_scope
        engine.destroy_context(instance.context("Ctx"))
        agent = DeliveryAgent(engine)
        assert agent.deliver(
            delivery_event(instance_id=instance.instance_id)
        ) == ()
        assert agent.delivered == 0
        assert len(agent.undeliverable) == 1
        record = agent.undeliverable[0]
        assert record.schema_name == "AS_X"
        assert record.role == "Ctx.Requestor"

    def test_unknown_instance_scope_undeliverable(self, engine_with_scope):
        engine, *_ = engine_with_scope
        agent = DeliveryAgent(engine)
        assert agent.deliver(delivery_event(instance_id="ghost")) == ()
        assert len(agent.undeliverable) == 1


class TestGlobalDelivery:
    def test_organizational_role_delivery(self, engine_with_scope):
        engine, instance, alice, bob = engine_with_scope
        engine.roles.define_role("managers").add_member(bob)
        agent = DeliveryAgent(engine)
        event = delivery_event(role="managers", context=None)
        notifications = agent.deliver(event)
        assert [n.participant_id for n in notifications] == ["u2"]


class TestAssignments:
    def test_signed_on_assignment_filters(self, engine_with_scope):
        engine, instance, alice, bob = engine_with_scope
        agent = DeliveryAgent(engine)
        event = delivery_event(
            instance_id=instance.instance_id, assignment="signed_on"
        )
        # alice is signed off: the role resolves but assignment selects nobody.
        assert agent.deliver(event) == ()
        alice.sign_on()
        assert len(agent.deliver(event)) == 1

    def test_unknown_assignment_raises(self, engine_with_scope):
        engine, instance, *_ = engine_with_scope
        agent = DeliveryAgent(engine)
        from repro.errors import DeliveryError

        with pytest.raises(DeliveryError):
            agent.deliver(
                delivery_event(
                    instance_id=instance.instance_id, assignment="mystery"
                )
            )

    def test_notification_ids_unique(self, engine_with_scope):
        engine, instance, *_ = engine_with_scope
        agent = DeliveryAgent(engine)
        a = agent.deliver(delivery_event(instance_id=instance.instance_id))
        b = agent.deliver(delivery_event(instance_id=instance.instance_id))
        assert a[0].notification_id != b[0].notification_id
