"""Tests for filtering operators (Section 5.1.3)."""

import pytest

from repro.awareness.operators import (
    ActivityFilter,
    ContextFilter,
    QueryCorrelationFilter,
)
from repro.errors import ParameterError
from repro.events.event import Event
from repro.events.external import NEWS_EVENT_TYPE
from repro.events.producers import ACTIVITY_EVENT_TYPE, CONTEXT_EVENT_TYPE


def activity_event(**overrides):
    params = dict(
        time=5,
        source="E_activity",
        activityInstanceId="act-1",
        parentProcessSchemaId="P-TF",
        parentProcessInstanceId="proc-1",
        user="alice",
        activityVariableId="assess",
        activityProcessSchemaId=None,
        oldState="Ready",
        newState="Running",
    )
    params.update(overrides)
    return Event(ACTIVITY_EVENT_TYPE, params)


def context_event(**overrides):
    params = dict(
        time=7,
        source="E_context",
        contextId="ctx-1",
        contextName="TaskForceContext",
        processAssociations=frozenset({("P-TF", "proc-1")}),
        fieldName="TaskForceDeadline",
        oldFieldValue=100,
        newFieldValue=50,
    )
    params.update(overrides)
    return Event(CONTEXT_EVENT_TYPE, params)


class TestActivityFilter:
    def test_matching_transition_passes(self):
        operator = ActivityFilter(
            "P-TF", "assess", {"Ready"}, {"Running"}
        )
        out = operator.consume(0, activity_event())
        assert len(out) == 1
        event = out[0]
        assert event.type_name == "C[P-TF]"
        assert event["processInstanceId"] == "proc-1"
        assert event["strInfo"] == "Running"
        assert event["sourceEvent"]["activityInstanceId"] == "act-1"

    def test_wrong_process_schema_ignored(self):
        operator = ActivityFilter("P-OTHER", "assess")
        assert operator.consume(0, activity_event()) == []

    def test_wrong_activity_variable_ignored(self):
        operator = ActivityFilter("P-TF", "other")
        assert operator.consume(0, activity_event()) == []

    def test_state_sets_filter(self):
        operator = ActivityFilter("P-TF", "assess", None, {"Completed"})
        assert operator.consume(0, activity_event()) == []
        assert (
            len(operator.consume(0, activity_event(newState="Completed"))) == 1
        )

    def test_old_state_set_filter(self):
        operator = ActivityFilter("P-TF", "assess", {"Suspended"}, None)
        assert operator.consume(0, activity_event()) == []

    def test_wildcards_pass_everything_for_the_variable(self):
        operator = ActivityFilter("P-TF", "assess")
        assert len(operator.consume(0, activity_event())) == 1

    def test_requires_activity_variable(self):
        with pytest.raises(ParameterError):
            ActivityFilter("P-TF", "")

    def test_describe_mentions_parameters(self):
        operator = ActivityFilter("P-TF", "assess", {"Ready"}, {"Running"})
        text = operator.describe()
        assert "Filter_activity" in text
        assert "assess" in text


class TestContextFilter:
    def test_matching_change_passes_with_int_info(self):
        operator = ContextFilter("P-TF", "TaskForceContext", "TaskForceDeadline")
        out = operator.consume(0, context_event())
        assert len(out) == 1
        assert out[0]["intInfo"] == 50
        assert out[0]["processInstanceId"] == "proc-1"

    def test_string_values_use_str_info(self):
        operator = ContextFilter("P-TF", "TaskForceContext", "Status")
        out = operator.consume(
            0, context_event(fieldName="Status", newFieldValue="urgent")
        )
        assert out[0]["strInfo"] == "urgent"
        assert out[0]["intInfo"] is None

    def test_bool_not_treated_as_int(self):
        operator = ContextFilter("P-TF", "TaskForceContext", "Flag")
        out = operator.consume(
            0, context_event(fieldName="Flag", newFieldValue=True)
        )
        assert out[0]["intInfo"] is None

    def test_fans_out_per_associated_instance_of_schema(self):
        """A context associated with several instances of P produces one
        canonical event per instance (Section 5.1.1 association set)."""
        operator = ContextFilter("P-IR", "TaskForceContext", "TaskForceDeadline")
        event = context_event(
            processAssociations=frozenset(
                {("P-IR", "proc-2"), ("P-IR", "proc-3"), ("P-TF", "proc-1")}
            )
        )
        out = operator.consume(0, event)
        instances = sorted(e["processInstanceId"] for e in out)
        assert instances == ["proc-2", "proc-3"]

    def test_wrong_context_name_ignored(self):
        operator = ContextFilter("P-TF", "OtherContext", "TaskForceDeadline")
        assert operator.consume(0, context_event()) == []

    def test_wrong_field_ignored(self):
        operator = ContextFilter("P-TF", "TaskForceContext", "Other")
        assert operator.consume(0, context_event()) == []

    def test_unassociated_schema_ignored(self):
        operator = ContextFilter("P-GHOST", "TaskForceContext", "TaskForceDeadline")
        assert operator.consume(0, context_event()) == []

    def test_requires_names(self):
        with pytest.raises(ParameterError):
            ContextFilter("P", "", "field")
        with pytest.raises(ParameterError):
            ContextFilter("P", "ctx", "")


class TestQueryCorrelationFilter:
    def news(self, query_id="query-1"):
        return Event(
            NEWS_EVENT_TYPE,
            {
                "time": 3,
                "source": "E_news",
                "queryId": query_id,
                "headline": "Outbreak update",
                "articleUrl": None,
                "relevance": None,
            },
        )

    def test_bound_query_relates_article_to_instance(self):
        operator = QueryCorrelationFilter("P-TF")
        operator.bind_query("query-1", "proc-9")
        out = operator.consume(0, self.news())
        assert len(out) == 1
        assert out[0]["processInstanceId"] == "proc-9"
        assert "Outbreak update" in out[0]["description"]

    def test_unbound_query_dropped(self):
        operator = QueryCorrelationFilter("P-TF")
        assert operator.consume(0, self.news("query-77")) == []
