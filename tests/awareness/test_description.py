"""Tests for awareness description DAGs (Section 5.1)."""

import pytest

from repro.awareness.description import AwarenessDescription, EventGraph
from repro.awareness.operators import And, ContextFilter, Count, Or
from repro.errors import DagValidationError, SlotError
from repro.events.producers import ContextEventProducer


def graph_with_filter():
    graph = EventGraph()
    producer = graph.add_producer(ContextEventProducer())
    flt = graph.add_operator(
        ContextFilter("P", "Ctx", "deadline", instance_name="flt")
    )
    graph.connect(producer, flt, 0)
    return graph, producer, flt


class TestGraphConstruction:
    def test_connect_type_checked(self):
        graph = EventGraph()
        producer = graph.add_producer(ContextEventProducer())
        conjunction = graph.add_operator(And("P"))
        with pytest.raises(SlotError):
            graph.connect(producer, conjunction, 0)  # T_context != C[P]

    def test_slot_cardinality_one_producer_per_slot(self):
        graph, producer, flt = graph_with_filter()
        conjunction = graph.add_operator(And("P"))
        graph.connect(flt, conjunction, 0)
        with pytest.raises(SlotError):
            graph.connect(flt, conjunction, 0)

    def test_unknown_nodes_rejected(self):
        graph = EventGraph()
        flt = ContextFilter("P", "Ctx", "f")
        other = And("P")
        graph.add_operator(other)
        with pytest.raises(DagValidationError):
            graph.connect(flt, other, 0)

    def test_cycle_rejected_at_connect(self):
        graph = EventGraph()
        a = graph.add_operator(Count("P", instance_name="a"))
        b = graph.add_operator(Count("P", instance_name="b"))
        graph.connect(a, b, 0)
        with pytest.raises(DagValidationError):
            graph.connect(b, a, 0)

    def test_duplicate_operator_rejected(self):
        graph = EventGraph()
        op = Count("P")
        graph.add_operator(op)
        with pytest.raises(DagValidationError):
            graph.add_operator(op)

    def test_roots_are_operators_without_outgoing_edges(self):
        graph, producer, flt = graph_with_filter()
        count = graph.add_operator(Count("P"))
        graph.connect(flt, count, 0)
        assert graph.roots() == (count,)


class TestDescription:
    def test_detection_stream_collects_root_outputs(self):
        graph, producer, flt = graph_with_filter()
        description = AwarenessDescription(graph, flt)
        description.validate()
        seen = []
        description.on_detected(seen.append)
        from repro.core.context import ContextChange

        producer.produce(
            ContextChange(
                time=1,
                context_id="c1",
                context_name="Ctx",
                associations=frozenset({("P", "i1")}),
                field_name="deadline",
                old_value=None,
                new_value=10,
            )
        )
        assert len(seen) == 1
        assert description.detected() == tuple(seen)

    def test_validate_requires_wired_slots(self):
        graph, producer, flt = graph_with_filter()
        conjunction = graph.add_operator(And("P"))
        graph.connect(flt, conjunction, 0)  # slot 1 left unwired
        description = AwarenessDescription(graph, conjunction)
        with pytest.raises(DagValidationError):
            description.validate()

    def test_validate_requires_primitive_leaves(self):
        graph = EventGraph()
        count = graph.add_operator(Count("P"))
        description = AwarenessDescription(graph, count)
        with pytest.raises(DagValidationError):
            description.validate()

    def test_depth_of_chain(self):
        graph, producer, flt = graph_with_filter()
        count = graph.add_operator(Count("P"))
        graph.connect(flt, count, 0)
        description = AwarenessDescription(graph, count)
        assert description.depth() == 2
        assert AwarenessDescription(graph, flt).depth() == 1

    def test_operators_and_producers_of_subgraph(self):
        graph, producer, flt = graph_with_filter()
        other = graph.add_operator(
            ContextFilter("P", "Ctx", "other", instance_name="other")
        )
        graph.connect(producer, other, 0)
        description = AwarenessDescription(graph, flt)
        assert set(description.operators()) == {flt}
        assert set(description.producers()) == {producer}

    def test_shared_nodes_between_descriptions(self):
        """Interior nodes may be shared amongst schemata (Section 6.2)."""
        graph, producer, flt = graph_with_filter()
        count_a = graph.add_operator(Count("P", instance_name="count-a"))
        count_b = graph.add_operator(Count("P", instance_name="count-b"))
        graph.connect(flt, count_a, 0)
        graph.connect(flt, count_b, 0)
        description_a = AwarenessDescription(graph, count_a)
        description_b = AwarenessDescription(graph, count_b)
        description_a.validate()
        description_b.validate()
        assert flt in description_a.operators()
        assert flt in description_b.operators()
