"""Tests for the awareness specification language (Section 5)."""

import pytest

from repro.awareness.dsl import compile_specification, tokenize
from repro.awareness.specification import SpecificationWindow
from repro.core.roles import RoleRef
from repro.errors import SpecificationError
from repro.events.producers import ActivityEventProducer, ContextEventProducer

SECTION_54_SPEC = """
# The Section 5.4 deadline-violation awareness schema.
op1 = Filter_context[TaskForceContext, TaskForceDeadline](ContextEvent)
op2 = Filter_context[InfoRequestContext, RequestDeadline](ContextEvent)
violation = Compare2[<=](op1, op2)
deliver violation to InfoRequestContext.Requestor using identity \\
    as "Task force deadline moved before your request deadline" \\
    named AS_InfoRequest
"""


def make_window(process_schema_id="P-InfoRequest"):
    return SpecificationWindow(
        process_schema_id,
        {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )


class TestTokenizer:
    def test_comments_stripped(self):
        tokens = tokenize("a = Count[](b)  # trailing comment\n# full line\n")
        assert all(t.value != "#" for t in tokens)

    def test_line_continuation_joins(self):
        tokens = tokenize("deliver x to r \\\n  using identity\n")
        values = [t.value for t in tokens if t.kind != "newline"]
        assert values == ["deliver", "x", "to", "r", "using", "identity"]

    def test_strings_and_comparisons(self):
        tokens = tokenize('x = Compare2[<=](a, b)\ny = Compare1[==, 1](x)\n')
        kinds = {t.value: t.kind for t in tokens}
        assert kinds["<="] == "comparison"
        assert kinds["=="] == "comparison"

    def test_unknown_character_rejected(self):
        with pytest.raises(SpecificationError):
            tokenize("a = b $ c\n")

    def test_line_numbers_reported(self):
        with pytest.raises(SpecificationError, match="line 3"):
            tokenize("a = Count[](x)\nb = Count[](a)\nc = %\n")


class TestSection54:
    def test_compiles_to_the_paper_schema(self):
        window = make_window()
        schemas = compile_specification(window, SECTION_54_SPEC)
        assert len(schemas) == 1
        schema = schemas[0]
        assert schema.name == "AS_InfoRequest"
        assert schema.delivery_role == RoleRef("Requestor", "InfoRequestContext")
        assert schema.assignment_name == "identity"
        assert schema.description.depth() == 3
        window.validate()

    def test_compiled_schema_detects(self):
        """Events pushed through the compiled DAG behave like the
        hand-built Section 5.4 schema."""
        window = make_window()
        compile_specification(window, SECTION_54_SPEC)
        schema = window.schema("AS_InfoRequest")
        detected = []
        schema.description.on_detected(detected.append)
        producer = window.source("ContextEvent")
        from repro.core.context import ContextChange

        def change(context_name, field, value, time):
            producer.produce(
                ContextChange(
                    time=time,
                    context_id=f"ctx-{context_name}",
                    context_name=context_name,
                    associations=frozenset({("P-InfoRequest", "ir-1")}),
                    field_name=field,
                    old_value=None,
                    new_value=value,
                )
            )

        change("InfoRequestContext", "RequestDeadline", 80, 1)
        change("TaskForceContext", "TaskForceDeadline", 100, 2)  # no violation
        assert detected == []
        change("TaskForceContext", "TaskForceDeadline", 50, 3)  # violation
        assert len(detected) == 1


class TestOperatorFamilies:
    def test_activity_filter_with_wildcards_and_state_sets(self):
        window = make_window()
        schemas = compile_specification(
            window,
            """
            done = Filter_activity[gather, *, {Completed, Terminated}](ActivityEvent)
            deliver done to Requestor
            """,
        )
        operator = window.schemas()[0].description.operators()
        flt = next(o for o in operator if o.family == "Filter_activity")
        assert flt.states_old is None
        assert flt.states_new == frozenset({"Completed", "Terminated"})

    def test_and_or_seq_count_compare1(self):
        window = make_window()
        compile_specification(
            window,
            """
            a = Filter_context[C, f1](ContextEvent)
            b = Filter_context[C, f2](ContextEvent)
            c = Filter_context[C, f3](ContextEvent)
            any = Or[](a, b, c)
            n = Count[](any)
            enough = Compare1[>=, 3](n)
            pair = And[2](enough, a)
            ordered = Seq[1](a, b)
            both = Or[](pair, ordered)
            deliver both to C.owner as "three changes seen"
            """,
        )
        window.validate()
        operators = {o.instance_name: o for o in window.operators()}
        assert operators["any"].arity == 3
        assert operators["pair"].copy == 2
        assert operators["ordered"].family == "Seq"

    def test_translate(self):
        window = make_window("P-TaskForce")
        compile_specification(
            window,
            """
            inner = Filter_context[P-InfoRequest, InfoRequestContext, RequestDeadline](ContextEvent)
            lifted = Translate[P-InfoRequest, inforequest1](ActivityEvent, inner)
            deliver lifted to leader
            """,
        )
        translate = next(
            o for o in window.operators() if o.family == "Translate"
        )
        assert translate.invoked_schema_id == "P-InfoRequest"
        assert translate.activity_variable == "inforequest1"

    def test_compare1_threshold_logic(self):
        window = make_window()
        compile_specification(
            window,
            """
            a = Filter_context[C, f](ContextEvent)
            n = Count[](a)
            third = Compare1[==, 3](n)
            deliver third to owner
            """,
        )
        operator = next(
            o for o in window.operators() if o.family == "Compare1"
        )
        assert operator.bool_func(3)
        assert not operator.bool_func(2)


class TestErrors:
    def test_missing_deliver_rejected(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="deliver"):
            compile_specification(
                window, "a = Filter_context[C, f](ContextEvent)\n"
            )

    def test_unknown_input(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="unknown input"):
            compile_specification(
                window, "a = Count[](ghost)\ndeliver a to r\n"
            )

    def test_forward_reference_rejected(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="unknown input"):
            compile_specification(
                window,
                "a = Count[](b)\nb = Filter_context[C, f](ContextEvent)\n"
                "deliver a to r\n",
            )

    def test_duplicate_name_rejected(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="already defined"):
            compile_specification(
                window,
                "a = Filter_context[C, f](ContextEvent)\n"
                "a = Count[](a)\ndeliver a to r\n",
            )

    def test_deliver_unknown_operator(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="unknown operator"):
            compile_specification(window, "deliver ghost to r\n")

    def test_wrong_parameter_count(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="Filter_context takes"):
            compile_specification(
                window, "a = Filter_context[C](ContextEvent)\ndeliver a to r\n"
            )

    def test_unknown_family(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="unknown operator family"):
            compile_specification(
                window, "a = Magic[](ContextEvent)\ndeliver a to r\n"
            )

    def test_bad_compare2_symbol(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="Compare2 takes"):
            compile_specification(
                window,
                "a = Filter_context[C, f](ContextEvent)\n"
                "b = Filter_context[C, g](ContextEvent)\n"
                "x = Compare2[almost](a, b)\ndeliver x to r\n",
            )

    def test_malformed_role(self):
        window = make_window()
        with pytest.raises(SpecificationError):
            compile_specification(
                window,
                "a = Filter_context[C, f](ContextEvent)\n"
                "deliver a to Ctx.\n",
            )

    def test_and_requires_two_inputs(self):
        window = make_window()
        with pytest.raises(SpecificationError, match="at least two"):
            compile_specification(
                window,
                "a = Filter_context[C, f](ContextEvent)\n"
                "x = And[](a)\ndeliver x to r\n",
            )


class TestEndToEndWithSystem:
    def test_dsl_deployed_on_live_system(self, system, alice, bob, epidemiologists):
        """Author AS_InfoRequest via the DSL instead of the builder API,
        then run the Section 5.4 scenario against it."""
        from repro.workloads.taskforce import TaskForceApplication

        app = TaskForceApplication(system)
        window = system.awareness.create_window(
            app.info_request_schema.schema_id
        )
        compile_specification(window, SECTION_54_SPEC)
        system.awareness.deploy(window)

        task_force = app.create_task_force(alice, [alice, bob], 100)
        app.request_information(task_force, bob, 80)
        app.change_task_force_deadline(task_force, 50)
        assert len(system.participant_client(bob).check_awareness()) == 1
        assert system.participant_client(alice).check_awareness() == ()
