"""Shared detector plans: interning, refcounts, and batch dispatch.

The plan cache must make N structurally-identical windows cost one shared
operator chain plus a per-window output layer — without changing what any
single window recognizes, and without leaking events into retired
windows.
"""

import pytest

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
)
from repro.awareness.dsl import compile_specification
from repro.awareness.operators.count import Count
from repro.events.canonical import canonical_event


def build_system(fields=("alpha", "beta"), share_plans=True):
    system = EnactmentSystem(share_plans=share_plans)
    watcher = system.register_participant(Participant("u-w", "watcher"))
    system.core.roles.define_role("watchers").add_member(watcher)
    process = ProcessActivitySchema("P-X", "watched")
    process.add_context_schema(
        ContextSchema("Ctx", [ContextFieldSpec(f, "int") for f in fields])
    )
    process.add_activity_variable(
        ActivityVariable("w", BasicActivitySchema("b-w", "w"))
    )
    process.mark_entry("w")
    system.core.register_schema(process)
    return system, process


TEMPLATE = """
hits = Filter_context[Ctx, alpha](ContextEvent)
total = Count[](hits)
ready = Compare1[>=, 2](total)
deliver ready to watchers as "alpha moved twice" named AS_T_{index}
"""


def deploy_template(system, index):
    window = system.awareness.create_window("P-X")
    compile_specification(window, TEMPLATE.format(index=index))
    return window, system.awareness.deploy(window)


class TestInterning:
    def test_identical_windows_share_every_non_output_node(self):
        system, __ = build_system()
        for index in range(4):
            deploy_template(system, index)
        stats = system.awareness.planner.stats()
        assert stats["windows_deployed"] == 4
        assert stats["nodes_live"] == 3  # hits, total, ready — shared
        assert stats["operators_resolved"] == 12
        assert stats["operators_deduped"] == 9

    def test_shared_chain_runs_once_and_fans_out(self):
        """Each event traverses the shared prefix once; every window's
        output operator still receives (and delivers) its own copy."""
        system, process = build_system()
        detectors = [deploy_template(system, i)[1] for i in range(4)]
        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        ref.set("alpha", 2)

        for detector in detectors:
            assert detector.recognized == 1  # Count reached 2 exactly once
        rows = {row["instance"]: row for row in system.awareness.planner.describe()}
        assert rows["hits"]["consumed"] == 2  # not 2 * windows
        assert rows["ready"]["consumers"] == 4  # per-window Output fan-out

    def test_different_parameters_do_not_share(self):
        system, __ = build_system()
        window_a = system.awareness.create_window("P-X")
        compile_specification(
            window_a,
            "f = Filter_context[Ctx, alpha](ContextEvent)\n"
            'deliver f to watchers as "a" named AS_A\n',
        )
        window_b = system.awareness.create_window("P-X")
        compile_specification(
            window_b,
            "f = Filter_context[Ctx, beta](ContextEvent)\n"
            'deliver f to watchers as "b" named AS_B\n',
        )
        system.awareness.deploy(window_a)
        system.awareness.deploy(window_b)
        assert system.awareness.planner.stats()["nodes_live"] == 2

    def test_different_instance_names_do_not_share(self):
        """The instance name is part of the structural key: provenance
        chains must read identically with and without sharing."""
        system, __ = build_system()
        for name in ("f1", "f2"):
            window = system.awareness.create_window("P-X")
            compile_specification(
                window,
                f"{name} = Filter_context[Ctx, alpha](ContextEvent)\n"
                f'deliver {name} to watchers as "x" named AS_{name}\n',
            )
            system.awareness.deploy(window)
        assert system.awareness.planner.stats()["operators_deduped"] == 0

    def test_or_is_commutative_in_the_plan_key(self):
        system, __ = build_system()
        for inputs in ("fa, fb", "fb, fa"):
            window = system.awareness.create_window("P-X")
            compile_specification(
                window,
                "fa = Filter_context[Ctx, alpha](ContextEvent)\n"
                "fb = Filter_context[Ctx, beta](ContextEvent)\n"
                f"any = Or[]({inputs})\n"
                'deliver any to watchers as "either" named AS_O\n',
            )
            system.awareness.deploy(window)
        # fa, fb, and the mirrored Or all intern to one node each.
        assert system.awareness.planner.stats()["nodes_live"] == 3

    def test_and_is_not_commutative_in_the_plan_key(self):
        """And's copy parameter is slot-positional, so mirrored wirings
        must stay separate nodes."""
        system, __ = build_system()
        for inputs in ("fa, fb", "fb, fa"):
            window = system.awareness.create_window("P-X")
            compile_specification(
                window,
                "fa = Filter_context[Ctx, alpha](ContextEvent)\n"
                "fb = Filter_context[Ctx, beta](ContextEvent)\n"
                f"both = And[]({inputs})\n"
                'deliver both to watchers as "both" named AS_A2\n',
            )
            system.awareness.deploy(window)
        assert system.awareness.planner.stats()["nodes_live"] == 4  # fa, fb, 2x And


class TestLifecycle:
    def test_undeploy_keeps_shared_nodes_while_referenced(self):
        system, process = build_system()
        __, det_a = deploy_template(system, 0)
        __, det_b = deploy_template(system, 1)
        system.awareness.undeploy(det_a)

        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        ref.set("alpha", 2)
        assert det_b.recognized == 1
        assert det_a.recognized == 0
        assert system.awareness.planner.stats()["nodes_live"] == 3

    def test_undeploying_the_last_window_unwires_the_producers(self):
        system, __ = build_system()
        producer = system.awareness.context_source.producer
        baseline = producer.consumer_count()
        __, det_a = deploy_template(system, 0)
        __, det_b = deploy_template(system, 1)
        system.awareness.undeploy(det_a)
        assert producer.consumer_count() > baseline
        system.awareness.undeploy(det_b)
        assert producer.consumer_count() == baseline
        assert system.awareness.planner.stats()["nodes_live"] == 0

    def test_redeploy_after_undeploy_recognizes_again(self):
        system, process = build_system()
        window, detector = deploy_template(system, 0)
        system.awareness.undeploy(detector)
        redeployed = system.awareness.deploy(window)
        assert redeployed is not detector

        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        ref.set("alpha", 2)
        assert redeployed.recognized == 1
        assert detector.recognized == 0

    def test_deploy_is_idempotent_for_a_live_window(self):
        system, process = build_system()
        window, detector = deploy_template(system, 0)
        again = system.awareness.deploy(window)
        assert again is detector

        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        ref.set("alpha", 2)
        assert detector.recognized == 1  # no double wiring, no double count

    def test_deploy_is_idempotent_without_sharing_too(self):
        system, process = build_system(share_plans=False)
        window = system.awareness.create_window("P-X")
        compile_specification(window, TEMPLATE.format(index=0))
        detector = system.awareness.deploy(window)
        assert system.awareness.deploy(window) is detector

        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        ref.set("alpha", 2)
        assert detector.recognized == 1

    def test_composites_recognized_is_monotonic_across_undeploy(self):
        system, process = build_system()
        __, detector = deploy_template(system, 0)
        ref = system.coordination.start_process(process).context("Ctx")
        ref.set("alpha", 1)
        ref.set("alpha", 2)
        before = system.awareness.stats()["composites_recognized"]
        assert before == 1
        system.awareness.undeploy(detector)
        assert system.awareness.stats()["composites_recognized"] == before
        system.awareness.undeploy(detector)  # idempotent: no double fold
        assert system.awareness.stats()["composites_recognized"] == before


class TestBatchPath:
    def _events(self, count, instance="i-1"):
        return [
            canonical_event(
                "P-X", instance, time=t, source="test", int_info=t
            )
            for t in range(count)
        ]

    def test_consume_batch_equals_per_event_consume(self):
        batched, unbatched = Count("P-X", "c"), Count("P-X", "c")
        out_batch = batched.consume_batch(0, self._events(5))
        out_single = []
        for event in self._events(5):
            out_single.extend(unbatched.consume(0, event))
        assert [e.get("intInfo") for e in out_batch] == [1, 2, 3, 4, 5]
        assert [e.params for e in out_batch] == [e.params for e in out_single]
        assert batched.consumed == unbatched.consumed == 5
        assert batched.produced == unbatched.produced == 5

    def test_consume_batch_forwards_downstream_as_batch(self):
        upstream, downstream = Count("P-X"), Count("P-X")
        upstream.add_consumer(downstream.consume, 0)
        upstream.consume_batch(0, self._events(3))
        assert downstream.consumed == 3
        assert downstream.current_count("i-1") == 3

    def test_consume_batch_type_checks_like_consume(self):
        from repro.errors import SlotError

        operator = Count("P-X")
        wrong = canonical_event("P-Y", "i-1", time=0, source="test")
        with pytest.raises(SlotError):
            operator.consume_batch(0, [wrong])

    def test_producer_batch_runs_reach_shared_chain_once(self):
        """A same-key run in a produced batch enters the shared chain as
        one consume_batch call; recognition output is unchanged."""
        from repro.core.context import ContextChange

        system, process = build_system()
        __, detector = deploy_template(system, 0)
        instance = system.coordination.start_process(process)
        ref = instance.context("Ctx")
        changes = [
            ContextChange(
                time=v,
                context_id=ref.context_id,
                context_name="Ctx",
                associations=frozenset({("P-X", instance.instance_id)}),
                field_name="alpha",
                old_value=v,
                new_value=v + 1,
            )
            for v in range(3)
        ]
        system.awareness.context_source.gather_batch(changes)
        hits = next(
            row
            for row in system.awareness.planner.describe()
            if row["instance"] == "hits"
        )
        assert hits["consumed"] == 3
        assert detector.recognized == 2  # counts 2 and 3 pass the >= gate
