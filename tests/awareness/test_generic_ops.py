"""Tests for And/Seq/Or semantics, including property-based interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awareness.operators import And, Or, Seq
from repro.events.canonical import canonical_event


def cp(instance="i1", time=1, int_info=None, str_info=None):
    return canonical_event(
        "P", instance, time=time, source="test",
        int_info=int_info, str_info=str_info,
    )


class TestAnd:
    def test_fires_only_when_all_slots_seen(self):
        operator = And("P", arity=3)
        assert operator.consume(0, cp(time=1)) == []
        assert operator.consume(2, cp(time=2)) == []
        out = operator.consume(1, cp(time=3))
        assert len(out) == 1

    def test_order_does_not_matter(self):
        operator = And("P")
        operator.consume(1, cp(time=1))
        assert len(operator.consume(0, cp(time=2))) == 1

    def test_copy_selects_template_event(self):
        operator = And("P", copy=2)
        operator.consume(0, cp(time=1, int_info=10))
        out = operator.consume(1, cp(time=2, int_info=20))
        assert out[0]["intInfo"] == 20

    def test_output_time_is_completion_time(self):
        operator = And("P", copy=1)
        operator.consume(0, cp(time=1, int_info=10))
        out = operator.consume(1, cp(time=9, int_info=20))
        # Parameters from slot 0's event, except time (the completing event).
        assert out[0]["intInfo"] == 10
        assert out[0].time == 9

    def test_constituents_consumed_on_emission(self):
        operator = And("P")
        operator.consume(0, cp(time=1))
        operator.consume(1, cp(time=2))
        # Pattern consumed; a single new event does not fire again.
        assert operator.consume(0, cp(time=3)) == []
        assert len(operator.consume(1, cp(time=4))) == 1

    def test_latest_event_per_slot_wins(self):
        operator = And("P", copy=1)
        operator.consume(0, cp(time=1, int_info=1))
        operator.consume(0, cp(time=2, int_info=2))
        out = operator.consume(1, cp(time=3))
        assert out[0]["intInfo"] == 2


class TestSeq:
    def test_fires_in_slot_order_only(self):
        operator = Seq("P", arity=3)
        assert operator.consume(0, cp(time=1)) == []
        assert operator.consume(1, cp(time=2)) == []
        assert len(operator.consume(2, cp(time=3))) == 1

    def test_out_of_order_events_ignored(self):
        operator = Seq("P")
        assert operator.consume(1, cp(time=1)) == []  # too early: ignored
        assert operator.consume(0, cp(time=2)) == []
        # Slot 1 must arrive again after slot 0.
        assert len(operator.consume(1, cp(time=3))) == 1

    def test_copy_parameter(self):
        operator = Seq("P", copy=1)
        operator.consume(0, cp(time=1, str_info="first"))
        out = operator.consume(1, cp(time=2, str_info="second"))
        assert out[0]["strInfo"] == "first"
        assert out[0].time == 2

    def test_resets_after_emission(self):
        operator = Seq("P")
        operator.consume(0, cp(time=1))
        operator.consume(1, cp(time=2))
        assert operator.consume(1, cp(time=3)) == []
        operator.consume(0, cp(time=4))
        assert len(operator.consume(1, cp(time=5))) == 1


class TestOr:
    def test_echoes_every_input(self):
        operator = Or("P", arity=3)
        for slot in range(3):
            out = operator.consume(slot, cp(time=slot + 1))
            assert len(out) == 1

    def test_output_carries_input_parameters(self):
        operator = Or("P")
        out = operator.consume(1, cp(time=4, int_info=7))
        assert out[0]["intInfo"] == 7
        assert out[0].time == 4
        assert out[0]["source"] == operator.instance_name


@st.composite
def interleavings(draw):
    """Random per-instance event interleavings over 2 slots."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["i1", "i2", "i3"]),
                st.integers(min_value=0, max_value=1),
            ),
            max_size=40,
        )
    )


class TestOperatorProperties:
    @given(stream=interleavings())
    @settings(max_examples=150)
    def test_and_emission_count_matches_reference_model(self, stream):
        """And fires exactly min-ish pairing per instance: the number of
        times both slots are covered, consuming constituents on emission."""
        operator = And("P")
        fired = {}
        reference_state = {}
        expected = {}
        time = 0
        for instance, slot in stream:
            time += 1
            out = operator.consume(slot, cp(instance, time=time))
            fired[instance] = fired.get(instance, 0) + len(out)
            slots = reference_state.setdefault(instance, set())
            slots.add(slot)
            if slots == {0, 1}:
                expected[instance] = expected.get(instance, 0) + 1
                slots.clear()
        for instance in set(list(fired) + list(expected)):
            assert fired.get(instance, 0) == expected.get(instance, 0)

    @given(stream=interleavings())
    @settings(max_examples=150)
    def test_or_echo_count_equals_input_count(self, stream):
        operator = Or("P")
        total_out = 0
        time = 0
        for instance, slot in stream:
            time += 1
            total_out += len(operator.consume(slot, cp(instance, time=time)))
        assert total_out == len(stream)

    @given(stream=interleavings())
    @settings(max_examples=150)
    def test_seq_emission_matches_reference_model(self, stream):
        """Seq fires exactly per the pointer model: an event only counts
        when it arrives on the next expected slot; completion resets."""
        operator = Seq("P")
        fired = {}
        pointers = {}
        expected = {}
        time = 0
        for instance, slot in stream:
            time += 1
            out = operator.consume(slot, cp(instance, time=time))
            fired[instance] = fired.get(instance, 0) + len(out)
            pointer = pointers.get(instance, 0)
            if slot == pointer:
                pointer += 1
                if pointer == 2:
                    expected[instance] = expected.get(instance, 0) + 1
                    pointer = 0
                pointers[instance] = pointer
        for instance in set(list(fired) + list(expected)):
            assert fired.get(instance, 0) == expected.get(instance, 0)

    @given(stream=interleavings())
    @settings(max_examples=150)
    def test_seq_never_fires_more_often_than_and_could(self, stream):
        """Sequences are strictly harder to satisfy than conjunctions."""
        seq_op = Seq("P")
        and_op = And("P")
        seq_fired = and_fired = 0
        time = 0
        for instance, slot in stream:
            time += 1
            seq_fired += len(seq_op.consume(slot, cp(instance, time=time)))
            and_fired += len(and_op.consume(slot, cp(instance, time=time)))
        assert seq_fired <= and_fired

    @given(stream=interleavings())
    @settings(max_examples=150)
    def test_outputs_never_cross_instances(self, stream):
        """Every composite's processInstanceId matches a constituent's."""
        operator = And("P")
        time = 0
        for instance, slot in stream:
            time += 1
            for out in operator.consume(slot, cp(instance, time=time)):
                assert out["processInstanceId"] == instance
