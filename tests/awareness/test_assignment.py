"""Tests for awareness role assignment functions (Section 5.3)."""

import pytest

from repro.awareness.assignment import (
    AssignmentRegistry,
    identity_assignment,
    least_loaded_assignment,
    signed_on_assignment,
)
from repro.core.roles import Participant
from repro.errors import DeliveryError


def members():
    alice = Participant("u1", "alice", signed_on=True, load=2)
    bob = Participant("u2", "bob", signed_on=False, load=0)
    carol = Participant("u3", "carol", signed_on=True, load=1)
    return frozenset({alice, bob, carol}), alice, bob, carol


class TestIdentity:
    def test_all_members_receive(self):
        group, *_ = members()
        assert identity_assignment(group) == group

    def test_empty_set(self):
        assert identity_assignment(frozenset()) == frozenset()


class TestSignedOn:
    def test_filters_out_signed_off(self):
        group, alice, bob, carol = members()
        assert signed_on_assignment(group) == frozenset({alice, carol})


class TestLeastLoaded:
    def test_selects_n_least_loaded(self):
        group, alice, bob, carol = members()
        assert least_loaded_assignment(1)(group) == frozenset({bob})
        assert least_loaded_assignment(2)(group) == frozenset({bob, carol})

    def test_deterministic_tie_break_by_id(self):
        a = Participant("u1", "a", load=0)
        b = Participant("u2", "b", load=0)
        assert least_loaded_assignment(1)(frozenset({a, b})) == frozenset({a})

    def test_n_must_be_positive(self):
        with pytest.raises(DeliveryError):
            least_loaded_assignment(0)


class TestRegistry:
    def test_builtins_registered(self):
        registry = AssignmentRegistry()
        assert set(registry.names()) >= {"identity", "signed_on", "least_loaded"}
        group, *_ = members()
        assert registry.lookup("identity")(group) == group

    def test_unknown_assignment(self):
        with pytest.raises(DeliveryError):
            AssignmentRegistry().lookup("by-horoscope")

    def test_duplicate_registration_rejected(self):
        registry = AssignmentRegistry()
        with pytest.raises(DeliveryError):
            registry.register("identity", identity_assignment)

    def test_custom_registration(self):
        registry = AssignmentRegistry()
        registry.register("nobody", lambda members: frozenset())
        group, *_ = members()
        assert registry.lookup("nobody")(group) == frozenset()
