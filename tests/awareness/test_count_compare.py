"""Tests for Count, Compare1, and Compare2 (Section 5.1.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awareness.operators import Compare1, Compare2, Count
from repro.awareness.operators.compare import (
    NAMED_BOOL_FUNCS_2,
    named_bool_func_2,
)
from repro.errors import ParameterError
from repro.events.canonical import canonical_event


def cp(instance="i1", time=1, int_info=None):
    return canonical_event(
        "P", instance, time=time, source="test", int_info=int_info
    )


class TestCount:
    def test_emits_running_count_per_instance(self):
        operator = Count("P")
        outs = [operator.consume(0, cp(time=t))[0]["intInfo"] for t in range(1, 4)]
        assert outs == [1, 2, 3]

    def test_description_mentions_count(self):
        operator = Count("P")
        out = operator.consume(0, cp())[0]
        assert out["description"] == "count=1"

    def test_count_with_compare1_fires_at_threshold(self):
        """The paper's suggested combination: Count -> Compare1."""
        count = Count("P")
        threshold = Compare1("P", lambda v: v >= 3)
        count.add_consumer(threshold.consume, 0)
        fired = []
        threshold.add_consumer(lambda s, e: fired.append(e), 0)
        for t in range(1, 6):
            count.consume(0, cp(time=t))
        assert [e["intInfo"] for e in fired] == [3, 4, 5]


class TestCompare1:
    def test_passes_only_satisfying_events(self):
        operator = Compare1("P", lambda v: v > 10)
        assert operator.consume(0, cp(int_info=5)) == []
        out = operator.consume(0, cp(int_info=15))
        assert len(out) == 1
        assert out[0]["intInfo"] == 15

    def test_events_without_int_info_ignored(self):
        operator = Compare1("P", lambda v: True)
        assert operator.consume(0, cp(int_info=None)) == []

    def test_requires_callable(self):
        with pytest.raises(ParameterError):
            Compare1("P", "not-callable")


class TestCompare2:
    def test_waits_for_both_positions(self):
        operator = Compare2("P", "<=")
        assert operator.consume(0, cp(int_info=50)) == []
        out = operator.consume(1, cp(int_info=80, time=2))
        assert len(out) == 1

    def test_latest_values_compared(self):
        operator = Compare2("P", "<=")
        operator.consume(0, cp(int_info=100, time=1))
        assert operator.consume(1, cp(int_info=80, time=2)) == []  # 100<=80 no
        out = operator.consume(0, cp(int_info=50, time=3))  # 50<=80 yes
        assert len(out) == 1

    def test_parameters_copied_from_latest_input_irrespective_of_position(self):
        operator = Compare2("P", "<=")
        operator.consume(0, cp(int_info=10, time=1))
        out = operator.consume(1, cp(int_info=90, time=2))
        # The latest input was position 1's event: its intInfo is copied.
        assert out[0]["intInfo"] == 90
        assert out[0].time == 2

    def test_named_functions(self):
        assert named_bool_func_2("<=")(3, 3)
        assert not named_bool_func_2("<")(3, 3)
        assert named_bool_func_2("!=")(1, 2)
        with pytest.raises(ParameterError):
            named_bool_func_2("<=>")

    def test_per_instance_isolation(self):
        operator = Compare2("P", "==")
        operator.consume(0, cp("i1", int_info=5, time=1))
        # i2's slot-1 event must not complete i1's pair.
        assert operator.consume(1, cp("i2", int_info=5, time=2)) == []
        out = operator.consume(1, cp("i1", int_info=5, time=3))
        assert len(out) == 1

    def test_describe_uses_symbol(self):
        operator = Compare2("P", "<=")
        assert "<=" in operator.describe()


class TestCompare2Properties:
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=150)
    def test_fires_exactly_when_latest_pair_satisfies(self, updates):
        operator = Compare2("P", "<=")
        latest = {}
        time = 0
        for slot, value in updates:
            time += 1
            out = operator.consume(0 if slot == 0 else 1, cp(int_info=value, time=time))
            latest[slot] = value
            should_fire = 0 in latest and 1 in latest and latest[0] <= latest[1]
            assert (len(out) == 1) == should_fire
