"""Tests for the specification window (Section 6.2, Figure 6)."""

import pytest

from repro.awareness.specification import SpecificationWindow
from repro.core.roles import RoleRef
from repro.errors import SpecificationError
from repro.events.producers import ActivityEventProducer, ContextEventProducer


def make_window():
    return SpecificationWindow(
        "P-IR",
        {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )


def author_deadline_schema(window):
    """The Section 5.4 awareness schema, authored in the three steps."""
    op1 = window.place("Filter_context", "TaskForceContext", "TaskForceDeadline")
    op2 = window.place("Filter_context", "InfoRequestContext", "RequestDeadline")
    compare = window.place("Compare2", "<=")
    window.connect(window.source("ContextEvent"), op1, 0)
    window.connect(window.source("ContextEvent"), op2, 0)
    window.connect(op1, compare, 0)
    window.connect(op2, compare, 1)
    return window.output(
        compare,
        RoleRef("Requestor", "InfoRequestContext"),
        "identity",
        "deadline violated",
        schema_name="AS_InfoRequest",
    )


class TestAuthoring:
    def test_three_step_authoring_produces_valid_schema(self):
        window = make_window()
        schema = author_deadline_schema(window)
        schema.validate()
        window.validate()
        assert schema.name == "AS_InfoRequest"
        assert schema.delivery_role == RoleRef("Requestor", "InfoRequestContext")
        assert schema.description.depth() == 3  # filter -> compare2 -> output

    def test_unknown_operator_family_rejected(self):
        window = make_window()
        with pytest.raises(SpecificationError):
            window.place("Magic")

    def test_unknown_source_rejected(self):
        window = make_window()
        with pytest.raises(SpecificationError):
            window.source("NewsEvent")

    def test_duplicate_schema_name_rejected(self):
        window = make_window()
        author_deadline_schema(window)
        op = window.place("Filter_context", "X", "y")
        window.connect(window.source("ContextEvent"), op, 0)
        with pytest.raises(SpecificationError):
            window.output(
                op, RoleRef("r"), schema_name="AS_InfoRequest"
            )

    def test_default_schema_names_are_sequential(self):
        window = make_window()
        op = window.place("Filter_context", "X", "y")
        window.connect(window.source("ContextEvent"), op, 0)
        schema = window.output(op, RoleRef("r"))
        assert schema.name == "AS_P-IR_1"

    def test_add_external_source(self):
        from repro.events.external import NewsServiceSource

        window = make_window()
        news = window.add_source("NewsEvent", NewsServiceSource())
        assert window.source("NewsEvent") is news
        with pytest.raises(SpecificationError):
            window.add_source("NewsEvent", NewsServiceSource())


class TestWindowValidation:
    def test_window_without_schemas_rejected(self):
        window = make_window()
        with pytest.raises(SpecificationError):
            window.validate()

    def test_dangling_operator_rejected(self):
        window = make_window()
        author_deadline_schema(window)
        window.place("Count")  # placed but never connected to a schema
        with pytest.raises(SpecificationError):
            window.validate()

    def test_multi_rooted_window_with_shared_leaves(self):
        """A window holds several schemas sharing the primitive diamonds
        (the Figure 6 situation)."""
        window = make_window()
        author_deadline_schema(window)
        other = window.place("Filter_activity", "gather", None, {"Completed"})
        window.connect(window.source("ActivityEvent"), other, 0)
        window.output(
            other, RoleRef("Requestor", "InfoRequestContext"),
            schema_name="AS_GatherDone",
        )
        window.validate()
        assert len(window.schemas()) == 2
        assert window.schema("AS_GatherDone").description.depth() == 2

    def test_schema_lookup_error(self):
        window = make_window()
        with pytest.raises(SpecificationError):
            window.schema("AS_Ghost")


class TestRendering:
    def test_render_lists_sources_operators_edges_and_schemas(self):
        window = make_window()
        author_deadline_schema(window)
        text = window.render()
        assert "<ContextEvent>" in text
        assert "Compare2" in text
        assert "--slot 0-->" in text
        assert "AS_InfoRequest" in text
        assert "InfoRequestContext.Requestor" in text
