"""Unit tests for detector agents and event source agents (§6.3, §6.4)."""

import pytest

from repro.awareness.detector import DetectorAgent
from repro.awareness.sources import ActivitySourceAgent, ContextSourceAgent
from repro.awareness.specification import SpecificationWindow
from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    CoreEngine,
    ContextSchema,
    ProcessActivitySchema,
)
from repro.core.context import ContextFieldSpec
from repro.core.roles import RoleRef
from repro.errors import SpecificationError
from repro.events.bus import EventBus
from repro.events.producers import ActivityEventProducer, ContextEventProducer


def window_with_schema(producers=None):
    window = SpecificationWindow(
        "P-X",
        producers
        or {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )
    flt = window.place("Filter_context", "Ctx", "deadline")
    window.connect(window.source("ContextEvent"), flt, 0)
    window.output(flt, RoleRef("watchers"), schema_name="AS_W")
    return window


class TestDetectorAgent:
    def test_validates_window_at_construction(self):
        window = SpecificationWindow(
            "P-X", {"ContextEvent": ContextEventProducer()}
        )
        with pytest.raises(SpecificationError):
            DetectorAgent(window)

    def test_forwards_recognized_events_to_all_sinks(self):
        window = window_with_schema()
        sink_a, sink_b = [], []
        detector = DetectorAgent(window, sink=sink_a.append)
        detector.add_sink(sink_b.append)

        from repro.core.context import ContextChange

        window.source("ContextEvent").produce(
            ContextChange(
                time=1,
                context_id="c1",
                context_name="Ctx",
                associations=frozenset({("P-X", "i1")}),
                field_name="deadline",
                old_value=None,
                new_value=5,
            )
        )
        assert detector.recognized == 1
        assert len(sink_a) == len(sink_b) == 1
        assert detector.recognized_events()[0]["schemaName"] == "AS_W"

    def test_bus_sink_publishes_delivery_events(self):
        window = window_with_schema()
        bus = EventBus()
        got = []
        bus.subscribe("T_delivery", got.append)
        DetectorAgent(window, bus=bus)

        from repro.core.context import ContextChange

        window.source("ContextEvent").produce(
            ContextChange(
                time=1,
                context_id="c1",
                context_name="Ctx",
                associations=frozenset({("P-X", "i1")}),
                field_name="deadline",
                old_value=None,
                new_value=5,
            )
        )
        assert len(got) == 1

    def test_schema_names_and_process(self):
        detector = DetectorAgent(window_with_schema())
        assert detector.schema_names() == ("AS_W",)
        assert detector.process_schema_id == "P-X"


class TestSourceAgents:
    def _engine_with_process(self):
        engine = CoreEngine()
        process = ProcessActivitySchema("P-X", "x")
        process.add_context_schema(
            ContextSchema("Ctx", [ContextFieldSpec("deadline", "int")])
        )
        process.add_activity_variable(
            ActivityVariable("w", BasicActivitySchema("b-w", "w"))
        )
        process.mark_entry("w")
        engine.register_schema(process)
        return engine, process

    def test_activity_agent_gathers_state_changes(self):
        engine, process = self._engine_with_process()
        agent = ActivitySourceAgent(engine)
        got = []
        agent.producer.add_consumer(got.append)
        instance = engine.create_process_instance(process)
        engine.change_state(instance, "Ready")
        assert agent.gathered == 1
        assert got[0]["newState"] == "Ready"

    def test_context_agent_gathers_field_changes(self):
        engine, process = self._engine_with_process()
        agent = ContextSourceAgent(engine)
        got = []
        agent.producer.add_consumer(got.append)
        instance = engine.create_process_instance(process)
        instance.context("Ctx").set("deadline", 9)
        assert agent.gathered == 1
        assert got[0]["newFieldValue"] == 9

    def test_agents_publish_on_bus_when_given(self):
        engine, process = self._engine_with_process()
        bus = EventBus()
        activity_events, context_events = [], []
        bus.subscribe("T_activity", activity_events.append)
        bus.subscribe("T_context", context_events.append)
        ActivitySourceAgent(engine, bus=bus)
        ContextSourceAgent(engine, bus=bus)
        instance = engine.create_process_instance(process)
        engine.change_state(instance, "Ready")
        instance.context("Ctx").set("deadline", 1)
        assert len(activity_events) == 1
        assert len(context_events) == 1


class TestCustomOperatorExtension:
    """AM is open: applications add their own operator families (§5.1)."""

    def test_register_and_use_custom_operator(self):
        from typing import List

        from repro.awareness.operators.base import (
            EventOperator,
            OperatorSignature,
        )
        from repro.awareness.operators.registry import default_registry
        from repro.events.canonical import canonical_type
        from repro.events.event import Event

        class EveryNth(EventOperator):
            """Pass every n-th event per process instance."""

            family = "EveryNth"

            def __init__(self, process_schema_id, n, instance_name=None):
                ctype = canonical_type(process_schema_id)
                super().__init__(
                    process_schema_id,
                    OperatorSignature((ctype,), ctype),
                    instance_name,
                )
                self.n = n

            def new_state(self):
                return {"seen": 0}

            def _apply(self, slot, event, state):
                state["seen"] += 1
                if state["seen"] % self.n == 0:
                    return [event.derive(source=self.instance_name)]
                return []

        registry = default_registry()
        registry.register("EveryNth", EveryNth)
        assert "EveryNth" in registry

        window = SpecificationWindow(
            "P-X",
            {"ContextEvent": ContextEventProducer()},
            registry=registry,
        )
        flt = window.place("Filter_context", "Ctx", "deadline")
        nth = window.place("EveryNth", 3)
        window.connect(window.source("ContextEvent"), flt, 0)
        window.connect(flt, nth, 0)
        schema = window.output(nth, RoleRef("watchers"), schema_name="AS_N")
        detected = []
        schema.description.on_detected(detected.append)

        from repro.core.context import ContextChange

        for tick in range(1, 10):
            window.source("ContextEvent").produce(
                ContextChange(
                    time=tick,
                    context_id="c1",
                    context_name="Ctx",
                    associations=frozenset({("P-X", "i1")}),
                    field_name="deadline",
                    old_value=None,
                    new_value=tick,
                )
            )
        assert len(detected) == 3  # ticks 3, 6, 9

    def test_duplicate_family_rejected(self):
        from repro.awareness.operators import Count
        from repro.awareness.operators.registry import default_registry

        registry = default_registry()
        with pytest.raises(SpecificationError):
            registry.register("Count", Count)

    def test_non_operator_class_rejected(self):
        from repro.awareness.operators.registry import OperatorRegistry

        with pytest.raises(SpecificationError):
            OperatorRegistry().register("Thing", object)  # type: ignore[arg-type]
