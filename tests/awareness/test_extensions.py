"""Tests for the Section 6.5 future-work extensions: aggregation,
priority, notification mechanisms, and follow-on actions."""

import pytest

from repro.awareness.extensions import (
    CallbackChannel,
    Digest,
    ExtendedDeliveryAgent,
    Priority,
    QueueChannel,
    RecordingChannel,
    aggregate_notifications,
    notification_priority,
)
from repro.awareness.operators.output import DELIVERY_EVENT_TYPE
from repro.core import (
    ActivityVariable,
    BasicActivitySchema,
    CoreEngine,
    Participant,
    ProcessActivitySchema,
)
from repro.errors import DeliveryError
from repro.events.event import Event
from repro.events.queues import Notification


def delivery_event(schema_name="AS_X", time=5, role="analysts"):
    return Event(
        DELIVERY_EVENT_TYPE,
        {
            "time": time,
            "source": "Output",
            "schemaName": schema_name,
            "deliveryRole": role,
            "deliveryContext": None,
            "assignment": "identity",
            "processSchemaId": "P",
            "processInstanceId": "proc-1",
            "userDescription": "something happened",
            "intInfo": None,
            "strInfo": None,
            "sourceEvent": None,
        },
    )


@pytest.fixture
def engine_and_agent():
    core = CoreEngine()
    alice = core.roles.register_participant(Participant("u1", "alice"))
    bob = core.roles.register_participant(Participant("u2", "bob"))
    role = core.roles.define_role("analysts")
    role.add_member(alice)
    role.add_member(bob)
    agent = ExtendedDeliveryAgent(core)
    return core, agent, alice, bob


def note(schema="AS_X", time=1, description="d", participant="u1"):
    return Notification(
        notification_id=f"n-{schema}-{time}",
        participant_id=participant,
        time=time,
        description=description,
        schema_name=schema,
        parameters={},
    )


class TestPriority:
    def test_priority_rides_on_notifications(self, engine_and_agent):
        core, agent, alice, bob = engine_and_agent
        agent.set_priority("AS_X", Priority.URGENT)
        notifications = agent.deliver(delivery_event())
        assert all(
            notification_priority(n) is Priority.URGENT for n in notifications
        )

    def test_default_priority_is_normal(self, engine_and_agent):
        core, agent, *_ = engine_and_agent
        notifications = agent.deliver(delivery_event())
        assert notification_priority(notifications[0]) is Priority.NORMAL

    def test_priority_ordering(self):
        assert Priority.URGENT > Priority.HIGH > Priority.NORMAL > Priority.LOW


class TestChannels:
    def test_queue_channel_is_default(self, engine_and_agent):
        core, agent, alice, bob = engine_and_agent
        agent.deliver(delivery_event())
        assert agent.queue.pending_count("u1") == 1
        assert agent.queue.pending_count("u2") == 1

    def test_gateway_channel_gated_by_priority(self, engine_and_agent):
        core, agent, alice, bob = engine_and_agent
        gateway = agent.add_channel(RecordingChannel(), Priority.HIGH)
        agent.set_priority("AS_URGENT", Priority.URGENT)
        agent.deliver(delivery_event("AS_X"))       # NORMAL: queue only
        agent.deliver(delivery_event("AS_URGENT"))  # URGENT: queue + gateway
        assert len(gateway.sent) == 2  # one per participant
        assert {pid for pid, __ in gateway.sent} == {"u1", "u2"}
        assert all(n.schema_name == "AS_URGENT" for __, n in gateway.sent)

    def test_callback_channel_pushes_to_signed_on_only(self, engine_and_agent):
        core, agent, alice, bob = engine_and_agent
        push = agent.add_channel(CallbackChannel())
        received = []
        push.register(alice, received.append)
        push.register(bob, received.append)
        alice.sign_on()  # bob stays signed off
        agent.deliver(delivery_event())
        assert len(received) == 1
        assert received[0].participant_id == "u1"
        # bob still has the durable copy in the queue.
        assert agent.queue.pending_count("u2") == 1

    def test_callback_unregister(self, engine_and_agent):
        core, agent, alice, bob = engine_and_agent
        push = agent.add_channel(CallbackChannel())
        received = []
        push.register(alice, received.append)
        push.unregister(alice)
        alice.sign_on()
        agent.deliver(delivery_event())
        assert received == []


class TestSuppression:
    def test_repeats_within_gap_suppressed(self, engine_and_agent):
        core, agent, *_ = engine_and_agent
        agent.set_suppression_gap(10)
        agent.deliver(delivery_event(time=1))
        agent.deliver(delivery_event(time=5))   # within the gap: suppressed
        agent.deliver(delivery_event(time=20))  # past the gap: delivered
        assert agent.queue.pending_count("u1") == 2
        assert agent.suppressed == 2  # one per participant at t=5

    def test_suppression_is_per_schema(self, engine_and_agent):
        core, agent, *_ = engine_and_agent
        agent.set_suppression_gap(10)
        agent.deliver(delivery_event("AS_A", time=1))
        agent.deliver(delivery_event("AS_B", time=2))
        assert agent.queue.pending_count("u1") == 2

    def test_zero_gap_disables(self, engine_and_agent):
        core, agent, *_ = engine_and_agent
        agent.deliver(delivery_event(time=1))
        agent.deliver(delivery_event(time=1))
        assert agent.queue.pending_count("u1") == 2

    def test_negative_gap_rejected(self, engine_and_agent):
        core, agent, *_ = engine_and_agent
        with pytest.raises(DeliveryError):
            agent.set_suppression_gap(-1)


class TestFollowOnActions:
    def test_action_runs_with_event_and_receivers(self, engine_and_agent):
        core, agent, alice, bob = engine_and_agent
        runs = []
        agent.add_follow_on("AS_X", lambda event, receivers: runs.append(
            (event["schemaName"], {p.participant_id for p in receivers})
        ))
        agent.deliver(delivery_event())
        assert runs == [("AS_X", {"u1", "u2"})]
        assert agent.follow_ons_run == 1

    def test_action_not_run_for_other_schemas(self, engine_and_agent):
        core, agent, *_ = engine_and_agent
        runs = []
        agent.add_follow_on("AS_OTHER", lambda e, r: runs.append(1))
        agent.deliver(delivery_event("AS_X"))
        assert runs == []

    def test_follow_on_cancels_obsolete_lab_tests(self, system, epidemiologists, alice):
        """The crisis-domain motivating case: when a positive lab result is
        delivered, a follow-on action terminates the remaining lab tests."""
        from repro.awareness.extensions import ExtendedDeliveryAgent
        from repro.workloads.epidemic import build_epidemic_application

        for role_name in ("media-officer", "lab-technician", "external-expert"):
            system.core.roles.define_role(role_name).add_member(alice)

        # Rewire the system's awareness engine onto an extended agent.
        agent = ExtendedDeliveryAgent(system.core, queue=system.awareness.delivery.queue)
        system.awareness.delivery = agent
        app = build_epidemic_application(system)
        app.install_awareness()  # deploys against the extended agent

        process = app.start("region-1", (alice,))
        system.coordination.start_optional_activity(process, "labtest1")
        system.coordination.start_optional_activity(process, "labtest2")

        cancelled = []

        def cancel_remaining(event, receivers):
            for name, child in process.children.items():
                if name.startswith("labtest") and not child.is_closed():
                    system.coordination.terminate_activity(child)
                    cancelled.append(name)

        agent.add_follow_on("AS_PositiveLab", cancel_remaining)
        ref = process.context("CrisisContext")
        ref.set("LabResult1", 1)  # positive!
        assert "labtest1" in cancelled and "labtest2" in cancelled
        assert process.child("labtest2").current_state == "Terminated"


class TestAggregation:
    def test_bursts_collapse_per_schema(self):
        notifications = [
            note("AS_A", 1),
            note("AS_A", 3),
            note("AS_A", 5),
            note("AS_B", 4),
            note("AS_A", 50),
        ]
        digests = aggregate_notifications(notifications, gap=10)
        by_schema = {}
        for digest in digests:
            by_schema.setdefault(digest.schema_name, []).append(digest)
        assert len(by_schema["AS_A"]) == 2  # burst at 1..5, singleton at 50
        burst = by_schema["AS_A"][0]
        assert burst.count == 3
        assert burst.first_time == 1 and burst.last_time == 5
        assert by_schema["AS_B"][0].count == 1

    def test_render(self):
        digest = Digest("AS_A", 3, 1, 5, "deadline moved")
        assert "3x AS_A" in digest.render()
        single = Digest("AS_A", 1, 7, 7, "deadline moved")
        assert single.render() == "[t=7] deadline moved"

    def test_sorted_by_time(self):
        notifications = [note("AS_B", 9), note("AS_A", 2)]
        digests = aggregate_notifications(notifications)
        assert [d.schema_name for d in digests] == ["AS_A", "AS_B"]

    def test_empty_input(self):
        assert aggregate_notifications([]) == ()

    def test_negative_gap_rejected(self):
        with pytest.raises(DeliveryError):
            aggregate_notifications([note()], gap=-1)

    def test_gap_zero_merges_simultaneous_only(self):
        notifications = [note("AS_A", 1), note("AS_A", 1), note("AS_A", 2)]
        digests = aggregate_notifications(notifications, gap=0)
        assert [d.count for d in digests] == [2, 1]
