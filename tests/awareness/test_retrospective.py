"""Tests for retrospective awareness (replay over the audit trail)."""

import pytest

from repro.awareness.retrospective import retrospect
from repro.core.roles import RoleRef
from repro.errors import SpecificationError

SECTION_54_SPEC = """
op1 = Filter_context[TaskForceContext, TaskForceDeadline](ContextEvent)
op2 = Filter_context[InfoRequestContext, RequestDeadline](ContextEvent)
violation = Compare2[<=](op1, op2)
deliver violation to InfoRequestContext.Requestor \\
    as "deadline violated" named AS_Retro
"""


@pytest.fixture
def history(system, alice, bob, epidemiologists):
    """A run WITHOUT any deployed awareness: only the audit trail exists."""
    from repro.workloads.taskforce import TaskForceApplication

    app = TaskForceApplication(system)
    task_force = app.create_task_force(alice, [alice, bob], 100)
    request = app.request_information(task_force, bob, 80)
    app.change_task_force_deadline(task_force, 90)   # harmless
    app.change_task_force_deadline(task_force, 50)   # violation!
    app.change_task_force_deadline(task_force, 40)   # violation again
    app.complete_request(request)
    return system, app


class TestRetrospect:
    def test_detects_past_violations_from_the_audit_trail(self, history):
        system, app = history
        result = retrospect(
            app.info_request_schema.schema_id,
            SECTION_54_SPEC,
            system.monitor,
        )
        assert len(result) == 2  # the two violating moves
        notified = result.would_have_notified()
        assert all(schema == "AS_Retro" for __, schema, ___ in notified)
        assert all(
            role == "InfoRequestContext.Requestor" for __, ___, role in notified
        )
        times = [time for time, __, ___ in notified]
        assert times == sorted(times)

    def test_nothing_is_delivered_to_live_queues(self, history):
        system, app = history
        retrospect(
            app.info_request_schema.schema_id,
            SECTION_54_SPEC,
            system.monitor,
        )
        assert system.awareness.delivery.delivered == 0
        assert system.awareness.delivery.queue.pending_count() == 0

    def test_builder_callable_form(self, history):
        system, app = history

        def build(window):
            op1 = window.place(
                "Filter_context", "TaskForceContext", "TaskForceDeadline"
            )
            op2 = window.place(
                "Filter_context", "InfoRequestContext", "RequestDeadline"
            )
            compare = window.place("Compare2", "<=")
            window.connect(window.source("ContextEvent"), op1, 0)
            window.connect(window.source("ContextEvent"), op2, 0)
            window.connect(op1, compare, 0)
            window.connect(op2, compare, 1)
            window.output(
                compare,
                RoleRef("Requestor", "InfoRequestContext"),
                schema_name="AS_Built",
            )

        result = retrospect(
            app.info_request_schema.schema_id, build, system.monitor
        )
        assert len(result) == 2

    def test_render(self, history):
        system, app = history
        result = retrospect(
            app.info_request_schema.schema_id,
            SECTION_54_SPEC,
            system.monitor,
        )
        text = result.render()
        assert "retrospective detections: 2" in text
        assert "AS_Retro -> InfoRequestContext.Requestor" in text

    def test_activity_based_retrospection(self, history):
        system, app = history
        spec = (
            "done = Filter_activity[gather, *, {Completed}](ActivityEvent)\n"
            'deliver done to InfoRequestContext.Requestor as "gathered" '
            "named AS_G\n"
        )
        result = retrospect(
            app.info_request_schema.schema_id, spec, system.monitor
        )
        assert len(result) == 1  # complete_request finished the gather step

    def test_invalid_spec_rejected(self, history):
        system, app = history
        with pytest.raises(SpecificationError):
            retrospect(
                app.info_request_schema.schema_id,
                "x = Magic[](ContextEvent)\ndeliver x to r\n",
                system.monitor,
            )

    def test_replay_is_repeatable(self, history):
        system, app = history
        first = retrospect(
            app.info_request_schema.schema_id, SECTION_54_SPEC, system.monitor
        )
        second = retrospect(
            app.info_request_schema.schema_id, SECTION_54_SPEC, system.monitor
        )
        assert first.would_have_notified() == second.would_have_notified()
