"""Plan sharing is behavior-invisible: differential equivalence suite.

Every test here drives the same workload through two engines — one with
``share_plans=True`` (the default), one with ``share_plans=False`` (each
window keeps its private operator chain) — and asserts the observable
outputs are identical: which participants were notified, in what order,
with what descriptions and parameters, and with byte-equal recognition
provenance chains.  Sharing must be a pure cost optimization.

Provenance chains are compared via ``signature()`` (id-free): a sharing
engine mints one canonical event where an unshared engine mints one per
window, so the allocation-order event ids legitimately differ while the
chain structure must not.
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
)
from repro.awareness.dsl import compile_specification
from repro.observability import instrumented
from repro.workloads.epidemic import EpidemicScenario
from repro.workloads.taskforce import TaskForceApplication


def note_sig(notification):
    """Id-free identity of one queued notification.

    The raw ``provenance`` parameter holds ProvenanceNode objects whose
    event ids are allocation-order (legitimately different between the
    two engines); chains are compared separately via ``signature()``.
    """
    parameters = {
        key: value
        for key, value in notification.parameters.items()
        if key != "provenance"
    }
    return (
        notification.participant_id,
        notification.time,
        notification.description,
        notification.schema_name,
        parameters,
    )


class TestEpidemicDifferential:
    """The Figure 1 crisis scenario, seeded, through both engine modes."""

    def _run(self, share_plans):
        with instrumented() as obs:
            system = EnactmentSystem(share_plans=share_plans)
            report = EpidemicScenario(system, seed=7).run()
            chains = [
                record.signature()
                for record in obs.provenance.recent_deliveries()
            ]
        stats = {
            key: value
            for key, value in system.awareness.stats().items()
            if not key.startswith("plan_")
        }
        return report, chains, stats

    def test_reports_and_provenance_identical(self):
        shared, shared_chains, shared_stats = self._run(True)
        plain, plain_chains, plain_stats = self._run(False)

        assert shared.lab_tests_run == plain.lab_tests_run
        assert shared.positive_test == plain.positive_test
        assert shared.vector_tf_started == plain.vector_tf_started
        assert shared.expertise_rounds == plain.expertise_rounds
        assert (
            shared.notifications_by_participant
            == plain.notifications_by_participant
        )
        assert shared.timeline == plain.timeline
        # Same deliveries, same order, same full recognition chains.
        assert shared_chains == plain_chains
        assert shared_stats == plain_stats


class TestTaskForceDifferential:
    """The Section 5.4 deadline-violation story through both modes."""

    def _run(self, share_plans):
        system = EnactmentSystem(share_plans=share_plans)
        leader = system.register_participant(Participant("u-lead", "dr-lee"))
        member = system.register_participant(Participant("u-mem", "dr-kim"))
        system.core.roles.define_role("epidemiologist").add_member(leader)
        system.core.roles.role("epidemiologist").add_member(member)
        app = TaskForceApplication(system)
        app.install_awareness()

        task_force = app.create_task_force(leader, [leader, member], 200)
        request = app.request_information(task_force, member, 150)
        app.change_task_force_deadline(task_force, 120)
        app.change_request_deadline(request, 100)
        app.change_task_force_deadline(task_force, 110)
        app.change_task_force_deadline(task_force, 90)

        streams = {
            participant.participant_id: [
                note_sig(n)
                for n in system.participant_client(
                    participant
                ).check_awareness()
            ]
            for participant in (leader, member)
        }
        stats = {
            key: value
            for key, value in system.awareness.stats().items()
            if not key.startswith("plan_")
        }
        return streams, stats

    def test_notification_streams_identical(self):
        shared_streams, shared_stats = self._run(True)
        plain_streams, plain_stats = self._run(False)
        assert shared_streams == plain_streams
        assert shared_stats == plain_stats
        # The violating moves notified the requestor, so the equality
        # above compared real deliveries, not two empty streams.
        assert len(shared_streams["u-mem"]) == 2
        assert shared_streams["u-lead"] == []


class TestFleetDifferential:
    """N customized copies of one template — the case sharing targets."""

    WINDOWS = 8
    TEMPLATE = """
hits = Filter_context[Ctx, alpha](ContextEvent)
total = Count[](hits)
ready = Compare1[>=, 2](total)
deliver ready to team-{index} as "alpha moved" named AS_F_{index}
"""

    def _run(self, share_plans):
        system = EnactmentSystem(share_plans=share_plans)
        people = []
        for index in range(self.WINDOWS):
            person = system.register_participant(
                Participant(f"u-{index}", f"analyst-{index}")
            )
            system.core.roles.define_role(f"team-{index}").add_member(person)
            people.append(person)
        process = ProcessActivitySchema("P-X", "watched")
        process.add_context_schema(
            ContextSchema("Ctx", [ContextFieldSpec("alpha", "int")])
        )
        process.add_activity_variable(
            ActivityVariable("w", BasicActivitySchema("b-w", "w"))
        )
        process.mark_entry("w")
        system.core.register_schema(process)

        for index in range(self.WINDOWS):
            window = system.awareness.create_window("P-X")
            compile_specification(window, self.TEMPLATE.format(index=index))
            system.awareness.deploy(window)

        with instrumented() as obs:
            ref = system.coordination.start_process(process).context("Ctx")
            for value in range(4):
                ref.set("alpha", value)
            chains = [
                record.signature()
                for record in obs.provenance.recent_deliveries()
            ]
        streams = {
            person.participant_id: [
                note_sig(n)
                for n in system.participant_client(person).check_awareness()
            ]
            for person in people
        }
        return streams, chains, system

    def test_fleet_streams_and_chains_identical(self):
        shared_streams, shared_chains, shared_system = self._run(True)
        plain_streams, plain_chains, plain_system = self._run(False)

        assert shared_streams == plain_streams
        assert shared_chains == plain_chains
        # Every window actually fired (counts 2, 3, 4 pass the gate).
        assert all(len(s) == 3 for s in shared_streams.values())
        # And the equivalence was achieved with a genuinely shared plan.
        stats = shared_system.awareness.planner.stats()
        assert stats["nodes_live"] == 3
        assert stats["operators_deduped"] == 3 * (self.WINDOWS - 1)
        assert plain_system.awareness.planner is None
