"""Integration tests for the Awareness Engine over the full pipeline."""

import pytest

from repro.core.roles import RoleRef
from repro.errors import SpecificationError
from repro.events.external import NewsServiceSource
from repro.workloads.taskforce import (
    AWARENESS_SCHEMA_NAME,
    TaskForceApplication,
)


class TestDeadlineViolationPipeline:
    """The Section 5.4 example end to end: the paper's flagship scenario."""

    def test_requestor_notified_on_violation(
        self, system, alice, bob, taskforce_app
    ):
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        request = taskforce_app.request_information(task_force, bob, 80)
        taskforce_app.change_task_force_deadline(task_force, 50)  # 50 <= 80
        viewer = system.awareness.viewer_for(bob)
        notifications = viewer.retrieve()
        assert len(notifications) == 1
        assert notifications[0].schema_name == AWARENESS_SCHEMA_NAME
        assert "renegotiate" in notifications[0].description

    def test_non_requestor_members_not_notified(
        self, system, alice, bob, taskforce_app
    ):
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        taskforce_app.request_information(task_force, bob, 80)
        taskforce_app.change_task_force_deadline(task_force, 50)
        assert system.awareness.viewer_for(alice).retrieve() == ()

    def test_harmless_deadline_move_does_not_notify(
        self, system, alice, bob, taskforce_app
    ):
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        taskforce_app.request_information(task_force, bob, 80)
        taskforce_app.change_task_force_deadline(task_force, 120)  # 120 <= 80? no
        assert system.awareness.viewer_for(bob).retrieve() == ()

    def test_violation_after_request_completion_is_undeliverable(
        self, system, alice, bob, taskforce_app
    ):
        """The Requestor role expires with the request's context; the
        delivery interval is over (Section 1)."""
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        request = taskforce_app.request_information(task_force, bob, 80)
        taskforce_app.complete_request(request)
        taskforce_app.change_task_force_deadline(task_force, 50)
        assert system.awareness.viewer_for(bob).retrieve() == ()
        assert len(system.awareness.delivery.undeliverable) >= 1

    def test_two_concurrent_requests_notified_independently(
        self, system, alice, bob, carol, taskforce_app
    ):
        task_force = taskforce_app.create_task_force(
            alice, [alice, bob, carol], 100
        )
        taskforce_app.request_information(task_force, bob, 60)
        taskforce_app.request_information(task_force, carol, 90)
        # Move to 70: violates carol's request (70 <= 90), not bob's (70 <= 60 no).
        taskforce_app.change_task_force_deadline(task_force, 70)
        assert len(system.awareness.viewer_for(carol).retrieve()) == 1
        assert system.awareness.viewer_for(bob).retrieve() == ()

    def test_stats_flow_through_pipeline(
        self, system, alice, bob, taskforce_app
    ):
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        taskforce_app.request_information(task_force, bob, 80)
        taskforce_app.change_task_force_deadline(task_force, 50)
        stats = system.awareness.stats()
        assert stats["composites_recognized"] >= 1
        assert stats["notifications_delivered"] >= 1
        assert stats["context_events_gathered"] >= 3


class TestExternalSourceIntegration:
    def test_news_article_awareness(self, system, alice, epidemiologists):
        from repro import (
            ActivityVariable,
            BasicActivitySchema,
            ProcessActivitySchema,
        )

        process = ProcessActivitySchema("P-Watch", "news-watch")
        process.add_activity_variable(
            ActivityVariable("watch", BasicActivitySchema("b-watch", "watch"))
        )
        process.mark_entry("watch")
        system.core.register_schema(process)

        news = NewsServiceSource()
        system.awareness.register_external_source("NewsEvent", news)
        window = system.awareness.create_window("P-Watch")
        correlate = window.place("Filter_news")
        window.connect(window.source("NewsEvent"), correlate, 0)
        window.output(
            correlate,
            RoleRef("epidemiologist"),
            user_description="news article matched your task force query",
            schema_name="AS_News",
        )
        system.awareness.deploy(window)

        instance = system.coordination.start_process(process)
        query = news.register_query(["outbreak"])
        correlate.bind_query(query, instance.instance_id)
        news.publish_article(query, "Cases rising", time=system.clock.tick())

        notifications = system.awareness.viewer_for(alice).retrieve()
        assert len(notifications) == 1
        assert notifications[0].schema_name == "AS_News"

    def test_reserved_source_names(self, system):
        with pytest.raises(SpecificationError):
            system.awareness.register_external_source(
                "ActivityEvent", NewsServiceSource()
            )

    def test_duplicate_external_source(self, system):
        system.awareness.register_external_source("NewsEvent", NewsServiceSource())
        with pytest.raises(SpecificationError):
            system.awareness.register_external_source(
                "NewsEvent", NewsServiceSource()
            )


class TestViewer:
    def test_viewer_unread_then_retrieve(self, system, alice, bob, taskforce_app):
        task_force = taskforce_app.create_task_force(alice, [alice, bob], 100)
        taskforce_app.request_information(task_force, bob, 80)
        taskforce_app.change_task_force_deadline(task_force, 50)
        viewer = system.awareness.viewer_for(bob)
        assert viewer.unread_count() == 1
        items = viewer.retrieve()
        assert viewer.unread_count() == 0
        assert viewer.received() == items
        assert "AS_InfoRequest" in viewer.render()

    def test_empty_viewer_render(self, system, alice):
        viewer = system.awareness.viewer_for(alice)
        assert "(no awareness information)" in viewer.render()
