"""Tests for the operator framework: slots, typing, replication."""

import pytest

from repro.awareness.operators import And, Count
from repro.errors import ParameterError, SlotError
from repro.events.canonical import canonical_event, canonical_type


def cp(instance_id, time=1, int_info=None, schema="P"):
    return canonical_event(
        schema, instance_id, time=time, source="test", int_info=int_info
    )


class TestSlots:
    def test_slot_bounds_checked(self):
        operator = And("P", arity=2)
        with pytest.raises(SlotError):
            operator.consume(2, cp("i1"))
        with pytest.raises(SlotError):
            operator.slot_type(-1)

    def test_wrong_event_type_rejected(self):
        operator = And("P", arity=2)
        wrong = canonical_event("OTHER", "i1", time=1, source="x")
        with pytest.raises(SlotError):
            operator.consume(0, wrong)

    def test_signature_exposed(self):
        operator = And("P", arity=3)
        assert operator.arity == 3
        assert operator.output_type == canonical_type("P")
        assert operator.slot_type(1) == canonical_type("P")


class TestParameterValidation:
    def test_process_schema_required(self):
        with pytest.raises(ParameterError):
            And("", arity=2)

    def test_copy_out_of_range(self):
        with pytest.raises(ParameterError):
            And("P", copy=0)
        with pytest.raises(ParameterError):
            And("P", copy=3, arity=2)

    def test_arity_minimum(self):
        with pytest.raises(ParameterError):
            And("P", arity=1)


class TestReplication:
    """Section 5.1.2: operators replicate state per process instance."""

    def test_count_is_partitioned_by_instance(self):
        count = Count("P")
        count.consume(0, cp("i1"))
        count.consume(0, cp("i1"))
        out = count.consume(0, cp("i2"))
        assert out[0]["intInfo"] == 1  # i2's private counter
        assert count.current_count("i1") == 2
        assert count.current_count("i2") == 1
        assert count.partition_count() == 2

    def test_and_does_not_mix_instances(self):
        conjunction = And("P")
        # i1 fills slot 0; i2 fills slot 1 — no instance saw both slots.
        assert conjunction.consume(0, cp("i1")) == []
        assert conjunction.consume(1, cp("i2")) == []
        # Completing i1 fires only i1's composite.
        fired = conjunction.consume(1, cp("i1", time=5))
        assert len(fired) == 1
        assert fired[0]["processInstanceId"] == "i1"

    def test_counters(self):
        count = Count("P")
        count.consume(0, cp("i1"))
        count.consume(0, cp("i1"))
        assert count.consumed == 2
        assert count.produced == 2


class TestForwarding:
    def test_outputs_flow_to_downstream_consumers(self):
        count = Count("P")
        received = []
        count.add_consumer(lambda slot, event: received.append((slot, event)), 1)
        count.consume(0, cp("i1"))
        assert len(received) == 1
        assert received[0][0] == 1
