"""Fuzz tests for the DSL: generated specs always round-trip cleanly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.awareness.dsl import compile_specification, window_to_dsl
from repro.awareness.specification import SpecificationWindow
from repro.events.producers import ActivityEventProducer, ContextEventProducer


def make_window():
    return SpecificationWindow(
        "P-F",
        {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )


@st.composite
def random_specs(draw):
    """Generate a random, *valid* DSL specification.

    A layered construction: a layer of context filters over distinct
    fields, then random combinator layers consuming earlier nodes, then
    one deliver statement rooting the final node.
    """
    n_filters = draw(st.integers(min_value=1, max_value=4))
    lines = []
    nodes = []
    for index in range(n_filters):
        name = f"f{index}"
        lines.append(f"{name} = Filter_context[Ctx, field{index}](ContextEvent)")
        nodes.append(name)

    n_layers = draw(st.integers(min_value=0, max_value=4))
    for layer in range(n_layers):
        kind = draw(st.sampled_from(["And", "Seq", "Or", "Count", "Compare1", "Compare2"]))
        name = f"n{layer}"
        if kind in ("And", "Seq", "Or"):
            upper = min(3, len(nodes)) if len(nodes) >= 2 else 2
            arity = draw(st.integers(min_value=2, max_value=upper))
            if len(nodes) < 2:
                continue
            inputs = draw(
                st.lists(
                    st.sampled_from(nodes),
                    min_size=arity,
                    max_size=arity,
                    unique=False,
                )
            )
            # A node may not feed two slots of the same operator twice in
            # a way that creates... actually duplicate sources on distinct
            # slots are fine; just build it.
            params = ""
            if kind in ("And", "Seq"):
                copy = draw(st.integers(min_value=1, max_value=arity))
                params = str(copy)
            lines.append(f"{name} = {kind}[{params}]({', '.join(inputs)})")
        elif kind == "Count":
            source = draw(st.sampled_from(nodes))
            lines.append(f"{name} = Count[]({source})")
        elif kind == "Compare1":
            source = draw(st.sampled_from(nodes))
            symbol = draw(st.sampled_from(["<=", "<", ">=", ">", "==", "!="]))
            threshold = draw(st.integers(min_value=-5, max_value=5))
            lines.append(f"{name} = Compare1[{symbol}, {threshold}]({source})")
        else:  # Compare2
            if len(nodes) < 2:
                continue
            a = draw(st.sampled_from(nodes))
            b = draw(st.sampled_from(nodes))
            symbol = draw(st.sampled_from(["<=", "<", ">=", ">", "==", "!="]))
            lines.append(f"{name} = Compare2[{symbol}]({a}, {b})")
        nodes.append(name)

    # Every operator must contribute to the delivered schema (the window
    # validator rejects dangling boxes), so merge all sinks with an Or.
    consumed = set()
    for line in lines:
        if "(" in line and "=" in line:
            args = line[line.rindex("(") + 1 : line.rindex(")")]
            for token in args.split(","):
                consumed.add(token.strip())
    sinks = [node for node in nodes if node not in consumed]
    if len(sinks) > 1:
        lines.append(f"root = Or[]({', '.join(sinks)})")
        root = "root"
    else:
        root = sinks[0]
    scoped = draw(st.booleans())
    role = "Ctx.owner" if scoped else "owners"
    lines.append(f'deliver {root} to {role} as "generated" named AS_Fuzz')
    return "\n".join(lines) + "\n"


class TestDslFuzz:
    @given(spec=random_specs())
    @settings(max_examples=80, deadline=None)
    def test_generated_specs_compile_and_roundtrip(self, spec):
        window_a = make_window()
        compile_specification(window_a, spec)
        window_a.validate()
        text = window_to_dsl(window_a)

        window_b = make_window()
        compile_specification(window_b, text)
        window_b.validate()
        # Round-trip fixpoint: decompiling again yields identical text.
        assert window_to_dsl(window_b) == text
        # Structure preserved.
        assert len(window_a.operators()) == len(window_b.operators())
        assert (
            window_a.schema("AS_Fuzz").description.depth()
            == window_b.schema("AS_Fuzz").description.depth()
        )

    @given(spec=random_specs(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_compiled_and_recompiled_windows_detect_identically(
        self, spec, data
    ):
        """Drive the same event stream through the original and the
        round-tripped window; detection streams must match exactly."""
        from repro.core.context import ContextChange

        windows = []
        for __ in range(2):
            window = make_window()
            compile_specification(
                window, spec if not windows else window_to_dsl(windows[0])
            )
            windows.append(window)

        detected = [[], []]
        for index, window in enumerate(windows):
            window.schema("AS_Fuzz").description.on_detected(
                detected[index].append
            )

        events = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),  # field index
                    st.integers(min_value=-5, max_value=5),  # value
                ),
                max_size=15,
            )
        )
        for tick, (field_index, value) in enumerate(events, start=1):
            for window in windows:
                window.source("ContextEvent").produce(
                    ContextChange(
                        time=tick,
                        context_id="c1",
                        context_name="Ctx",
                        associations=frozenset({("P-F", "i1")}),
                        field_name=f"field{field_index}",
                        old_value=None,
                        new_value=value,
                    )
                )
        # The canonical decompile deliberately reorders commutative
        # operator definitions (PR 4's within-wave sort), which can change
        # consumer registration order and therefore the *intra-tick*
        # interleaving of detections on diamond-shaped DAGs.  The
        # equivalence contract is the per-tick multiset of detections,
        # not their intra-tick order.
        def per_tick(stream):
            out = {}
            for event in stream:
                out.setdefault(event.time, []).append(
                    repr(event.get("intInfo"))
                )
            return {time: sorted(infos) for time, infos in out.items()}

        assert len(detected[0]) == len(detected[1])
        assert per_tick(detected[0]) == per_tick(detected[1])
