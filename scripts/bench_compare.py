#!/usr/bin/env python3
"""Compare pytest-benchmark results against committed baselines.

The CI benchmark job emits one ``BENCH_qe*.json`` per experiment
(``--benchmark-json``).  This script diffs each file's per-benchmark
*median* against the baseline of the same name under
``benchmarks/baselines/`` and enforces the regression budget:

* median more than ``--fail-over`` percent slower  -> FAIL (exit 1)
* median more than ``--warn-over`` percent slower  -> WARN (exit 0)
* otherwise (including any speedup)                -> OK

Run it locally exactly like CI does::

    PYTHONPATH=src python -m pytest benchmarks/test_qe5_detector_scaling.py \
        --benchmark-json=BENCH_qe5.json
    python scripts/bench_compare.py BENCH_qe5.json

Refresh the committed baselines after an intentional perf change::

    python scripts/bench_compare.py BENCH_qe*.json --update

Baselines are stored as a trimmed ``{name: median_seconds}`` map (plus
provenance), not the full pytest-benchmark dump, so diffs stay readable.
The loader also accepts a raw pytest-benchmark JSON as a baseline, so a
downloaded CI artifact can be dropped into ``benchmarks/baselines/``
verbatim.  Stdlib only — no dependencies beyond Python itself.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Tuple

DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")
BASELINE_FORMAT = 1


def load_medians(path: str) -> Dict[str, float]:
    """``{benchmark fullname: median seconds}`` from either file format."""
    with open(path) as handle:
        data = json.load(handle)
    if "medians" in data:  # trimmed baseline format
        return {str(k): float(v) for k, v in data["medians"].items()}
    return {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in data.get("benchmarks", [])
    }


def write_baseline(path: str, medians: Dict[str, float], source: str) -> None:
    payload = {
        "format": BASELINE_FORMAT,
        "source": os.path.basename(source),
        "medians": {k: medians[k] for k in sorted(medians)},
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    warn_over: float,
    fail_over: float,
) -> Tuple[int, int]:
    """Print one verdict line per benchmark; returns (warnings, failures)."""
    warnings = failures = 0
    for name in sorted(current):
        median = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"  NEW   {name}: {median * 1e3:.3f} ms (no baseline)")
            continue
        if base <= 0:
            print(f"  SKIP  {name}: baseline median is {base}")
            continue
        delta = (median / base - 1.0) * 100.0
        detail = (
            f"{name}: {median * 1e3:.3f} ms vs {base * 1e3:.3f} ms "
            f"({delta:+.1f}%)"
        )
        if delta > fail_over:
            failures += 1
            print(f"  FAIL  {detail}")
        elif delta > warn_over:
            warnings += 1
            print(f"  WARN  {detail}")
        else:
            print(f"  ok    {detail}")
    for name in sorted(set(baseline) - set(current)):
        warnings += 1
        print(f"  WARN  {name}: in baseline but not in this run")
    return warnings, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "results",
        nargs="+",
        help="pytest-benchmark JSON files (e.g. BENCH_qe5.json)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=DEFAULT_BASELINE_DIR,
        help=f"directory of committed baselines (default: "
        f"{DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--warn-over",
        type=float,
        default=10.0,
        help="warn when a median regresses more than this percent",
    )
    parser.add_argument(
        "--fail-over",
        type=float,
        default=25.0,
        help="fail when a median regresses more than this percent",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from these results instead of comparing",
    )
    args = parser.parse_args(argv)
    if args.warn_over > args.fail_over:
        parser.error("--warn-over must not exceed --fail-over")

    total_warnings = total_failures = 0
    for path in args.results:
        name = os.path.basename(path)
        baseline_path = os.path.join(args.baseline_dir, name)
        current = load_medians(path)
        if args.update:
            os.makedirs(args.baseline_dir, exist_ok=True)
            write_baseline(baseline_path, current, source=path)
            print(f"updated {baseline_path} ({len(current)} benchmark(s))")
            continue
        print(f"{name}:")
        if not os.path.exists(baseline_path):
            total_warnings += 1
            print(
                "  WARN  no baseline "
                f"({baseline_path} missing; run with --update to create)"
            )
            continue
        warnings, failures = compare(
            current,
            load_medians(baseline_path),
            warn_over=args.warn_over,
            fail_over=args.fail_over,
        )
        total_warnings += warnings
        total_failures += failures

    if args.update:
        return 0
    print(
        f"bench_compare: {total_failures} failure(s), "
        f"{total_warnings} warning(s) "
        f"(fail >{args.fail_over:g}%, warn >{args.warn_over:g}%)"
    )
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main())
