"""QE5 — detection cost as deployed awareness specifications grow.

The Section 7 demonstration ran eight awareness specifications
concurrently; a production deployment would run many more.  This
benchmark deploys 1 -> 32 independent specification windows on one
federation (each filtering a different context field), drives a fixed
primitive-event stream through the engine, and measures the per-event cost
and the recognition counts.  Expected shape: cost grows linearly in the
number of deployed schemas *whose filters must inspect the event*, while
each schema recognizes exactly its own field's changes (no cross-talk).
"""

import time

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.metrics.report import render_table

N_FIELDS = 32
EVENTS_PER_FIELD = 30
SWEEP = (1, 4, 16, 32)


def build_system(n_schemas: int):
    system = EnactmentSystem()
    watcher = system.register_participant(Participant("u-w", "watcher"))
    system.core.roles.define_role("watchers").add_member(watcher)

    fields = [f"field{index}" for index in range(N_FIELDS)]
    process = ProcessActivitySchema("P-X", "watched")
    process.add_context_schema(
        ContextSchema("Ctx", [ContextFieldSpec(f, "int") for f in fields])
    )
    process.add_activity_variable(
        ActivityVariable("w", BasicActivitySchema("b-w", "w"))
    )
    process.mark_entry("w")
    system.core.register_schema(process)

    for index in range(n_schemas):
        window = system.awareness.create_window("P-X")
        flt = window.place(
            "Filter_context", "Ctx", fields[index],
            instance_name=f"flt-{index}",
        )
        window.connect(window.source("ContextEvent"), flt, 0)
        window.output(
            flt, RoleRef("watchers"), schema_name=f"AS_{index}"
        )
        system.awareness.deploy(window)
    return system, process, fields


def drive(n_schemas: int) -> dict:
    system, process, fields = build_system(n_schemas)
    instance = system.coordination.start_process(process)
    ref = instance.context("Ctx")
    started = time.perf_counter()
    for round_index in range(EVENTS_PER_FIELD):
        for field_name in fields:
            ref.set(field_name, round_index)
    elapsed = time.perf_counter() - started
    events = EVENTS_PER_FIELD * N_FIELDS
    recognized = sum(d.recognized for d in system.awareness.detectors())
    return {
        "schemas": n_schemas,
        "events": events,
        "recognized": recognized,
        "us_per_event": elapsed / events * 1e6,
    }


def test_qe5_detector_scaling(benchmark, record_table):
    drive(1)  # warmup so first-run costs do not skew the 1-schema row
    rows = [
        min((drive(n) for __ in range(3)), key=lambda r: r["us_per_event"])
        for n in SWEEP[:-1]
    ]
    rows.append(benchmark(drive, SWEEP[-1]))

    for row in rows:
        # Each deployed schema recognizes exactly its own field's changes.
        assert row["recognized"] == row["schemas"] * EVENTS_PER_FIELD
    # Predicate-indexed routing dispatches each event to the one filter
    # whose key matches, so cost no longer grows with *deployed* schemas —
    # only with *matching* ones: 32 schemas must stay within 3x of 1 schema
    # (was 12x with the linear scan over every deployed filter).
    assert rows[-1]["us_per_event"] < max(3 * rows[0]["us_per_event"], 100.0)

    record_table(
        render_table(
            ("deployed schemas", "events", "recognized", "us/event"),
            [
                (
                    row["schemas"],
                    row["events"],
                    row["recognized"],
                    f"{row['us_per_event']:.1f}",
                )
                for row in rows
            ],
            title=(
                "QE5 — detection cost vs number of deployed awareness "
                "specifications"
            ),
        )
    )
