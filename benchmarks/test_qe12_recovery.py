"""QE12 — crash recovery: exactness and the cost of journaling.

The paper's prototype inherited durability from IBM FlowMark; the shard
supervisor gives the forked federation the same property: every frame is
journaled before dispatch, shard state is snapshotted periodically, and a
SIGKILLed worker is respawned from its snapshot plus journal tail with
already-merged notifications suppressed by ``(time, shard, seq)`` keys.

Two measurements:

* **Exact continuation** — a worker is SIGKILLed mid-stream; the
  crashed-and-recovered run must produce the identical multiset of
  delivery provenance signatures as an uninterrupted run, with
  per-process-instance order preserved.
* **Journaling overhead** — the durable process backend (write-ahead
  journal + snapshot cadence) vs the plain process backend on the same
  stream.  The median durable run must stay under 1.3x the plain run.

``REPRO_QE12_SMOKE=1`` shrinks the workload for CI; on shared runners
the overhead ratio is recorded but not asserted (timing noise on a
small stream swamps the journal cost being measured).
"""

import multiprocessing
import os
import signal
import tempfile
import time

import pytest

from repro.metrics.report import render_table
from repro.parallel import ShardConfig, ShardedFederation
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)

SMOKE = bool(os.environ.get("REPRO_QE12_SMOKE"))

FORCES = 8 if SMOKE else 16
WINDOWS_PER_FORCE = 3 if SMOKE else 6
EVENTS_PER_FORCE = 120 if SMOKE else 400
SHARDS = 2
REPS = 1 if SMOKE else 3
OVERHEAD_LIMIT = 1.3


def make_workload():
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=FORCES,
            windows_per_force=WINDOWS_PER_FORCE,
            events_per_force=EVENTS_PER_FORCE,
        )
    )


def kill_worker(shard):
    worker = shard.inner
    worker.process._popen._send_signal(signal.SIGKILL)  # noqa: SLF001
    worker.process.join(10.0)


def drive(workload, durable_dir=None, crash_after=None, instrument=False):
    """One timed run; optionally SIGKILL shard 0 after *crash_after* events."""
    events = workload.events()  # generated outside the timed section
    config = ShardConfig(
        shards=SHARDS,
        backend="process",
        durable_dir=durable_dir,
        instrument=instrument,
    )
    with ShardedFederation(workload.blueprint(), config) as federation:
        started = time.perf_counter()
        if crash_after is None:
            federation.ingest(events)
        else:
            federation.ingest(events[:crash_after])
            federation.drain()
            kill_worker(federation.shards[0])
            federation.ingest(events[crash_after:])
        federation.drain()
        notifications = list(federation.delivered)
        elapsed = time.perf_counter() - started
        stats = federation.stats()
    assert len(notifications) == workload.expected_notifications()
    return {
        "events": len(events),
        "notifications": notifications,
        "recoveries": stats.get("recoveries", 0),
        "seconds": elapsed,
        "events_per_s": len(events) / elapsed,
    }


def drive_durable(workload, **kwargs):
    with tempfile.TemporaryDirectory(prefix="qe12-") as durable_dir:
        return drive(workload, durable_dir=durable_dir, **kwargs)


def best_of(reps, run, *args, **kwargs):
    return min(
        (run(*args, **kwargs) for __ in range(reps)),
        key=lambda r: r["seconds"],
    )


def signatures(result):
    return sorted(map(repr, (n.signature for n in result["notifications"])))


def per_instance(result):
    streams = {}
    for n in result["notifications"]:
        streams.setdefault(n.process_instance_id, []).append(n.signature)
    return streams


def test_qe12_recovered_stream_is_an_exact_continuation(record_table):
    workload = make_workload()
    events = workload.events()
    reference = drive(workload, instrument=True)
    crashed = drive_durable(
        workload, crash_after=len(events) // 2, instrument=True
    )

    assert crashed["recoveries"] == 1
    assert all(n.signature is not None for n in reference["notifications"])
    # Identical multiset of delivery provenance signatures...
    assert signatures(crashed) == signatures(reference)
    # ...with per-instance order intact.
    assert per_instance(crashed) == per_instance(reference)

    record_table(
        render_table(
            ("run", "events", "notifications", "recoveries"),
            [
                (
                    "uninterrupted",
                    reference["events"],
                    len(reference["notifications"]),
                    reference["recoveries"],
                ),
                (
                    "SIGKILL + recover",
                    crashed["events"],
                    len(crashed["notifications"]),
                    crashed["recoveries"],
                ),
            ],
            title=f"QE12 crash recovery exactness ({FORCES} forces x "
            f"{WINDOWS_PER_FORCE} windows, {SHARDS} shards)",
        )
    )


def test_qe12_journaling_overhead(benchmark, record_table):
    workload = make_workload()
    plain = best_of(REPS, drive, workload)
    durable = benchmark(drive_durable, workload)
    overhead = durable["seconds"] / plain["seconds"]

    record_table(
        render_table(
            ("backend", "events/s", "seconds", "overhead"),
            [
                (
                    "process",
                    f"{plain['events_per_s'] / 1e3:.1f}k",
                    f"{plain['seconds']:.3f}",
                    "1.00x",
                ),
                (
                    "process + journal",
                    f"{durable['events_per_s'] / 1e3:.1f}k",
                    f"{durable['seconds']:.3f}",
                    f"{overhead:.2f}x",
                ),
            ],
            title="QE12 write-ahead journaling overhead",
        )
    )

    if SMOKE:
        pytest.skip(
            f"overhead ratio recorded ({overhead:.2f}x) but not asserted "
            "in the smoke configuration"
        )
    assert overhead < OVERHEAD_LIMIT, (
        f"journaling overhead {overhead:.2f}x exceeds the "
        f"{OVERHEAD_LIMIT}x budget"
    )
