"""ABL2 — ablation: event aggregation and suppression (Section 6.5 outlook).

The paper leaves "event aggregation" to future work; the reproduction
implements both delivery-side suppression (drop same-schema repeats within
a gap) and viewer-side digesting (collapse bursts into digests).  The
ablation pushes a bursty composite-event stream through three
configurations and reports the attention cost each leaves on the user:

* base agent (the paper's behaviour): every composite becomes a row;
* suppression gap: repeats inside the gap never reach the queue;
* viewer digests: everything is queued, the viewer shows digest rows.
"""

from repro.awareness.delivery import DeliveryAgent
from repro.awareness.extensions import (
    ExtendedDeliveryAgent,
    aggregate_notifications,
)
from repro.awareness.operators.output import DELIVERY_EVENT_TYPE
from repro.core import CoreEngine, Participant
from repro.events.event import Event
from repro.metrics.report import render_table

#: A bursty schedule: five bursts of eight composites, 2 ticks apart
#: inside a burst, 100 ticks between bursts.
BURSTS = 5
PER_BURST = 8
INTRA_GAP = 2
INTER_GAP = 100


def schedule():
    times = []
    time = 1
    for __ in range(BURSTS):
        for __ in range(PER_BURST):
            times.append(time)
            time += INTRA_GAP
        time += INTER_GAP
    return times


def delivery_event(time: int) -> Event:
    return Event(
        DELIVERY_EVENT_TYPE,
        {
            "time": time,
            "source": "Output",
            "schemaName": "AS_Burst",
            "deliveryRole": "watchers",
            "deliveryContext": None,
            "assignment": "identity",
            "processSchemaId": "P",
            "processInstanceId": "proc-1",
            "userDescription": "burst event",
            "intInfo": None,
            "strInfo": None,
            "sourceEvent": None,
        },
    )


def build_core():
    core = CoreEngine()
    watcher = core.roles.register_participant(Participant("u1", "watcher"))
    core.roles.define_role("watchers").add_member(watcher)
    return core


def run_configuration(mode: str) -> dict:
    core = build_core()
    if mode == "suppression":
        agent: DeliveryAgent = ExtendedDeliveryAgent(core)
        agent.set_suppression_gap(INTRA_GAP * PER_BURST)
    else:
        agent = DeliveryAgent(core)
    for time in schedule():
        agent.deliver(delivery_event(time))
    pending = agent.queue.pending("u1")
    if mode == "digest":
        rows_shown = len(aggregate_notifications(pending, gap=INTRA_GAP * 2))
    else:
        rows_shown = len(pending)
    return {
        "mode": mode,
        "composites": BURSTS * PER_BURST,
        "queued": len(pending),
        "rows_shown": rows_shown,
    }


def test_abl2_aggregation(benchmark, record_table):
    base = run_configuration("base")
    suppression = run_configuration("suppression")
    digest = benchmark(run_configuration, "digest")

    assert base["rows_shown"] == BURSTS * PER_BURST
    # Suppression keeps one notification per burst.
    assert suppression["queued"] == BURSTS
    # Digesting keeps everything queued but shows one row per burst.
    assert digest["queued"] == BURSTS * PER_BURST
    assert digest["rows_shown"] == BURSTS

    rows = [
        (r["mode"], r["composites"], r["queued"], r["rows_shown"])
        for r in (base, suppression, digest)
    ]
    record_table(
        render_table(
            ("configuration", "composites", "queued", "rows shown to user"),
            rows,
            title=(
                f"ABL2 — aggregation/suppression under bursts "
                f"({BURSTS} bursts x {PER_BURST})"
            ),
        )
    )
