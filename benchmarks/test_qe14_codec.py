"""QE14 — the binary wire codec vs the JSON framing it replaced.

The shard channels and the write-ahead journal both moved from JSON
frames to the interning binary codec (:mod:`repro.parallel.codec`).
Four measurements:

* **Codec microbench** — encode+decode of the seeded mixed event corpus
  (the interleaved multi-force stream the shard channels actually
  carry), production JSON path (``event_to_wire`` → ``json.dumps`` →
  ``json.loads`` → ``event_from_wire``) vs the binary codec with warm
  intern tables.  The binary codec must be >= 3x faster.  Rounds
  interleave the two paths and the ratio is taken best-vs-best, so a
  noise spike that lands on one path's consecutive runs cannot fake (or
  mask) a regression.
* **Differential equivalence** — the serial backend, the process
  backend over binary wire, and the process backend over JSON wire must
  produce identical per-instance notification order and identical
  multisets of delivery provenance signatures.
* **End-to-end throughput** — the 4-shard QE11 configuration over both
  codecs; binary wire must clear 1.15x the JSON-wire throughput (needs
  >= 4 cores; recorded but not asserted on smaller machines).
* **Durable journaling** — the QE12 durable configuration over both
  codecs; the binary-journal run must come in strictly below the
  JSON-journal measurement.

A pre-existing JSON journal must also still replay: a durable run over
JSON wire is resumed by a binary-default federation, which upgrades the
journals in place without losing a frame.

``REPRO_QE14_SMOKE=1`` shrinks the corpus and skips the timing asserts
that are meaningless on shared CI runners (the microbench ratio is
still asserted — it is a pure-CPU property, not a scaling one).
"""

import json
import multiprocessing
import os
import statistics
import tempfile
import time

import pytest

from repro.metrics.report import render_table
from repro.parallel import ShardConfig, ShardedFederation
from repro.parallel.codec import BinaryDecoder, BinaryEncoder
from repro.parallel.wire import event_from_wire, event_to_wire
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

SMOKE = bool(os.environ.get("REPRO_QE14_SMOKE"))

FORCES = 8 if SMOKE else 16
WINDOWS_PER_FORCE = 3 if SMOKE else 6
EVENTS_PER_FORCE = 120 if SMOKE else 400
WAVE = 128
ROUNDS = 7 if SMOKE else 11
REPS = 1 if SMOKE else 2
MICRO_SPEEDUP_FLOOR = 3.0
E2E_SPEEDUP_FLOOR = 1.15

#: The scaling assertion needs actual cores to scale onto.
CORES = len(os.sched_getaffinity(0))

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)


def make_workload():
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=FORCES,
            windows_per_force=WINDOWS_PER_FORCE,
            events_per_force=EVENTS_PER_FORCE,
        )
    )


# ---------------------------------------------------------------------------
# Codec microbench
# ---------------------------------------------------------------------------


def json_pass(waves):
    """The production JSON path: wire dicts + compact dumps, both ways."""
    for wave in waves:
        frame = {
            "kind": "events",
            "events": [event_to_wire(event) for event in wave],
        }
        data = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        decoded = json.loads(data)
        events = [event_from_wire(entry) for entry in decoded["events"]]
        assert len(events) == len(wave)


def binary_pass(waves, encoder, decoder):
    """The binary path: raw events straight through one channel pair."""
    for wave in waves:
        data = encoder.encode_frame({"kind": "events", "events": list(wave)})
        # Production readers hand the decoder ``bytes`` (the payload the
        # pipe read returned); mirror that, header stripped.
        decoded = decoder.decode_payload(bytes(data[4:]))
        assert len(decoded["events"]) == len(wave)


def test_qe14_codec_microbench(benchmark, record_table):
    events = make_workload().events()
    waves = [events[i : i + WAVE] for i in range(0, len(events), WAVE)]
    encoder, decoder = BinaryEncoder(), BinaryDecoder()

    # Warm-up: steady-state intern tables, warm caches for both paths.
    json_pass(waves)
    binary_pass(waves, encoder, decoder)

    json_times, binary_times, ratios = [], [], []
    for __ in range(ROUNDS):
        started = time.perf_counter()
        json_pass(waves)
        json_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        binary_pass(waves, encoder, decoder)
        binary_times.append(time.perf_counter() - started)
        ratios.append(json_times[-1] / binary_times[-1])

    # Best-vs-best over interleaved rounds is the quiet-machine ratio;
    # the per-round median is kept as a cross-check in the table.
    speedup = min(json_times) / min(binary_times)
    benchmark(binary_pass, waves, encoder, decoder)

    json_bytes = sum(
        len(
            json.dumps(
                {
                    "kind": "events",
                    "events": [event_to_wire(event) for event in wave],
                },
                separators=(",", ":"),
            ).encode("utf-8")
        )
        for wave in waves
    )
    binary_bytes = sum(
        len(encoder.encode_frame({"kind": "events", "events": list(wave)}))
        for wave in waves
    )

    record_table(
        render_table(
            ("codec", "best round", "bytes", "speedup"),
            [
                ("json", f"{min(json_times) * 1e3:.2f}ms", json_bytes, "1.00x"),
                (
                    "binary",
                    f"{min(binary_times) * 1e3:.2f}ms",
                    binary_bytes,
                    f"{speedup:.2f}x "
                    f"(median {statistics.median(ratios):.2f}x)",
                ),
            ],
            title=f"QE14 codec microbench ({len(events)} events, "
            f"waves of {WAVE}, {ROUNDS} interleaved rounds)",
        )
    )

    assert speedup >= MICRO_SPEEDUP_FLOOR, (
        f"binary codec speedup {speedup:.2f}x is below the "
        f"{MICRO_SPEEDUP_FLOOR}x floor (json {min(json_times):.4f}s, "
        f"binary {min(binary_times):.4f}s)"
    )


# ---------------------------------------------------------------------------
# End-to-end: differential + throughput + journaling
# ---------------------------------------------------------------------------


def drive(workload, shards, backend, wire_codec, durable_dir=None):
    events = workload.events()  # generated outside the timed section
    config = ShardConfig(
        shards=shards,
        backend=backend,
        wire_codec=wire_codec,
        durable_dir=durable_dir,
        instrument=True,
    )
    with ShardedFederation(workload.blueprint(), config) as federation:
        started = time.perf_counter()
        federation.ingest(events)
        federation.drain()
        notifications = list(federation.delivered)
        elapsed = time.perf_counter() - started
    assert len(notifications) == workload.expected_notifications()
    return {
        "events": len(events),
        "notifications": notifications,
        "seconds": elapsed,
        "events_per_s": len(events) / elapsed,
    }


def best_of(reps, run, *args, **kwargs):
    return min(
        (run(*args, **kwargs) for __ in range(reps)),
        key=lambda r: r["seconds"],
    )


def signatures(result):
    return sorted(map(repr, (n.signature for n in result["notifications"])))


def per_instance(result):
    streams = {}
    for n in result["notifications"]:
        streams.setdefault(n.process_instance_id, []).append(n.signature)
    return streams


@needs_fork
def test_qe14_codecs_are_differentially_equivalent(record_table):
    workload = make_workload()
    serial = drive(workload, shards=2, backend="serial", wire_codec="binary")
    binary = drive(workload, shards=2, backend="process", wire_codec="binary")
    as_json = drive(workload, shards=2, backend="process", wire_codec="json")

    assert all(n.signature is not None for n in serial["notifications"])
    # Identical multiset of delivery provenance signatures...
    assert signatures(binary) == signatures(serial)
    assert signatures(as_json) == signatures(serial)
    # ...with identical per-instance notification order.
    assert per_instance(binary) == per_instance(serial)
    assert per_instance(as_json) == per_instance(serial)

    record_table(
        render_table(
            ("run", "events", "notifications"),
            [
                (name, r["events"], len(r["notifications"]))
                for name, r in (
                    ("serial", serial),
                    ("process/binary", binary),
                    ("process/json", as_json),
                )
            ],
            title=f"QE14 codec differential ({FORCES} forces x "
            f"{WINDOWS_PER_FORCE} windows)",
        )
    )


@needs_fork
def test_qe14_sharded_throughput_over_binary_wire(record_table):
    workload = make_workload()
    as_json = best_of(
        REPS, drive, workload, shards=4, backend="process", wire_codec="json"
    )
    binary = best_of(
        REPS, drive, workload, shards=4, backend="process", wire_codec="binary"
    )
    speedup = binary["events_per_s"] / as_json["events_per_s"]

    record_table(
        render_table(
            ("wire codec", "events/s", "seconds", "speedup"),
            [
                (
                    "json",
                    f"{as_json['events_per_s'] / 1e3:.1f}k",
                    f"{as_json['seconds']:.3f}",
                    "1.00x",
                ),
                (
                    "binary",
                    f"{binary['events_per_s'] / 1e3:.1f}k",
                    f"{binary['seconds']:.3f}",
                    f"{speedup:.2f}x",
                ),
            ],
            title="QE14 4-shard throughput, binary vs JSON wire",
        )
    )

    if SMOKE or CORES < 4:
        pytest.skip(
            f"speedup recorded ({speedup:.2f}x) but not asserted "
            f"({CORES} cores, smoke={SMOKE}): the wire cost is not the "
            "bottleneck without cores to scale onto"
        )
    assert speedup >= E2E_SPEEDUP_FLOOR, (
        f"binary wire speedup {speedup:.2f}x is below the "
        f"{E2E_SPEEDUP_FLOOR}x floor"
    )


@needs_fork
def test_qe14_journaling_is_cheaper_over_binary_frames(benchmark, record_table):
    workload = make_workload()

    def durable(wire_codec):
        with tempfile.TemporaryDirectory(prefix="qe14-") as durable_dir:
            return drive(
                workload,
                shards=2,
                backend="process",
                wire_codec=wire_codec,
                durable_dir=durable_dir,
            )

    as_json = best_of(REPS, durable, "json")
    binary = benchmark(durable, "binary")

    record_table(
        render_table(
            ("journal codec", "events/s", "seconds"),
            [
                (
                    "json",
                    f"{as_json['events_per_s'] / 1e3:.1f}k",
                    f"{as_json['seconds']:.3f}",
                ),
                (
                    "binary",
                    f"{binary['events_per_s'] / 1e3:.1f}k",
                    f"{binary['seconds']:.3f}",
                ),
            ],
            title="QE14 durable journaling, binary vs JSON frames",
        )
    )

    if SMOKE:
        pytest.skip(
            f"journal codec delta recorded (json {as_json['seconds']:.3f}s, "
            f"binary {binary['seconds']:.3f}s) but not asserted in the "
            "smoke configuration"
        )
    assert binary["seconds"] < as_json["seconds"], (
        f"binary-journal run ({binary['seconds']:.3f}s) must come in "
        f"strictly below the JSON-journal run ({as_json['seconds']:.3f}s)"
    )


@needs_fork
def test_qe14_preexisting_json_journal_replays(record_table):
    """A binary-default federation resumes over JSON-era journals.

    The journals upgrade in place (codec flips, absolute frame numbering
    survives) and the resumed run behaves *identically* to resuming over
    binary-era journals — the codec of the pre-existing directory must
    be unobservable.
    """
    workload = make_workload()
    events = workload.events()
    half = len(events) // 2

    def two_phase(first_codec):
        with tempfile.TemporaryDirectory(prefix="qe14-replay-") as durable_dir:
            config = ShardConfig(
                shards=2,
                backend="process",
                wire_codec=first_codec,
                durable_dir=durable_dir,
                instrument=True,
            )
            with ShardedFederation(workload.blueprint(), config) as federation:
                federation.ingest(events[:half])
                federation.drain()
                collected = list(federation.delivered)
                frames = [
                    shard.journal.frame_count for shard in federation.shards
                ]
            config = ShardConfig(  # binary default
                shards=2,
                backend="process",
                durable_dir=durable_dir,
                instrument=True,
            )
            with ShardedFederation(workload.blueprint(), config) as federation:
                for shard, count in zip(federation.shards, frames):
                    # Upgraded journal, absolute numbering preserved.
                    assert shard.journal.codec == "binary"
                    assert shard.journal.frame_count == count
                federation.ingest(events[half:])
                federation.drain()
                collected += list(federation.delivered)
        return collected

    upgraded = two_phase("json")
    reference = two_phase("binary")
    assert sorted(map(repr, (n.signature for n in upgraded))) == sorted(
        map(repr, (n.signature for n in reference))
    )

    record_table(
        render_table(
            ("journal history", "notifications"),
            [
                ("json first half, binary resume", len(upgraded)),
                ("binary throughout", len(reference)),
            ],
            title="QE14 pre-existing JSON journal replay",
        )
    )
