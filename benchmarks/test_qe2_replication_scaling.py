"""QE2 — per-process-instance operator replication (Section 5.1.2).

Design-choice ablation from DESIGN.md: each operator partitions its state
by process instance so "events are not mixed across process instances".
The benchmark sweeps the number of concurrent process instances through a
Count -> Compare2 chain, checking (a) state isolation holds at every scale
and (b) per-event processing cost stays roughly flat as instances grow —
partitioned state is O(1) per event, not O(instances).
"""

import time

from repro.awareness.operators import Compare2, Count
from repro.events.canonical import canonical_event
from repro.metrics.report import render_table

EVENTS_PER_INSTANCE = 20
SWEEP = (1, 10, 100, 1000)


def drive(instances: int) -> dict:
    """Push EVENTS_PER_INSTANCE events through each of *instances*."""
    count = Count("P")
    compare = Compare2("P", "<=")
    count.add_consumer(compare.consume, 0)
    count.add_consumer(compare.consume, 1)
    started = time.perf_counter()
    tick = 0
    for round_index in range(EVENTS_PER_INSTANCE):
        for instance_index in range(instances):
            tick += 1
            count.consume(
                0,
                canonical_event(
                    "P", f"i{instance_index}", time=tick, source="bench"
                ),
            )
    elapsed = time.perf_counter() - started
    # Isolation invariant: every instance's counter is exactly its own.
    for instance_index in range(instances):
        assert count.current_count(f"i{instance_index}") == EVENTS_PER_INSTANCE
    return {
        "instances": instances,
        "events": instances * EVENTS_PER_INSTANCE,
        "partitions": count.partition_count(),
        "us_per_event": elapsed / (instances * EVENTS_PER_INSTANCE) * 1e6,
    }


def test_qe2_replication_scaling(benchmark, record_table):
    rows = []
    for instances in SWEEP[:-1]:
        rows.append(drive(instances))
    # The largest point runs under pytest-benchmark timing.
    largest = benchmark(drive, SWEEP[-1])
    rows.append(largest)

    for row in rows:
        assert row["partitions"] == row["instances"]
    # Flat-cost shape: the 1000-instance point costs at most ~10x the
    # 1-instance point per event (hash-map access, not a linear scan).
    assert rows[-1]["us_per_event"] < max(10 * rows[0]["us_per_event"], 50.0)

    record_table(
        render_table(
            ("process instances", "events", "partitions", "us/event"),
            [
                (
                    row["instances"],
                    row["events"],
                    row["partitions"],
                    f"{row['us_per_event']:.2f}",
                )
                for row in rows
            ],
            title=(
                "QE2 — operator replication per process instance "
                "(Count -> Compare2 chain)"
            ),
        )
    )
