"""FIG3 — Figure 3: the basic primitives of the CMM.

Figure 3 shows how application schemas are instantiated from the CMM meta
types: activity schemas contain exactly one activity state variable;
process schemas contain activity, resource, and dependency variables;
basic activity schemas are restricted to input/output/helper resource
variables and process schemas to input/output/role/local ones; dependency
types are a fixed set.  The benchmark constructs a representative schema
family and verifies every multiplicity and restriction the figure draws.
"""

import pytest

from repro.core.metamodel import DependencyType, MetaType
from repro.core.resources import ResourceUsage, data_schema, helper_schema
from repro.core.roles import RoleRef
from repro.core.schema import (
    ActivityVariable,
    BasicActivitySchema,
    DependencyVariable,
    ProcessActivitySchema,
    ResourceVariable,
)
from repro.errors import SchemaError
from repro.metrics.report import render_table


def build_schema_family():
    """Construct the Figure 3 object constellation."""
    basic = BasicActivitySchema("b-interview", "interview")
    basic.add_resource_variable(
        ResourceVariable("notes-in", data_schema("notes"), ResourceUsage.INPUT)
    )
    basic.add_resource_variable(
        ResourceVariable("report", data_schema("report"), ResourceUsage.OUTPUT)
    )
    basic.add_resource_variable(
        ResourceVariable("editor", helper_schema("editor"), ResourceUsage.HELPER)
    )

    process = ProcessActivitySchema("p-gather", "information-gathering")
    process.add_resource_variable(
        ResourceVariable("region", data_schema("region"), ResourceUsage.INPUT)
    )
    process.add_resource_variable(
        ResourceVariable("lead", data_schema("lead"), ResourceUsage.ROLE)
    )
    process.add_resource_variable(
        ResourceVariable("scratch", data_schema("scratch"), ResourceUsage.LOCAL)
    )
    process.add_activity_variable(
        ActivityVariable("interview", basic, performer=RoleRef("epidemiologist"))
    )
    process.add_activity_variable(
        ActivityVariable("second", BasicActivitySchema("b-2", "followup"))
    )
    process.add_dependency(
        DependencyVariable(
            "seq", DependencyType.SEQUENCE, ("interview",), "second"
        )
    )
    process.mark_entry("interview")
    process.validate()
    return basic, process


def test_fig3_metamodel(benchmark, record_table):
    basic, process = benchmark(build_schema_family)

    # Meta-type instantiation (Figure 3's "is instance of" arrows).
    assert basic.meta_type is MetaType.BASIC_ACTIVITY
    assert process.meta_type is MetaType.PROCESS_ACTIVITY

    # Exactly one activity state variable per activity schema.
    assert basic.state_schema is not None
    assert process.state_schema is not None

    # Usage restrictions: (a) basic = input/output/helper;
    # (b) process = input/output/role/local.
    with pytest.raises(SchemaError):
        basic.add_resource_variable(
            ResourceVariable("r", data_schema("r"), ResourceUsage.ROLE)
        )
    with pytest.raises(SchemaError):
        process.add_resource_variable(
            ResourceVariable("h", helper_schema("h"), ResourceUsage.HELPER)
        )

    # Dependencies relate activity variables (1..* to 1..*), typed from
    # the fixed dependency palette.
    dependency = process.dependencies()[0]
    assert dependency.dependency_type in tuple(DependencyType)

    rows = [
        ("basic activity schema", "state variables", 1),
        ("basic activity schema", "resource variables", len(basic.resource_variables())),
        ("process activity schema", "state variables", 1),
        ("process activity schema", "activity variables", len(process.activity_variables())),
        ("process activity schema", "resource variables", len(process.resource_variables())),
        ("process activity schema", "dependency variables", len(process.dependencies())),
        ("dependency type palette", "fixed size", len(tuple(DependencyType))),
    ]
    record_table(
        render_table(
            ("schema", "contains", "count"),
            rows,
            title="FIG3 — CMM basic primitives (paper Figure 3)",
        )
    )
