"""QE10 — shared detector plans vs per-window operator chains.

The paper's customized-awareness model means a fleet deployment holds
many windows that are structurally identical up to the delivery role
(Section 7 ran eight; a production federation runs hundreds).  The plan
cache interns equivalent sub-DAGs once, so N copies of one specification
template cost one shared operator chain plus an O(N) output fan-out —
and batched dispatch turns a producer burst into one ``consume_batch``
call per shared chain instead of one call per event per window.

Two measurements:

* **Shared-template fleet** — 64 windows compiled from one 8-operator
  template (4 context filters -> Or -> Count -> two Compare1 stages),
  each delivering to its own role.  Driven with an identical primitive
  batch through a sharing and a non-sharing engine; sharing must be at
  least 5x faster and recognize the identical composites.
* **All-unique worst case** — 64 windows with nothing in common (unique
  fields and instance names), where the cache can share nothing.  The
  plan-sharing machinery must cost essentially nothing: within 5% of the
  non-sharing engine.
"""

import time

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
)
from repro.awareness.dsl import compile_specification
from repro.core.context import ContextChange
from repro.metrics.report import render_table

N_WINDOWS = 64
SHARED_FIELDS = 4
EVENTS_PER_FIELD = 60
TRIGGER = 120  # Count value the trigger fires on — once, mid-stream
REPS = 3
WORST_CASE_REPS = 5

#: One 8-operator template; only the delivery clause varies per window.
SHARED_TEMPLATE = """
f0 = Filter_context[Ctx, field0](ContextEvent)
f1 = Filter_context[Ctx, field1](ContextEvent)
f2 = Filter_context[Ctx, field2](ContextEvent)
f3 = Filter_context[Ctx, field3](ContextEvent)
any = Or[](f0, f1, f2, f3)
total = Count[](any)
gate = Compare1[>, 0](total)
fire = Compare1[==, {trigger}](gate)
deliver fire to team-{index} as "activity surge" named AS_Q_{index}
"""

#: Worst case: every operator instance name and filter field is unique,
#: so no two windows share a single node.
UNIQUE_TEMPLATE = """
flt_{index} = Filter_context[Ctx, field{index}](ContextEvent)
total_{index} = Count[](flt_{index})
fire_{index} = Compare1[==, {trigger}](total_{index})
deliver fire_{index} to team-{index} as "surge" named AS_U_{index}
"""


def build_system(n_windows, n_fields, template, share_plans):
    system = EnactmentSystem(share_plans=share_plans)
    for index in range(n_windows):
        person = system.register_participant(
            Participant(f"u-{index}", f"analyst-{index}")
        )
        system.core.roles.define_role(f"team-{index}").add_member(person)
    process = ProcessActivitySchema("P-Fleet", "watched")
    process.add_context_schema(
        ContextSchema(
            "Ctx",
            [ContextFieldSpec(f"field{i}", "int") for i in range(n_fields)],
        )
    )
    process.add_activity_variable(
        ActivityVariable("w", BasicActivitySchema("b-w", "w"))
    )
    process.mark_entry("w")
    system.core.register_schema(process)

    for index in range(n_windows):
        window = system.awareness.create_window("P-Fleet")
        compile_specification(
            window, template.format(index=index, trigger=TRIGGER)
        )
        system.awareness.deploy(window)
    return system, process


def make_changes(instance, n_fields, events_per_field):
    """Field-major change stream: consecutive same-key runs, so batched
    dispatch gets real runs to group (the shape `ContextReference.update`
    bursts produce)."""
    associations = frozenset({("P-Fleet", instance.instance_id)})
    return [
        ContextChange(
            time=field_index * events_per_field + round_index,
            context_id=instance.context("Ctx").context_id,
            context_name="Ctx",
            associations=associations,
            field_name=f"field{field_index}",
            old_value=round_index,
            new_value=round_index + 1,
        )
        for field_index in range(n_fields)
        for round_index in range(events_per_field)
    ]


def drive(n_fields, events_per_field, template, share_plans):
    system, process = build_system(N_WINDOWS, n_fields, template, share_plans)
    instance = system.coordination.start_process(process)
    changes = make_changes(instance, n_fields, events_per_field)
    started = time.perf_counter()
    system.awareness.context_source.gather_batch(changes)
    elapsed = time.perf_counter() - started
    recognized = sum(d.recognized for d in system.awareness.detectors())
    stats = (
        system.awareness.planner.stats()
        if system.awareness.planner is not None
        else {}
    )
    return {
        "events": len(changes),
        "recognized": recognized,
        "seconds": elapsed,
        "us_per_event": elapsed / len(changes) * 1e6,
        "nodes_live": stats.get("nodes_live"),
    }


def best_of(reps, *args):
    return min((drive(*args) for __ in range(reps)), key=lambda r: r["seconds"])


def shared_fleet(share_plans):
    return drive(SHARED_FIELDS, EVENTS_PER_FIELD, SHARED_TEMPLATE, share_plans)


def test_qe10_plan_sharing(benchmark, record_table):
    drive(SHARED_FIELDS, 2, SHARED_TEMPLATE, True)  # warmup
    plain = best_of(REPS, SHARED_FIELDS, EVENTS_PER_FIELD, SHARED_TEMPLATE, False)
    shared = benchmark(shared_fleet, True)

    # Sharing is behavior-invisible: each of the 64 windows fires exactly
    # once (Count crosses TRIGGER once in the 240-event stream).
    assert shared["recognized"] == N_WINDOWS
    assert plain["recognized"] == N_WINDOWS
    # The 8-operator template interned to exactly 8 live nodes.
    assert shared["nodes_live"] == 8

    # The point of the exercise: with 64 structurally-shared windows the
    # chain runs once per event instead of once per window per event.
    speedup = plain["seconds"] / shared["seconds"]
    assert speedup >= 5.0, f"expected >=5x from plan sharing, got {speedup:.1f}x"

    # Worst case — nothing shareable: the cache must not tax deployments
    # it cannot help.  Best-of-N on both sides to keep scheduler noise
    # out of a tight 5% bound.
    unique_plain = best_of(
        WORST_CASE_REPS, N_WINDOWS, EVENTS_PER_FIELD, UNIQUE_TEMPLATE, False
    )
    unique_shared = best_of(
        WORST_CASE_REPS, N_WINDOWS, EVENTS_PER_FIELD, UNIQUE_TEMPLATE, True
    )
    assert unique_shared["recognized"] == unique_plain["recognized"] == 0
    overhead = unique_shared["seconds"] / unique_plain["seconds"]
    assert overhead < 1.05, f"worst-case overhead {overhead:.3f}x exceeds 1.05x"

    record_table(
        render_table(
            ("workload", "windows", "events", "recognized", "us/event"),
            [
                (
                    "shared template, plan cache off",
                    N_WINDOWS,
                    plain["events"],
                    plain["recognized"],
                    f"{plain['us_per_event']:.1f}",
                ),
                (
                    "shared template, plan cache on",
                    N_WINDOWS,
                    shared["events"],
                    shared["recognized"],
                    f"{shared['us_per_event']:.1f}",
                ),
                (
                    "all-unique, plan cache off",
                    N_WINDOWS,
                    unique_plain["events"],
                    unique_plain["recognized"],
                    f"{unique_plain['us_per_event']:.1f}",
                ),
                (
                    "all-unique, plan cache on",
                    N_WINDOWS,
                    unique_shared["events"],
                    unique_shared["recognized"],
                    f"{unique_shared['us_per_event']:.1f}",
                ),
            ],
            title=(
                "QE10 — shared detector plans: 64-window fleet, "
                f"{speedup:.1f}x recognition speedup, "
                f"{overhead:.3f}x worst-case overhead"
            ),
        )
    )
