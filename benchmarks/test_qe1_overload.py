"""QE1 — information overload: CMI vs the Section 2 baselines.

The paper's central claim, made measurable (see DESIGN.md): customized
awareness delivers the relevant situations at a fraction of the deliveries
the built-in choices require.  Expected shape:

* CMI: precision = recall = 1.0, overload factor ~= 1x;
* monitor-everything: raw recall 1.0 at an order of magnitude more
  deliveries per user and near-zero precision;
* worklist-only: precise about work items, blind to situations;
* content filter: receives the deadline changes (raw mode) but cannot
  digest the two-source comparison (digested recall 0);
* e-mail rules: static lists, neither precise nor complete.
"""

from repro.metrics.report import render_table
from repro.workloads.generator import CrisisWorkload, WorkloadConfig

CONFIG = WorkloadConfig(
    task_forces=6,
    members_per_force=4,
    requests_per_force=2,
    deadline_moves_per_force=2,
    violation_probability=0.6,
    participant_pool=12,
    seed=11,
)


def run_workload():
    return CrisisWorkload(CONFIG).run()


def test_qe1_overload(benchmark, record_table):
    result = benchmark(run_workload)

    raw = {score.mechanism: score for score in result.raw_scores}
    digested = {score.mechanism: score for score in result.digested_scores}
    cmi = raw["CMI customized awareness"]
    monitor = raw["monitor-everything (WfMS manager)"]
    worklist = raw["worklist-only (WfMS worker)"]
    content = raw["content-filter pub/sub (Elvin)"]
    diy = raw["worklist + log analysis (custom monitoring app)"]

    # Who wins, and by what factor (DESIGN.md expected shapes).
    assert cmi.precision == 1.0 and cmi.recall == 1.0
    assert cmi.mean_delay == 0.0
    assert monitor.recall == 1.0
    assert (
        monitor.deliveries_per_participant
        > 5 * cmi.deliveries_per_participant
    )
    assert monitor.precision < 0.5
    assert worklist.recall < 1.0
    assert digested["content-filter pub/sub (Elvin)"].true_positives == 0
    assert digested["CMI customized awareness"].recall == 1.0
    assert content.deliveries < monitor.deliveries
    # The Section 2 DIY stack gets the situations with custom code, but
    # later (polling) and less precisely (broadcast; no scoped roles).
    assert diy.recall == 1.0
    assert diy.precision < cmi.precision
    assert diy.mean_delay > cmi.mean_delay

    record_table(result.table("raw"))
    record_table(result.table("digested"))

    # Parameter sweep: how the per-user attention cost scales with crisis
    # size for CMI vs monitor-everything (the paper's overload argument
    # strengthens as the operation grows).
    sweep_rows = []
    for task_forces in (2, 4, 8):
        sweep_result = CrisisWorkload(
            WorkloadConfig(
                task_forces=task_forces,
                members_per_force=4,
                requests_per_force=2,
                deadline_moves_per_force=2,
                violation_probability=0.6,
                participant_pool=12,
                seed=11,
            )
        ).run()
        sweep = {s.mechanism: s for s in sweep_result.raw_scores}
        cmi_row = sweep["CMI customized awareness"]
        monitor_row = sweep["monitor-everything (WfMS manager)"]
        sweep_rows.append(
            (
                task_forces,
                sweep_result.violations,
                f"{cmi_row.deliveries_per_participant:.1f}",
                f"{monitor_row.deliveries_per_participant:.1f}",
                "{:.1f}x".format(
                    monitor_row.deliveries_per_participant
                    / max(cmi_row.deliveries_per_participant, 0.1)
                ),
            )
        )
    # The overload gap does not close as the crisis grows.
    assert float(sweep_rows[-1][4][:-1]) >= 4.0
    record_table(
        render_table(
            (
                "task forces",
                "violations",
                "CMI per-user",
                "monitor per-user",
                "gap",
            ),
            sweep_rows,
            title="QE1 sweep — per-user deliveries vs crisis size",
        )
    )
