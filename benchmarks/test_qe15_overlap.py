"""QE15 — overlapped shard I/O vs one-at-a-time gather round trips.

The multiplexer turned every collective (drain, stats, deploy) from a
serial sweep over the workers — cost: the **sum** of per-shard round
trips — into a broadcast-then-gather — cost: the **max**.  The gap is
widest exactly when the paper's federation is busiest: shards loaded
unevenly (affinity keys are real-world skewed) and collectives frequent
(interactive monitoring drains while ingest continues).

The workload makes that shape deterministic: ``force_weights`` makes
every task force co-sharded with force 0 emit 4x the events, so one of
the 4 shards is ~4x hotter than its neighbours, and the driver
interleaves chunked ingest with a drain+stats collective per chunk.
``overlap=False`` keeps the multiplexer but serialises the collectives
(the pre-overlap behaviour); the speedup is that switch alone — same
codec, same workers, same credit windows.

Two measurements:

* **Collective-cycle throughput** — the skewed stream at 4 process
  shards, overlapped vs serial gather.  With >= 4 cores the overlapped
  run must clear 1.5x; on smaller machines the table is recorded but
  the ratio is not asserted (a gather of CPU-starved workers has no
  latency to overlap).
* **Three-way differential** (always asserted) — serial backend,
  overlapped process backend, and serial-gather process backend must
  produce the identical multiset of delivery provenance signatures and
  identical per-instance order: overlapping changes *when* responses
  arrive, never *what* merges.

``REPRO_QE15_SMOKE=1`` shrinks the stream for CI, where the point is
exercising both collective paths end-to-end, not measuring speedups on
shared runners.
"""

import multiprocessing
import os
import time

import pytest

from repro.metrics.report import render_table
from repro.parallel import ShardConfig, ShardedFederation
from repro.parallel.router import ShardRouter
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)

SMOKE = bool(os.environ.get("REPRO_QE15_SMOKE"))

SHARDS = 4
FORCES = 8
WINDOWS_PER_FORCE = 2 if SMOKE else 4
EVENTS_PER_FORCE = 40 if SMOKE else 150
#: Event multiplier for every force co-sharded with force 0.
HOT_WEIGHT = 4
#: Ingest chunks, each followed by a drain + stats collective.
CYCLES = 3 if SMOKE else 8
REPS = 1 if SMOKE else 2

#: The overlap assertion needs worker latencies that can actually
#: overlap, i.e. cores for the workers to respond from concurrently.
CORES = len(os.sched_getaffinity(0))


def skewed_weights():
    """Weight-4 every force whose context co-shards with force 0's."""
    probe = ShardStreamWorkload(ShardStreamConfig(forces=FORCES))
    hot_shard = ShardRouter.shard_for_key(probe.context_name(0), SHARDS)
    return tuple(
        HOT_WEIGHT
        if ShardRouter.shard_for_key(probe.context_name(force), SHARDS)
        == hot_shard
        else 1
        for force in range(FORCES)
    )


def make_workload():
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=FORCES,
            windows_per_force=WINDOWS_PER_FORCE,
            events_per_force=EVENTS_PER_FORCE,
            force_weights=skewed_weights(),
        )
    )


def drive(workload, overlap, backend="process"):
    """Chunked ingest with a drain + stats collective per chunk."""
    events = workload.events()  # generated outside the timed section
    chunk = max(1, (len(events) + CYCLES - 1) // CYCLES)
    config = ShardConfig(
        shards=1 if backend == "serial" else SHARDS,
        backend=backend,
        instrument=True,
        ship_logs=True,
        trace_sample_every=1,
        overlap=overlap,
        join_timeout=10.0,
    )
    with ShardedFederation(workload.blueprint(), config) as federation:
        started = time.perf_counter()
        for start in range(0, len(events), chunk):
            federation.ingest(events[start : start + chunk])
            federation.drain()
            federation.stats()
        elapsed = time.perf_counter() - started
        notifications = list(federation.delivered)
    assert len(notifications) == workload.expected_notifications()
    return {
        "events": len(events),
        "notifications": notifications,
        "seconds": elapsed,
        "events_per_s": len(events) / elapsed,
    }


def best_of(reps, workload, overlap):
    return min(
        (drive(workload, overlap) for __ in range(reps)),
        key=lambda r: r["seconds"],
    )


def test_qe15_overlapped_collectives(benchmark, record_table):
    workload = make_workload()
    serial_gather = best_of(REPS, workload, overlap=False)
    overlapped = benchmark(drive, workload, True)

    speedup = overlapped["events_per_s"] / serial_gather["events_per_s"]
    rows = [
        (
            "serial gather",
            serial_gather["events"],
            f"{serial_gather['seconds'] * 1e3:.0f}ms",
            f"{serial_gather['events_per_s'] / 1e3:.1f}k",
            "1.00x",
        ),
        (
            "overlapped",
            overlapped["events"],
            f"{overlapped['seconds'] * 1e3:.0f}ms",
            f"{overlapped['events_per_s'] / 1e3:.1f}k",
            f"{speedup:.2f}x",
        ),
    ]
    record_table(
        render_table(
            ("collectives", "events", "elapsed", "events/s", "speedup"),
            rows,
            title=f"QE15 overlapped shard I/O ({CORES} cores, {SHARDS} "
            f"shards, hot shard ~{HOT_WEIGHT}x, {CYCLES} collective "
            f"cycles)",
        )
    )

    if SMOKE or CORES < 4:
        pytest.skip(
            f"overlap ratio not asserted: {CORES} core(s) available"
            + (" (smoke run)" if SMOKE else "")
        )
    assert speedup >= 1.5, (
        f"expected >=1.5x collective-cycle throughput with overlapped "
        f"gather at {SHARDS} shards, got {speedup:.2f}x"
    )


def test_qe15_overlap_is_a_pure_scheduling_change():
    # The three-way differential: whatever the gather order, the merged
    # stream is byte-identical in provenance.
    workload = ShardStreamWorkload(
        ShardStreamConfig(
            forces=FORCES,
            windows_per_force=2,
            events_per_force=30,
            force_weights=skewed_weights(),
        )
    )
    serial = drive(workload, overlap=True, backend="serial")
    overlapped = drive(workload, overlap=True)
    gathered = drive(workload, overlap=False)

    def signatures(result):
        return sorted(
            map(repr, (n.signature for n in result["notifications"]))
        )

    def per_instance(result):
        streams = {}
        for n in result["notifications"]:
            streams.setdefault(n.process_instance_id, []).append(n.signature)
        return streams

    assert all(n.signature is not None for n in serial["notifications"])
    assert signatures(overlapped) == signatures(serial)
    assert signatures(gathered) == signatures(serial)
    assert per_instance(overlapped) == per_instance(serial)
    assert per_instance(gathered) == per_instance(serial)
