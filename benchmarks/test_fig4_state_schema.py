"""FIG4 — Figure 4: the generic activity state schema.

Regenerates the figure's state/transition inventory and benchmarks the
state-machine hot path (transition validation + history recording), since
every enactment operation and every ``E_activity`` event flows through it.
"""

from repro.core.states import (
    StateMachine,
    generic_activity_state_schema,
)
from repro.metrics.report import render_table

#: The exact transition relation drawn in Figure 4 (WfMC-consistent).
EXPECTED_TRANSITIONS = {
    ("Uninitialized", "Ready"),
    ("Ready", "Running"),
    ("Ready", "Terminated"),
    ("Running", "Suspended"),
    ("Suspended", "Running"),
    ("Running", "Completed"),
    ("Running", "Terminated"),
    ("Suspended", "Terminated"),
}


def transition_walk(iterations: int = 2000) -> int:
    """The benchmark body: run many full lifecycles through the machine."""
    schema = generic_activity_state_schema()
    count = 0
    for index in range(iterations):
        machine = StateMachine(schema)
        machine.transition_to("Ready", time=1)
        machine.transition_to("Running", time=2)
        machine.transition_to("Suspended", time=3)
        machine.transition_to("Running", time=4)
        machine.transition_to("Completed", time=5)
        count += len(machine.history)
    return count


def test_fig4_state_schema(benchmark, record_table):
    transitions_done = benchmark(transition_walk)
    assert transitions_done == 2000 * 5

    schema = generic_activity_state_schema()
    assert {(t.source, t.target) for t in schema.transitions()} == (
        EXPECTED_TRANSITIONS
    )
    assert set(schema.children_of("Closed")) == {"Completed", "Terminated"}
    assert schema.initial_state == "Uninitialized"

    rows = [
        ("states", ", ".join(schema.states())),
        ("roots", ", ".join(schema.roots())),
        ("leaves", ", ".join(schema.leaves())),
        ("substates of Closed", ", ".join(schema.children_of("Closed"))),
        ("terminal states", ", ".join(schema.terminal_states())),
        (
            "transitions",
            "; ".join(sorted(str(t) for t in schema.transitions())),
        ),
    ]
    record_table(
        render_table(
            ("property", "value"),
            rows,
            title="FIG4 — generic activity state schema (paper Figure 4)",
        )
    )
