"""QE3 — scoped-role delivery targeting under churn (Section 5.2).

Design-choice ablation from DESIGN.md: delivery roles are resolved *at
detection time* against live contexts.  The benchmark churns task forces
and information requests — some requests still live, some completed (their
``Requestor`` roles expired) — and measures targeting accuracy: every
violation of a live request is delivered to exactly its requestor; every
violation after expiry is recorded undeliverable, never mis-delivered.
"""

from repro import EnactmentSystem, Participant
from repro.metrics.report import render_table
from repro.workloads.taskforce import TaskForceApplication

N_FORCES = 10


def run_churn():
    system = EnactmentSystem()
    role = system.core.roles.define_role("epidemiologist")
    people = []
    for index in range(N_FORCES * 2):
        participant = system.register_participant(
            Participant(f"u{index}", f"p{index}")
        )
        role.add_member(participant)
        people.append(participant)
    app = TaskForceApplication(system)
    app.install_awareness()

    expected_delivered = 0
    expected_undeliverable = 0
    for index in range(N_FORCES):
        leader = people[2 * index]
        member = people[2 * index + 1]
        task_force = app.create_task_force(leader, [leader, member], 100)
        request = app.request_information(task_force, member, 80)
        if index % 2 == 0:
            # Live request: the violation must reach exactly the requestor.
            app.change_task_force_deadline(task_force, 50)
            expected_delivered += 1
        else:
            # Completed request: the role expired before the violation.
            app.complete_request(request)
            app.change_task_force_deadline(task_force, 50)
            expected_undeliverable += 1

    deliveries = {
        person.participant_id: len(
            system.participant_client(person).check_awareness()
        )
        for person in people
    }
    return {
        "delivered_total": sum(deliveries.values()),
        "expected_delivered": expected_delivered,
        "undeliverable": len(system.awareness.delivery.undeliverable),
        "expected_undeliverable": expected_undeliverable,
        "misdelivered": sum(
            count
            for participant_id, count in deliveries.items()
            # Only odd-indexed participants (requestors of live requests
            # in even-indexed forces) may legitimately receive awareness.
            if not (
                participant_id.startswith("u")
                and int(participant_id[1:]) % 2 == 1
                and (int(participant_id[1:]) // 2) % 2 == 0
            )
        ),
    }


def test_qe3_scoped_roles(benchmark, record_table):
    result = benchmark(run_churn)

    assert result["delivered_total"] == result["expected_delivered"]
    assert result["undeliverable"] == result["expected_undeliverable"]
    assert result["misdelivered"] == 0

    rows = [
        ("violations of live requests", result["expected_delivered"]),
        ("  -> delivered to their requestors", result["delivered_total"]),
        ("violations after role expiry", result["expected_undeliverable"]),
        ("  -> recorded undeliverable", result["undeliverable"]),
        ("misdirected deliveries", result["misdelivered"]),
    ]
    record_table(
        render_table(
            ("measure", "count"),
            rows,
            title=(
                "QE3 — scoped-role delivery targeting under task-force churn "
                f"({N_FORCES} task forces)"
            ),
        )
    )
