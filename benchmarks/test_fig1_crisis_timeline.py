"""FIG1 — Figure 1: tasks during crisis information gathering.

The paper's Figure 1 is a timeline of the epidemic information-gathering
process: the always-required task forces, plus optional lab tests and
local-expertise activities decided at run time.  The benchmark replays the
scenario and regenerates the timeline, asserting the figure's structural
properties:

* the information-gathering process spans all activities;
* the three mandatory task forces always run;
* optional activities appear only when decided;
* lab tests stop at the first positive result.
"""

from repro import EnactmentSystem
from repro.workloads.epidemic import EpidemicScenario


def run_scenario(seed: int = 7):
    return EpidemicScenario(EnactmentSystem(), seed=seed).run()


def test_fig1_crisis_timeline(benchmark, record_table):
    report = benchmark(run_scenario)

    timeline = report.timeline
    for mandatory in (
        "information-gathering",
        "patient-interview-task-force",
        "hospital-relations-task-force",
        "media-task-force",
    ):
        assert mandatory in timeline
    assert 1 <= report.lab_tests_run <= 3
    if report.positive_test is not None:
        assert report.positive_test == report.lab_tests_run
    assert report.process.current_state == "Completed"

    lines = [
        "FIG1 — crisis information gathering timeline (paper Figure 1)",
        timeline,
        "",
        f"optional vector task force started: {report.vector_tf_started}",
        f"lab tests run: {report.lab_tests_run} "
        f"(positive at: {report.positive_test})",
        f"local expertise rounds: {report.expertise_rounds}",
    ]
    record_table("\n".join(lines))
