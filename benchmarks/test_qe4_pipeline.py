"""QE4 — awareness pipeline cost vs DAG depth (Section 6).

Measures the wall-clock cost of pushing a primitive event from the source
agent through awareness descriptions of increasing operator depth to the
delivery decision.  The structural latency bound of a distributed
deployment is one hop per DAG level; the reproduction's in-process cost
should grow roughly linearly with depth.
"""

import time

from repro.awareness.operators import ContextFilter, Count
from repro.awareness.description import AwarenessDescription, EventGraph
from repro.core.context import ContextChange
from repro.events.producers import ContextEventProducer
from repro.metrics.latency import LATENCY_HEADERS, LatencyProbe
from repro.metrics.report import render_table

EVENTS = 2000
DEPTHS = (1, 2, 4, 6)


def build_chain(depth: int):
    """Filter followed by (depth - 1) Count stages; returns (producer, AD)."""
    graph = EventGraph()
    producer = graph.add_producer(ContextEventProducer())
    flt = graph.add_operator(
        ContextFilter("P", "Ctx", "deadline", instance_name="flt")
    )
    graph.connect(producer, flt, 0)
    tail = flt
    for level in range(depth - 1):
        stage = graph.add_operator(Count("P", instance_name=f"count-{level}"))
        graph.connect(tail, stage, 0)
        tail = stage
    description = AwarenessDescription(graph, tail)
    description.validate()
    assert description.depth() == depth
    return producer, description


def drive(depth: int):
    producer, description = build_chain(depth)
    probe = LatencyProbe(dag_depth=depth)

    def inject() -> int:
        for tick in range(EVENTS):
            producer.produce(
                ContextChange(
                    time=tick,
                    context_id="c1",
                    context_name="Ctx",
                    associations=frozenset({("P", "i1")}),
                    field_name="deadline",
                    old_value=tick - 1,
                    new_value=tick,
                )
            )
        return EVENTS

    summary = probe.measure(inject)
    assert len(description.detected()) == EVENTS
    return summary


def test_qe4_pipeline(benchmark, record_table):
    summaries = [drive(depth) for depth in DEPTHS[:-1]]
    summaries.append(benchmark(drive, DEPTHS[-1]))

    # Cost grows with depth but stays sane: depth-6 within ~20x depth-1.
    assert summaries[-1].per_event_us < max(
        20 * summaries[0].per_event_us, 200.0
    )

    record_table(
        render_table(
            LATENCY_HEADERS,
            [summary.as_row() for summary in summaries],
            title=(
                "QE4 — primitive event -> detection cost vs awareness DAG "
                "depth"
            ),
        )
    )
