"""QE11 — sharded multi-core enactment vs a single pipeline.

Section 6.1 describes the Enactment System as "a collection of
communicating agents acting as a single server" — a logical architecture
that never required a single interpreter.  The sharding layer makes that
concrete: the federation's event work is partitioned across N forked
worker processes by affinity key, each worker hosting a full
producers -> bus -> detectors -> delivery pipeline.

Two measurements:

* **Throughput scaling** — the seeded taskforce/epidemic stream (many
  independent task forces, each with its own context and detector
  chains) driven through the *process* backend at 1, 2, and 4 shards.
  With >= 4 cores available, 4 shards must clear 2x the single-shard
  recognition throughput; on smaller machines the table is still
  recorded but the ratio is not asserted (there is nothing to scale
  onto).
* **Determinism differential** — the merged sharded stream must be a
  deterministic reordering of the serial stream: identical multiset of
  delivery provenance signatures, and per-process-instance order
  preserved (an instance's events co-shard, so its notifications keep
  recognition order).

``REPRO_QE11_SMOKE=1`` shrinks the workload and caps the sweep at two
shards — the CI configuration, where the point is exercising the forked
backend end-to-end, not measuring speedups on shared runners.
"""

import multiprocessing
import os
import time

import pytest

from repro.metrics.report import render_table
from repro.parallel import ShardConfig, ShardedFederation
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)

SMOKE = bool(os.environ.get("REPRO_QE11_SMOKE"))

FORCES = 8 if SMOKE else 16
WINDOWS_PER_FORCE = 3 if SMOKE else 6
EVENTS_PER_FORCE = 120 if SMOKE else 500
SHARD_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
REPS = 1 if SMOKE else 2

#: The scaling assertion needs actual cores to scale onto.
CORES = len(os.sched_getaffinity(0))


def make_workload():
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=FORCES,
            windows_per_force=WINDOWS_PER_FORCE,
            events_per_force=EVENTS_PER_FORCE,
        )
    )


def drive(workload, shards, backend="process", instrument=False):
    """One timed run: ingest the full stream, drain every notification."""
    events = workload.events()  # generated outside the timed section
    with ShardedFederation(
        workload.blueprint(),
        ShardConfig(shards=shards, backend=backend, instrument=instrument),
    ) as federation:
        started = time.perf_counter()
        federation.ingest(events)
        notifications = federation.drain()
        elapsed = time.perf_counter() - started
    assert len(notifications) == workload.expected_notifications()
    return {
        "shards": shards,
        "events": len(events),
        "notifications": notifications,
        "seconds": elapsed,
        "events_per_s": len(events) / elapsed,
    }


def best_of(reps, workload, shards):
    return min(
        (drive(workload, shards) for __ in range(reps)),
        key=lambda r: r["seconds"],
    )


def test_qe11_sharded_throughput(benchmark, record_table):
    workload = make_workload()
    results = {}
    for shards in SHARD_COUNTS:
        if shards == SHARD_COUNTS[-1]:
            results[shards] = benchmark(drive, workload, shards)
        else:
            results[shards] = best_of(REPS, workload, shards)

    rows = []
    base = results[1]["events_per_s"]
    for shards in SHARD_COUNTS:
        result = results[shards]
        rows.append(
            (
                shards,
                result["events"],
                len(result["notifications"]),
                f"{result['events_per_s'] / 1e3:.1f}k",
                f"{result['events_per_s'] / base:.2f}x",
            )
        )
    record_table(
        render_table(
            ("shards", "events", "notifications", "events/s", "speedup"),
            rows,
            title=f"QE11 sharded enactment throughput ({CORES} cores, "
            f"{FORCES} forces x {WINDOWS_PER_FORCE} windows)",
        )
    )

    if SMOKE or CORES < 4 or 4 not in results:
        pytest.skip(
            f"throughput ratio not asserted: {CORES} core(s) available"
            + (" (smoke run)" if SMOKE else "")
        )
    speedup = results[4]["events_per_s"] / base
    assert speedup >= 2.0, (
        f"expected >=2x recognition throughput at 4 shards, got "
        f"{speedup:.2f}x"
    )


def test_qe11_sharded_stream_is_a_deterministic_reordering():
    workload = ShardStreamWorkload(
        ShardStreamConfig(
            forces=8, windows_per_force=3, events_per_force=60
        )
    )
    shards = 2 if SMOKE else 4
    base = drive(workload, 1, backend="serial", instrument=True)
    sharded = drive(workload, shards, backend="process", instrument=True)
    repeat = drive(workload, shards, backend="process", instrument=True)

    def signatures(result):
        return sorted(map(repr, (n.signature for n in result["notifications"])))

    def per_instance(result):
        streams = {}
        for n in result["notifications"]:
            streams.setdefault(n.process_instance_id, []).append(n.signature)
        return streams

    assert all(n.signature is not None for n in base["notifications"])
    # Same multiset of delivery provenance signatures...
    assert signatures(sharded) == signatures(base)
    # ...with per-instance order intact...
    assert per_instance(sharded) == per_instance(base)
    # ...and the merged order itself is reproducible run to run.
    assert [n.merge_key for n in repeat["notifications"]] == (
        [n.merge_key for n in sharded["notifications"]]
    )
