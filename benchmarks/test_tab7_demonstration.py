"""TAB7 — the Section 7 demonstration statistics.

The conclusion's reported numbers are the paper's only quantitative
content.  The benchmark regenerates the demonstration at the same scale
and prints paper-vs-measured rows; the qualitative outcomes ("no CMM
limitations", "all required functionality") are checked mechanically.
"""

from repro.metrics.report import render_table
from repro.workloads.demonstration import build_demonstration


def run_demonstration():
    return build_demonstration().run()


def test_tab7_demonstration(benchmark, record_table):
    report = benchmark(run_demonstration)

    assert report.process_schemas == 9
    assert report.cmm_activities > 50
    assert 200 <= report.wfms_activities <= 600
    assert report.awareness_specifications == 8
    assert report.context_scripts == 30
    assert report.cmm_limitations == ()
    assert report.all_functionality_provided

    rows = [
        ("collaboration processes", "9", report.process_schemas),
        ("CMM activities", "> 50", report.cmm_activities),
        ("translated WfMS activities", "a few hundred", report.wfms_activities),
        ("awareness specifications", "8", report.awareness_specifications),
        ("context-management scripts", "30", report.context_scripts),
        ("CMM limitations discovered", "none", len(report.cmm_limitations)),
        (
            "required functionality provided",
            "all",
            "all" if report.all_functionality_provided else "MISSING",
        ),
        ("processes run -> completed", "-",
         f"{report.processes_run} -> {report.processes_completed}"),
        ("notifications delivered", "-", report.notifications_delivered),
    ]
    record_table(
        render_table(
            ("statistic", "paper (Section 7)", "measured"),
            rows,
            title="TAB7 — demonstration scale, paper vs reproduction",
        )
    )
