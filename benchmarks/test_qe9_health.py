"""QE9 — self-awareness overhead and alert-detection latency.

The health pipeline must be cheap enough to leave attached in anger: the
``T_system`` telemetry source samples the metrics registry once every
sampling interval, and the SLO detector is an ordinary Figure 5 operator
DAG whose dispatch cost is indexed by metric name — events the rules do
not watch never reach it.

Two measurements, one claim each:

* **End-to-end overhead (bounded < 1.3x)** — the Section 7 demonstration
  workload run plain vs. with :class:`SelfAwareness` attached (telemetry
  source + five default SLO rules + alert delivery), instrumentation off
  in both modes.  Per-event cost is wall-clock run time over primitive
  events published by the *plain* run, so the denominator is identical
  on both sides of the ratio.

* **Alert-detection latency (≤ one sampling interval)** — a queue-depth
  breach is forced at tick T by enqueuing notifications directly, then
  the clock advances tick by tick.  The breach must surface as an alert
  notification timestamped no later than T + interval: detection lag is
  bounded by the sampling cadence, never by queue draining.

Measurement protocol (QE8's): the two modes run *paired*, back to back
inside each repetition, so slow machine drift hits both sides of the
ratio equally; each mode's cost is the best (minimum) time across
repetitions — the standard estimator for the noise-free cost of a
CPU-bound loop.

Behavior must be identical in both modes modulo the health plane itself:
the same workload notifications are delivered (the attached run delivers
those *plus* its own alerts), and the attached run's health verdict must
cover every default rule.
"""

import time

from repro.federation.system import EnactmentSystem
from repro.metrics.report import render_table
from repro.observability.health import default_rules
from repro.observability.selfawareness import SelfAwareness
from repro.workloads import build_demonstration

REPS = 7
SEED = 7

#: Sampling cadence used in both measurements.  The demonstration is a
#: ~300-tick workload, so 10 ticks is an aggressive cadence (~30 passes
#: per run); real deployments sample far less often relative to work.
INTERVAL = 10

#: Acceptance bound: an attached health pipeline costs < 1.3x plain.
MAX_OVERHEAD = 1.3


# -- end-to-end: the Section 7 demonstration workload -----------------------


def run_demo(attached: bool):
    """One full demonstration run; returns (seconds, published, awareness)."""
    builder = build_demonstration(seed=SEED)
    awareness = None
    if attached:
        awareness = SelfAwareness(builder.system, interval=INTERVAL)
    started = time.perf_counter()
    builder.run()
    elapsed = time.perf_counter() - started
    if awareness is not None:
        awareness.sample_now()
    return elapsed, builder.system.bus.published_count(), awareness


# -- latency: forced breach surfaces within one sampling interval -----------


def measure_alert_latency() -> int:
    """Force a queue-depth breach; return alert tick minus breach tick."""
    system = EnactmentSystem(name="qe9")
    awareness = SelfAwareness(system, interval=INTERVAL)
    limit = next(
        rule.limit for rule in default_rules() if rule.name == "queue-depth"
    )
    queue = system.awareness.delivery.queue
    breach_tick = system.clock.now()
    from repro.events.queues import Notification

    for index in range(int(limit) + 1):
        queue.enqueue(
            Notification(
                notification_id=f"qe9-{index}",
                participant_id="flooded",
                time=breach_tick,
                description="synthetic backlog",
                schema_name="AS_Backlog",
                parameters={},
            )
        )
    for __ in range(2 * INTERVAL):
        system.clock.advance(1)
        alerts = [
            alert
            for alert in awareness.alerts()
            if alert.schema_name == "AS_Health_queue-depth"
        ]
        if alerts:
            return min(alert.time for alert in alerts) - breach_tick
    raise AssertionError("queue-depth breach never surfaced as an alert")


# -- the experiment ---------------------------------------------------------


def drive() -> dict:
    run_demo(attached=False)  # warmup
    run_demo(attached=True)

    result: dict = {}
    plain = attached = None
    for __ in range(REPS):
        elapsed, published, __unused = run_demo(False)
        result["published"] = published
        plain = elapsed if plain is None else min(plain, elapsed)
        # The attached run goes last so the health verdict the test
        # inspects is from a complete demonstration run.
        elapsed, __unused, awareness = run_demo(True)
        attached = elapsed if attached is None else min(attached, elapsed)
        result["health"] = awareness.health()
        result["alert_count"] = len(awareness.alerts())

    published = result["published"]
    result["plain_us"] = plain / published * 1e6
    result["attached_us"] = attached / published * 1e6
    result["overhead"] = attached / plain
    result["alert_latency"] = measure_alert_latency()
    return result


def test_qe9_health_overhead_and_latency(benchmark, record_table):
    result = benchmark.pedantic(drive, rounds=3, iterations=1)

    # The attached run actually evaluated the SLO plane: every default
    # rule has a state, and the verdict is a recognised status.
    health = result["health"]
    rule_names = {rule.name for rule in default_rules()}
    assert {state.rule.name for state in health.rules} == rule_names
    assert health.status in ("ok", "degraded", "failing")
    # The demonstration never drains participant queues, so the backlog
    # rules fire and their alerts reach the health agent's queue.
    assert result["alert_count"] > 0, "no alerts delivered to health agent"

    overhead = result["overhead"]
    latency = result["alert_latency"]
    record_table(
        render_table(
            ("workload", "mode", "us/event", "overhead"),
            [
                ("end-to-end", "plain", f"{result['plain_us']:.2f}", "1.00x"),
                ("end-to-end", "attached",
                 f"{result['attached_us']:.2f}", f"{overhead:.2f}x"),
                ("alert latency", f"interval={INTERVAL}",
                 f"{latency} ticks", "-"),
            ],
            title=(
                "QE9 — self-awareness cost (telemetry sampling + SLO "
                "detector + alert delivery) and detection latency"
            ),
        )
    )

    # The tentpole claims: attaching the health pipeline costs < 1.3x,
    # and a breach surfaces within one sampling interval.
    assert overhead < MAX_OVERHEAD, (
        f"self-awareness overhead {overhead:.2f}x exceeds "
        f"{MAX_OVERHEAD}x bound"
    )
    assert latency <= INTERVAL, (
        f"alert latency {latency} ticks exceeds sampling interval "
        f"{INTERVAL}"
    )
