"""QE7 — predicate-indexed event routing vs linear-scan dispatch.

The event substrate routes each primitive event only to the operators
whose static parameters can match it: filter operators expose their match
key via ``EventOperator.routing_keys`` and the producers index consumers
by that key, so per-event dispatch cost is O(matching operators) instead
of O(deployed operators).  This benchmark isolates the dispatch path — a
single ``E_context`` producer feeding N ``Filter_context`` operators, each
watching a different field — and drives the identical event stream through
the indexed and the linear-scan (``producer.indexed = False``) modes.

Expected shape: linear-scan cost grows with N (every filter inspects every
event and all but one reject it); indexed cost is flat (exactly one filter
is visited per event).  Recognition counts must be identical in both
modes — the index is a pure routing optimization.
"""

import time

from repro.awareness.operators.filters import ContextFilter
from repro.core.context import ContextChange
from repro.events.producers import ContextEventProducer
from repro.metrics.report import render_table

N_FIELDS = 32
EVENTS_PER_FIELD = 40
SWEEP = (1, 4, 16, 32)
REPS = 3


def build_pipeline(n_filters: int, indexed: bool):
    producer = ContextEventProducer()
    producer.indexed = indexed
    filters = []
    for index in range(n_filters):
        flt = ContextFilter("P-X", "Ctx", f"field{index}")
        producer.add_consumer(
            lambda event, f=flt: f.consume(0, event),
            keys=flt.routing_keys(0),
        )
        filters.append(flt)
    return producer, filters


def make_changes():
    return [
        ContextChange(
            time=round_index,
            context_id="ctx-1",
            context_name="Ctx",
            associations=frozenset({("P-X", "proc-1")}),
            field_name=f"field{field_index}",
            old_value=round_index,
            new_value=round_index + 1,
        )
        for round_index in range(EVENTS_PER_FIELD)
        for field_index in range(N_FIELDS)
    ]


def drive(n_filters: int, indexed: bool) -> dict:
    changes = make_changes()
    best = None
    recognized = None
    for __ in range(REPS):
        producer, filters = build_pipeline(n_filters, indexed)
        started = time.perf_counter()
        producer.produce_batch(changes)
        elapsed = time.perf_counter() - started
        recognized = sum(f.produced for f in filters)
        per_event = elapsed / len(changes) * 1e6
        best = per_event if best is None else min(best, per_event)
    return {
        "filters": n_filters,
        "recognized": recognized,
        "us_per_event": best,
    }


def test_qe7_routing_index(benchmark, record_table):
    drive(1, indexed=True)  # warmup
    rows = []
    for n in SWEEP:
        linear = drive(n, indexed=False)
        if n == SWEEP[-1]:
            indexed = benchmark(drive, n, True)
        else:
            indexed = drive(n, indexed=True)
        # Behavior-preserving: both modes recognize the same events.
        expected = n * EVENTS_PER_FIELD
        assert linear["recognized"] == expected
        assert indexed["recognized"] == expected
        rows.append(
            {
                "filters": n,
                "recognized": expected,
                "linear_us": linear["us_per_event"],
                "indexed_us": indexed["us_per_event"],
                "speedup": linear["us_per_event"] / indexed["us_per_event"],
            }
        )

    # The tentpole claim: at 32 deployed filters, indexed dispatch beats
    # the linear scan by at least 4x (each event visits 1 filter, not 32).
    assert rows[-1]["speedup"] >= 4.0

    record_table(
        render_table(
            (
                "deployed filters",
                "recognized",
                "us/event linear",
                "us/event indexed",
                "speedup",
            ),
            [
                (
                    row["filters"],
                    row["recognized"],
                    f"{row['linear_us']:.2f}",
                    f"{row['indexed_us']:.2f}",
                    f"{row['speedup']:.1f}x",
                )
                for row in rows
            ],
            title=(
                "QE7 — per-event dispatch cost: predicate-indexed routing "
                "vs linear scan"
            ),
        )
    )
