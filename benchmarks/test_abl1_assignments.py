"""ABL1 — ablation: awareness role assignment functions (Section 5.3).

The paper implements only the identity assignment but anticipates
selecting receivers "based on their load or whether they are currently
signed-on to the system".  This ablation runs the same composite-event
stream under each assignment policy and reports the delivery counts:
identity fans out to the full role, ``signed_on`` drops offline members,
``least_loaded`` picks one receiver per event.
"""

from repro.awareness.delivery import DeliveryAgent
from repro.awareness.operators.output import DELIVERY_EVENT_TYPE
from repro.core import CoreEngine, Participant
from repro.events.event import Event
from repro.metrics.report import render_table

N_MEMBERS = 6
N_SIGNED_ON = 2
N_EVENTS = 40


def delivery_event(assignment: str, time: int) -> Event:
    return Event(
        DELIVERY_EVENT_TYPE,
        {
            "time": time,
            "source": "Output",
            "schemaName": "AS_X",
            "deliveryRole": "responders",
            "deliveryContext": None,
            "assignment": assignment,
            "processSchemaId": "P",
            "processInstanceId": "proc-1",
            "userDescription": "respond",
            "intInfo": None,
            "strInfo": None,
            "sourceEvent": None,
        },
    )


def run_policy(assignment: str) -> dict:
    core = CoreEngine()
    role = core.roles.define_role("responders")
    members = []
    for index in range(N_MEMBERS):
        participant = core.roles.register_participant(
            Participant(f"u{index}", f"member-{index}")
        )
        if index < N_SIGNED_ON:
            participant.sign_on()
        role.add_member(participant)
        members.append(participant)
    agent = DeliveryAgent(core)
    for time in range(1, N_EVENTS + 1):
        notifications = agent.deliver(delivery_event(assignment, time))
        # least_loaded receivers accrue load until they drain their queue;
        # model periodic catch-up so the load balancer has signal.
        for notification in notifications:
            receiver = core.roles.participant(notification.participant_id)
            receiver.load += 1
            if receiver.load > 3:
                receiver.load = 0
    per_member = [
        agent.queue.pending_count(member.participant_id) for member in members
    ]
    return {
        "assignment": assignment,
        "total": agent.delivered,
        "max_per_member": max(per_member),
        "min_per_member": min(per_member),
        "receivers_used": sum(1 for count in per_member if count),
    }


def test_abl1_assignments(benchmark, record_table):
    identity = run_policy("identity")
    signed_on = run_policy("signed_on")
    least_loaded = benchmark(run_policy, "least_loaded")

    # identity: everyone gets everything.
    assert identity["total"] == N_EVENTS * N_MEMBERS
    assert identity["receivers_used"] == N_MEMBERS
    # signed_on: only the online members.
    assert signed_on["total"] == N_EVENTS * N_SIGNED_ON
    assert signed_on["receivers_used"] == N_SIGNED_ON
    # least_loaded: one receiver per event, spread across members.
    assert least_loaded["total"] == N_EVENTS
    assert least_loaded["receivers_used"] >= 2
    assert least_loaded["max_per_member"] < N_EVENTS

    rows = [
        (
            result["assignment"],
            result["total"],
            result["receivers_used"],
            result["min_per_member"],
            result["max_per_member"],
        )
        for result in (identity, signed_on, least_loaded)
    ]
    record_table(
        render_table(
            ("assignment", "deliveries", "receivers", "min/member", "max/member"),
            rows,
            title=(
                f"ABL1 — role assignment policies "
                f"({N_EVENTS} composites, {N_MEMBERS} role members, "
                f"{N_SIGNED_ON} signed on)"
            ),
        )
    )
