"""QE13 — federated observability overhead: plane attached vs detached.

The federation observability plane (cross-shard trace propagation,
metrics-registry shipping, structured-log shipping) rides frames that
already exist: trace contexts stamp outgoing event batches, and every
stats/flush response piggybacks the worker's registry snapshot, its
buffered sampled span batches, and the log records past the shipping
cursor.  Nothing blocks the hot path — so attaching the whole plane to
a sharded process-backend run must cost < 1.3x the detached per-event
time (the same budget QE8 holds single-process instrumentation to).

Measurement protocol (QE8's): the two modes run *paired* inside each
repetition so machine drift hits both sides of the ratio, and each
mode's cost is the minimum across repetitions.  The stream is driven in
waves (ingest + drain per chunk) because a wave is the tracing unit:
each sampled wave must come back as ONE assembled trace holding span
trees from every shard it touched.

Correctness ridealongs, asserted on the attached run:

* identical merged notification stream in both modes;
* at least one assembled trace with spans from >= 2 distinct shards,
  every shipped tree parented under the wave's root span (the assembler
  refuses mislinked batches, so ``orphaned == 0`` is the linkage proof);
* worker registries aggregated under per-shard labels;
* structured-log records shipped from every worker with no losses.

``REPRO_QE13_SMOKE=1`` shrinks the stream and skips the overhead
assertion (shared CI runners); the plane's behavior is still verified
end to end.  The nightly full run asserts the 1.3x budget.
"""

import multiprocessing
import os
import time

import pytest

from repro.metrics.report import render_table
from repro.parallel import ShardConfig, ShardedFederation
from repro.workloads.generator import ShardStreamConfig, ShardStreamWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the process backend requires the fork start method",
)

SMOKE = bool(os.environ.get("REPRO_QE13_SMOKE"))

FORCES = 6 if SMOKE else 12
WINDOWS_PER_FORCE = 2 if SMOKE else 4
EVENTS_PER_FORCE = 80 if SMOKE else 250
SHARDS = 2
WAVES = 8
REPS = 2 if SMOKE else 4
ROUNDS = 1 if SMOKE else 3

#: One wave in this many is traced end to end across the shards.  The
#: full run measures the tracer's default cadence (the configuration a
#: deployment leaves on); smoke lowers it so the short stream still
#: produces sampled waves to verify.
SAMPLE_EVERY = 4 if SMOKE else 16

#: Acceptance bound: the full federated plane costs < 1.3x detached.
MAX_OVERHEAD = 1.3


def make_workload():
    return ShardStreamWorkload(
        ShardStreamConfig(
            forces=FORCES,
            windows_per_force=WINDOWS_PER_FORCE,
            events_per_force=EVENTS_PER_FORCE,
        )
    )


def run_once(workload, attached: bool):
    """One timed wave-driven run; returns (seconds, summary dict)."""
    events = workload.events()
    wave = max(1, len(events) // WAVES)
    config = ShardConfig(
        shards=SHARDS,
        backend="process",
        instrument=attached,
        ship_logs=attached,
        trace_sample_every=SAMPLE_EVERY,
        join_timeout=10.0,
    )
    with ShardedFederation(workload.blueprint(), config) as federation:
        started = time.perf_counter()
        notifications = []
        for start in range(0, len(events), wave):
            federation.ingest(events[start : start + wave])
            notifications.extend(federation.drain())
        elapsed = time.perf_counter() - started
        federation.refresh_observability()
        assembler = federation.trace_assembler
        summary = {
            "events": len(events),
            # Provenance signatures need instrumentation; merge keys are
            # the mode-independent identity of the merged stream.
            "merge_keys": [n.merge_key for n in notifications],
            "traces": federation.traces(),
            "multi_shard": [
                trace
                for trace in federation.traces()
                if len(assembler.shards_of(trace)) >= 2
            ],
            "orphaned": assembler.orphaned,
            "spans_dropped": federation.spans_dropped,
            "metric_shards": set(),
            "log_shards": set(),
            "logs_dropped": federation.logs().dropped(),
        }
        registry = federation.metrics_registry()
        published = registry.get("bus_published_total")
        if published is not None:
            summary["metric_shards"] = {
                labels[0] for labels in published.series()
            }
        summary["log_shards"] = {
            record["shard"]
            for record in federation.logs().records()
            if record["shard"] >= 0
        }
    return elapsed, summary


def drive() -> dict:
    workload = make_workload()
    run_once(workload, attached=False)  # warmup: fork + import costs
    detached = attached = None
    result: dict = {}
    for __ in range(REPS):
        elapsed, summary = run_once(workload, attached=False)
        detached = elapsed if detached is None else min(detached, elapsed)
        result["detached_merge_keys"] = summary["merge_keys"]
        # Attached goes last so the summary the test inspects is the
        # plane's (traces, shipped logs, per-shard metrics).
        elapsed, summary = run_once(workload, attached=True)
        attached = elapsed if attached is None else min(attached, elapsed)
        result["attached"] = summary
    events = result["attached"]["events"]
    result["detached_us"] = detached / events * 1e6
    result["attached_us"] = attached / events * 1e6
    result["overhead"] = attached / detached
    return result


def test_qe13_federated_observability_overhead(benchmark, record_table):
    result = benchmark.pedantic(drive, rounds=ROUNDS, iterations=1)
    summary = result["attached"]

    # Behavior-preserving: the plane changes nothing downstream.
    expected = make_workload().expected_notifications()
    assert len(summary["merge_keys"]) == expected
    assert summary["merge_keys"] == result["detached_merge_keys"]

    # The plane actually observed the federation: sampled waves came
    # back as assembled cross-shard traces with correct linkage...
    assert summary["traces"], "no waves were sampled"
    assert summary["multi_shard"], "no trace spans >= 2 shards"
    for trace in summary["multi_shard"]:
        shards = [entry["shard"] for entry in trace["spans"]]
        assert len(set(shards)) >= 2
        for entry in trace["spans"]:
            assert entry["span"]["name"] == "shard.ingest"
    assert summary["orphaned"] == 0
    assert summary["spans_dropped"] == 0
    # ...every worker's registry aggregated under its shard label...
    assert summary["metric_shards"] >= {str(s) for s in range(SHARDS)}
    # ...and every worker shipped structured-log records, losslessly.
    assert summary["log_shards"] == set(range(SHARDS))
    assert summary["logs_dropped"] == {}

    record_table(
        render_table(
            ("mode", "us/event", "overhead"),
            [
                ("plane detached", f"{result['detached_us']:.1f}", "1.00x"),
                (
                    "plane attached",
                    f"{result['attached_us']:.1f}",
                    f"{result['overhead']:.2f}x",
                ),
            ],
            title=(
                f"QE13 federated observability overhead ({SHARDS} forked "
                f"shards, {summary['events']} events, "
                f"sample 1/{SAMPLE_EVERY}, "
                f"{len(summary['traces'])} traces assembled)"
            ),
        )
    )

    if SMOKE:
        pytest.skip(
            "overhead budget not asserted in smoke mode "
            f"(measured {result['overhead']:.2f}x)"
        )
    assert result["overhead"] < MAX_OVERHEAD, (
        f"federated observability plane costs {result['overhead']:.2f}x "
        f"(budget {MAX_OVERHEAD}x)"
    )
