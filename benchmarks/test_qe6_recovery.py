"""QE6 — recovery cost vs journal size (durable enactment).

The audit-journal recovery path (see DESIGN.md item 30) must scale with
history length: restart time is the operational cost of durability.  The
benchmark journals crisis runs of increasing size, recovers each journal
into a fresh CORE engine, verifies exactness (instance counts, final
states), and reports records/second of replay.
"""

import time

from repro import EnactmentSystem, Participant
from repro.federation.journal import Journal, recover_core
from repro.metrics.report import render_table
from repro.workloads.taskforce import TaskForceApplication

SWEEP = (2, 8, 24)


def journaled_run(task_forces: int) -> Journal:
    journal = Journal()
    system = EnactmentSystem(journal=journal)
    leader = system.register_participant(Participant("u0", "lead"))
    member = system.register_participant(Participant("u1", "mem"))
    role = system.core.roles.define_role("epidemiologist")
    role.add_member(leader)
    role.add_member(member)
    app = TaskForceApplication(system)
    for __ in range(task_forces):
        task_force = app.create_task_force(leader, [leader, member], 100)
        request = app.request_information(task_force, member, 80)
        app.change_task_force_deadline(task_force, 50)
        app.complete_request(request)
        system.participant_client(leader).claim_and_complete_all()
        system.participant_client(member).claim_and_complete_all()
    journal._original_instances = len(system.core.instances())  # type: ignore[attr-defined]
    return journal


def recover_measured(journal: Journal) -> dict:
    started = time.perf_counter()
    recovered = recover_core(journal)
    elapsed = time.perf_counter() - started
    assert len(recovered.instances()) == journal._original_instances  # type: ignore[attr-defined]
    return {
        "records": len(journal),
        "instances": len(recovered.instances()),
        "seconds": elapsed,
    }


def test_qe6_recovery(benchmark, record_table):
    journals = [journaled_run(n) for n in SWEEP]
    rows = [recover_measured(j) for j in journals[:-1]]
    rows.append(benchmark(recover_measured, journals[-1]))

    # Linear-ish scaling: 12x the history should cost well under 40x.
    small, large = rows[0], rows[-1]
    per_record_small = small["seconds"] / small["records"]
    per_record_large = large["seconds"] / large["records"]
    assert per_record_large < 20 * per_record_small + 1e-3

    record_table(
        render_table(
            ("journal records", "instances recovered", "krec/s"),
            [
                (
                    row["records"],
                    row["instances"],
                    f"{row['records'] / row['seconds'] / 1000:.1f}",
                )
                for row in rows
            ],
            title="QE6 — audit-journal recovery throughput",
        )
    )
