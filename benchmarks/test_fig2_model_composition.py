"""FIG2 — Figure 2: CMM = CORE + CM/AM/SM extensions.

Verifies the model composition declaratively (every extension builds on
CORE; the application-specific layer sits atop CM, SM, and AM) and checks
it *operationally*: booting a federation wires each engine against the
CORE engine exactly as the model stacks the sub-models.
"""

from repro import EnactmentSystem
from repro.core.metamodel import CMM_EXTENSIONS, extension_dependencies
from repro.metrics.report import render_table


def composition_rows():
    rows = []
    for abbreviation, extension in CMM_EXTENSIONS.items():
        rows.append(
            (
                abbreviation,
                extension.name,
                ", ".join(extension.builds_on) or "-",
                len(extension.provides),
            )
        )
    return rows


def test_fig2_model_composition(benchmark, record_table):
    rows = benchmark(composition_rows)

    # Figure 2's structure.
    assert extension_dependencies("APP") == frozenset({"CM", "SM", "AM", "CORE"})
    for abbreviation in ("CM", "AM", "SM"):
        assert extension_dependencies(abbreviation) == frozenset({"CORE"})

    # Operational check: the engines stack the same way.
    system = EnactmentSystem()
    assert system.coordination.core is system.core          # CM on CORE
    assert system.awareness.core is system.core             # AM on CORE
    assert system.service.coordination.core is system.core  # SM via CM on CORE

    record_table(
        render_table(
            ("ext", "name", "builds on", "#provides"),
            rows,
            title="FIG2 — CMM composition (paper Figure 2)",
        )
    )
