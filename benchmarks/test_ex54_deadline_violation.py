"""EX54 — the Section 5/5.4 worked example, behaviour by behaviour.

The paper walks a specific sequence: create the task force, file an
information request with an earlier deadline, move the task-force deadline
earlier, and the *requestor* — resolved through the dynamically created
``Requestor`` scoped role — is notified so he "can renegotiate the request
deadline or cancel the request".  The benchmark replays the sequence and
reports each paper-stated behaviour against the measured one.
"""

from repro import EnactmentSystem, Participant
from repro.metrics.report import render_table
from repro.workloads.taskforce import TaskForceApplication


def run_example():
    system = EnactmentSystem()
    leader = system.register_participant(Participant("u-lead", "leader"))
    requestor = system.register_participant(Participant("u-req", "requestor"))
    other = system.register_participant(Participant("u-other", "other-member"))
    role = system.core.roles.define_role("epidemiologist")
    for person in (leader, requestor, other):
        role.add_member(person)
    app = TaskForceApplication(system)
    app.install_awareness()

    observations = {}
    task_force = app.create_task_force(leader, [leader, requestor, other], 200)
    request = app.request_information(task_force, requestor, 150)

    # Harmless move first: no notification.
    app.change_task_force_deadline(task_force, 180)
    observations["harmless_move_silent"] = (
        len(system.participant_client(requestor).check_awareness()) == 0
    )

    # Violating move: requestor (and only the requestor) notified.
    app.change_task_force_deadline(task_force, 120)
    observations["requestor_notified"] = (
        len(system.participant_client(requestor).check_awareness()) == 1
    )
    observations["other_members_silent"] = (
        len(system.participant_client(other).check_awareness()) == 0
        and len(system.participant_client(leader).check_awareness()) == 0
    )

    # Renegotiation path: requestor lowers the request deadline.
    app.change_request_deadline(request, 100)
    app.change_task_force_deadline(task_force, 110)
    observations["renegotiation_effective"] = (
        len(system.participant_client(requestor).check_awareness()) == 0
    )

    # Cancellation path: a second request is cancelled after violation.
    # Moving the deadline to 90 violates *both* live requests (100, 105):
    # one notification per violated information request instance.
    request2 = app.request_information(task_force, requestor, 105)
    app.change_task_force_deadline(task_force, 90)
    observations["second_request_notified"] = (
        len(system.participant_client(requestor).check_awareness()) == 2
    )
    app.cancel_request(request2)
    observations["cancelled_request_terminated"] = (
        request2.process.current_state == "Terminated"
    )

    # Scoped-role lifetime: after completion, violations are undeliverable.
    app.complete_request(request)
    before = len(system.awareness.delivery.undeliverable)
    app.change_task_force_deadline(task_force, 10)
    observations["expired_role_bounds_delivery"] = (
        len(system.participant_client(requestor).check_awareness()) == 0
        and len(system.awareness.delivery.undeliverable) > before
    )
    return observations


def test_ex54_deadline_violation(benchmark, record_table):
    observations = benchmark(run_example)
    assert all(observations.values()), observations

    rows = [
        (
            "harmless deadline move delivers nothing",
            "pass" if observations["harmless_move_silent"] else "FAIL",
        ),
        (
            "violating move notifies the requestor",
            "pass" if observations["requestor_notified"] else "FAIL",
        ),
        (
            "other members / leader not notified",
            "pass" if observations["other_members_silent"] else "FAIL",
        ),
        (
            "requestor can renegotiate the deadline",
            "pass" if observations["renegotiation_effective"] else "FAIL",
        ),
        (
            "repeat violation notifies per violated request",
            "pass" if observations["second_request_notified"] else "FAIL",
        ),
        (
            "requestor can cancel the request",
            "pass" if observations["cancelled_request_terminated"] else "FAIL",
        ),
        (
            "role expiry bounds the delivery interval",
            "pass" if observations["expired_role_bounds_delivery"] else "FAIL",
        ),
    ]
    record_table(
        render_table(
            ("paper-stated behaviour (Section 5.4)", "measured"),
            rows,
            title="EX54 — deadline-violation awareness schema AS_InfoRequest",
        )
    )
