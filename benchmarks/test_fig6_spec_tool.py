"""FIG6 — Figure 6: the CMI awareness specification tool.

Figure 6 shows one specification window with *two* awareness schemas
sharing the window's primitive event source diamonds — the right-hand one
being the Section 5.4 deadline-violation schema.  The benchmark authors
that window programmatically (the paper's three-step workflow), validates
it, and renders the GUI-substitute view.
"""

from repro.awareness.specification import SpecificationWindow
from repro.core.roles import RoleRef
from repro.events.producers import ActivityEventProducer, ContextEventProducer


def author_window() -> SpecificationWindow:
    window = SpecificationWindow(
        "P-InfoRequest",
        {
            "ActivityEvent": ActivityEventProducer(),
            "ContextEvent": ContextEventProducer(),
        },
    )
    # Left-hand schema of the figure: an activity-progress notification.
    progress = window.place(
        "Filter_activity", "gather", None, {"Completed"},
        instance_name="gather-completed",
    )
    window.connect(window.source("ActivityEvent"), progress, 0)
    window.output(
        progress,
        RoleRef("Requestor", "InfoRequestContext"),
        user_description="Your information request finished gathering",
        schema_name="AS_GatherDone",
    )
    # Right-hand schema: the Section 5.4 deadline-violation DAG.
    op1 = window.place(
        "Filter_context", "TaskForceContext", "TaskForceDeadline",
        instance_name="op1",
    )
    op2 = window.place(
        "Filter_context", "InfoRequestContext", "RequestDeadline",
        instance_name="op2",
    )
    compare = window.place("Compare2", "<=", instance_name="deadline<=")
    window.connect(window.source("ContextEvent"), op1, 0)
    window.connect(window.source("ContextEvent"), op2, 0)
    window.connect(op1, compare, 0)
    window.connect(op2, compare, 1)
    window.output(
        compare,
        RoleRef("Requestor", "InfoRequestContext"),
        user_description="Task force deadline moved before your request deadline",
        schema_name="AS_InfoRequest",
    )
    window.validate()
    return window


def test_fig6_spec_tool(benchmark, record_table):
    window = benchmark(author_window)

    schemas = window.schemas()
    assert len(schemas) == 2
    # Both schemas share the window's ContextEvent/ActivityEvent diamonds.
    names = {schema.name for schema in schemas}
    assert names == {"AS_GatherDone", "AS_InfoRequest"}
    deadline_schema = window.schema("AS_InfoRequest")
    assert deadline_schema.delivery_role == RoleRef(
        "Requestor", "InfoRequestContext"
    )
    assert deadline_schema.description.depth() == 3

    record_table(
        "FIG6 — awareness specification window (paper Figure 6)\n"
        + window.render()
    )
