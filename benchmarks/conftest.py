"""Benchmark-suite plumbing.

Every benchmark regenerates one table/figure/example of the paper (see the
experiment index in DESIGN.md).  Benchmarks record their reproduced tables
through the ``record_table`` fixture; a terminal-summary hook prints them
after the pytest-benchmark timing table, so ``pytest benchmarks/
--benchmark-only | tee bench_output.txt`` captures both timings and the
paper-style rows.
"""

from __future__ import annotations

from typing import List

_TABLES: List[str] = []


import pytest


@pytest.fixture
def record_table():
    """Record a rendered experiment table for the terminal summary."""

    def record(text: str) -> None:
        _TABLES.append(text)

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduced experiment output")
    for table in _TABLES:
        terminalreporter.write_line(table)
        terminalreporter.write_line("")
