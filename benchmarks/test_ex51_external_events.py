"""EX51 — Section 5.1.1's external-event example: the news service.

"An event from the news service would contain a query id that can be
related back to the process instance through an application-specific event
operator."  The benchmark runs several task-force watch processes, each
with its own registered query, publishes a stream of articles (matching
and non-matching), and verifies that awareness reaches exactly the right
instances' participants.
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.events.external import NewsServiceSource
from repro.metrics.report import render_table

N_WATCHES = 4
ARTICLES_PER_QUERY = 5
NOISE_ARTICLES = 10


def run_scenario():
    system = EnactmentSystem()
    watchers = []
    for index in range(N_WATCHES):
        participant = system.register_participant(
            Participant(f"u-{index}", f"watcher-{index}")
        )
        system.core.roles.define_role(f"watcher-{index}").add_member(participant)
        watchers.append(participant)

    process = ProcessActivitySchema("p-watch", "news-watch")
    process.add_activity_variable(
        ActivityVariable("watch", BasicActivitySchema("b-watch", "watch"))
    )
    process.mark_entry("watch")
    system.core.register_schema(process)

    news = NewsServiceSource()
    system.awareness.register_external_source("NewsEvent", news)

    correlators = []
    for index in range(N_WATCHES):
        window = system.awareness.create_window("p-watch")
        correlate = window.place("Filter_news", instance_name=f"match-{index}")
        window.connect(window.source("NewsEvent"), correlate, 0)
        window.output(
            correlate,
            RoleRef(f"watcher-{index}"),
            user_description=f"article for watch {index}",
            schema_name=f"AS_News{index}",
        )
        system.awareness.deploy(window)
        correlators.append(correlate)

    instances, queries = [], []
    for index in range(N_WATCHES):
        instance = system.coordination.start_process(process)
        query = news.register_query([f"topic-{index}"])
        correlators[index].bind_query(query, instance.instance_id)
        instances.append(instance)
        queries.append(query)
    noise_query = news.register_query(["unrelated"])  # never bound

    for index, query in enumerate(queries):
        for article in range(ARTICLES_PER_QUERY):
            news.publish_article(
                query, f"article-{index}-{article}", time=system.clock.tick()
            )
    for article in range(NOISE_ARTICLES):
        news.publish_article(
            noise_query, f"noise-{article}", time=system.clock.tick()
        )

    received = {
        watcher.name: len(system.participant_client(watcher).check_awareness())
        for watcher in watchers
    }
    return received, news.emitted


def test_ex51_external_events(benchmark, record_table):
    received, published = benchmark(run_scenario)

    # Every watcher got exactly their query's articles; noise went nowhere.
    assert all(count == ARTICLES_PER_QUERY for count in received.values())
    assert published == N_WATCHES * ARTICLES_PER_QUERY + NOISE_ARTICLES

    rows = [(name, ARTICLES_PER_QUERY, count) for name, count in received.items()]
    rows.append(("(noise query, unbound)", 0, 0))
    record_table(
        render_table(
            ("watcher", "articles matching query", "awareness received"),
            rows,
            title=(
                "EX51 — external news events correlated to process instances "
                f"({published} articles published)"
            ),
        )
    )
