"""FIG5 — Figure 5: the CMI run-time architecture.

Boots the full federation (CORE, Coordination, Service, Awareness engines;
participant and designer clients), runs the Section 5.4 scenario through
it, and verifies event flow between the architecture's components: engine
-> event source agents -> bus -> detector agent -> delivery agent ->
participant queue -> awareness viewer.
"""

from repro import EnactmentSystem, Participant
from repro.metrics.report import render_table
from repro.workloads.taskforce import TaskForceApplication


def boot_and_run():
    system = EnactmentSystem()
    leader = system.register_participant(Participant("u-lead", "lead"))
    member = system.register_participant(Participant("u-mem", "mem"))
    system.core.roles.define_role("epidemiologist").add_member(leader)
    system.core.roles.role("epidemiologist").add_member(member)
    app = TaskForceApplication(system)
    app.install_awareness()
    task_force = app.create_task_force(leader, [leader, member], 100)
    app.request_information(task_force, member, 80)
    app.change_task_force_deadline(task_force, 50)
    member_client = system.participant_client(member)
    notifications = member_client.check_awareness()
    return system, notifications


def test_fig5_architecture(benchmark, record_table):
    system, notifications = benchmark(boot_and_run)

    stats = system.stats()
    # Event flow across every Figure 5 component.
    assert stats["activity_events_gathered"] > 0     # Coordination -> source agent
    assert stats["context_events_gathered"] > 0      # CORE -> source agent
    assert stats["bus_events_published"] > 0         # agents -> bus
    assert stats["composites_recognized"] >= 1       # detector agent
    assert stats["notifications_delivered"] >= 1     # delivery agent
    assert len(notifications) == 1                   # client viewer

    rows = [
        ("CORE engine: instances", len(system.core.instances())),
        ("Coordination engine: work items", stats["work_items_total"]),
        ("source agents: activity events", stats["activity_events_gathered"]),
        ("source agents: context events", stats["context_events_gathered"]),
        ("event bus: events published", stats["bus_events_published"]),
        ("detector agents: composites", stats["composites_recognized"]),
        ("delivery agent: notifications", stats["notifications_delivered"]),
        ("client viewer: retrieved", len(notifications)),
    ]
    record_table(
        render_table(
            ("architecture component", "observed flow"),
            rows,
            title="FIG5 — CMI run-time architecture event flow (paper Figure 5)",
        )
    )
