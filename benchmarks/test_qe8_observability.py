"""QE8 — pipeline instrumentation overhead: enabled vs disabled.

Observability must be cheap enough to leave on in anger: the hot paths
check one process-wide flag, and when the flag is set every stage records
a span (head-sampled per trace), feeds the per-stage latency histogram,
and stamps events with recognition provenance.

Two measurements, one claim:

* **End-to-end (bounded < 1.3x)** — the Section 7 demonstration workload
  run through the full Figure 5 pipeline (event source agents → bus →
  detector DAGs → delivery agent → participant queues).  Per-event cost
  is wall-clock run time over primitive events published; this is the
  configuration a deployment would actually leave instrumentation on in,
  and the tentpole bounds it at < 1.3x the uninstrumented cost.

* **Operator-chain worst case (reported, sanity-bounded)** — a skeletal
  ``Filter_context`` → ``Count`` → ``Compare1`` → ``Output`` chain driven
  directly, with no engine or delivery work to amortise against.  Almost
  all the per-event time is operator dispatch, so this is the least
  favourable ratio the instrumentation can produce; it is reported in
  the experiment table and guarded by a loose 2x sanity bound.

Measurement protocol: the two modes run *paired*, back to back inside
each repetition, so slow machine drift (frequency scaling, background
load) hits both sides of the ratio equally; each mode's cost is the
best (minimum) time across repetitions — the standard estimator for the
noise-free cost of a CPU-bound loop.

Behavior must be identical in both modes: the same composites are
recognized and the same notifications delivered, and the enabled run
must additionally have produced provenance chains reaching the
primitive events and spans for every stage.
"""

import time

from repro.awareness.operators.compare import Compare1
from repro.awareness.operators.count import Count
from repro.awareness.operators.filters import ContextFilter
from repro.awareness.operators.output import Output
from repro.core.context import ContextChange
from repro.core.roles import RoleRef
from repro.events.producers import ContextEventProducer
from repro.metrics.report import render_table
from repro.observability import INSTRUMENTATION, instrumented
from repro.workloads import build_demonstration

N_EVENTS = 2_000
REPS = 7
SEED = 7

#: Acceptance bound: enabled instrumentation costs < 1.3x disabled on the
#: end-to-end pipeline.
MAX_OVERHEAD = 1.3

#: Sanity bound for the skeletal operator-chain worst case.
MAX_CHAIN_OVERHEAD = 2.0


# -- end-to-end: the Section 7 demonstration workload -----------------------


def run_demo(enabled: bool):
    """One full demonstration run; returns (seconds, published, delivered)."""
    builder = build_demonstration(seed=SEED)
    if enabled:
        with instrumented():
            started = time.perf_counter()
            builder.run()
            elapsed = time.perf_counter() - started
    else:
        started = time.perf_counter()
        builder.run()
        elapsed = time.perf_counter() - started
    return (
        elapsed,
        builder.system.bus.published_count(),
        builder.system.awareness.delivery.delivered,
    )


# -- worst case: a skeletal operator chain ----------------------------------


def build_chain():
    producer = ContextEventProducer()
    flt = ContextFilter("P-X", "Ctx", "field0", instance_name="watch-field0")
    count = Count("P-X", instance_name="changes-seen")
    compare = Compare1("P-X", lambda v: v >= 1, instance_name="at-least-one")
    output = Output(
        "P-X",
        RoleRef("reviewers"),
        user_description="field0 changed",
        schema_name="AS_FieldWatch",
        instance_name="notify-reviewers",
    )
    producer.add_consumer(
        lambda event, f=flt: f.consume(0, event), keys=flt.routing_keys(0)
    )
    flt.add_consumer(count.consume, 0)
    count.add_consumer(compare.consume, 0)
    compare.add_consumer(output.consume, 0)
    return producer, output


def make_changes():
    return [
        ContextChange(
            time=index,
            context_id="ctx-1",
            context_name="Ctx",
            associations=frozenset({("P-X", "proc-1")}),
            field_name="field0",
            old_value=index,
            new_value=index + 1,
        )
        for index in range(N_EVENTS)
    ]


def run_chain(changes, enabled: bool):
    """One fresh chain pass; returns (recognized, us_per_event)."""
    producer, output = build_chain()
    if enabled:
        with instrumented():
            started = time.perf_counter()
            producer.produce_batch(changes)
            elapsed = time.perf_counter() - started
    else:
        started = time.perf_counter()
        producer.produce_batch(changes)
        elapsed = time.perf_counter() - started
    return output.produced, elapsed / len(changes) * 1e6


# -- the experiment ---------------------------------------------------------


def drive() -> dict:
    changes = make_changes()
    run_chain(changes, enabled=False)  # warmup
    run_chain(changes, enabled=True)
    run_demo(enabled=False)
    run_demo(enabled=True)

    result: dict = {}
    demo_disabled = demo_enabled = None
    chain_disabled = chain_enabled = None
    for __ in range(REPS):
        result["recognized_disabled"], us = run_chain(changes, False)
        chain_disabled = us if chain_disabled is None else min(chain_disabled, us)
        result["recognized_enabled"], us = run_chain(changes, True)
        chain_enabled = us if chain_enabled is None else min(chain_enabled, us)

        elapsed, published, delivered = run_demo(False)
        result["published"] = published
        result["delivered_disabled"] = delivered
        demo_disabled = (
            elapsed if demo_disabled is None else min(demo_disabled, elapsed)
        )
        # The demo's enabled run goes last so the data the test inspects
        # (stage spans, delivery provenance) is the end-to-end pipeline's:
        # each `instrumented()` scope resets the recorders on entry.
        elapsed, __, delivered = run_demo(True)
        result["delivered_enabled"] = delivered
        demo_enabled = (
            elapsed if demo_enabled is None else min(demo_enabled, elapsed)
        )

    published = result["published"]
    result["demo_disabled_us"] = demo_disabled / published * 1e6
    result["demo_enabled_us"] = demo_enabled / published * 1e6
    result["demo_overhead"] = demo_enabled / demo_disabled
    result["chain_disabled_us"] = chain_disabled
    result["chain_enabled_us"] = chain_enabled
    result["chain_overhead"] = chain_enabled / chain_disabled
    return result


def test_qe8_observability_overhead(benchmark, record_table):
    result = benchmark.pedantic(drive, rounds=3, iterations=1)

    # Behavior-preserving: instrumentation changes nothing downstream.
    assert result["delivered_enabled"] == result["delivered_disabled"] > 0
    assert result["recognized_disabled"] == N_EVENTS
    assert result["recognized_enabled"] == N_EVENTS

    # The enabled runs actually observed the pipeline: spans for every
    # Figure 5 stage, and delivery chains reaching the primitive events.
    summary = INSTRUMENTATION.tracer.stage_summary()
    for stage in (
        "source.emit",
        "bus.dispatch",
        "operator.consume",
        "delivery.deliver",
        "queue.append",
    ):
        assert summary[stage][0] > 0, f"no spans recorded for {stage}"
    assert INSTRUMENTATION.tracer.recent(), "no root spans in the ring buffer"
    deliveries = INSTRUMENTATION.provenance.recent_deliveries()
    assert deliveries, "no delivery provenance recorded"
    assert any(
        record.chain is not None and record.chain.primitives()
        for record in deliveries
    ), "no delivery chain reaches a primitive event"

    overhead = result["demo_overhead"]
    record_table(
        render_table(
            ("workload", "mode", "us/event", "overhead"),
            [
                ("end-to-end", "disabled",
                 f"{result['demo_disabled_us']:.2f}", "1.00x"),
                ("end-to-end", "enabled",
                 f"{result['demo_enabled_us']:.2f}", f"{overhead:.2f}x"),
                ("operator-chain", "disabled",
                 f"{result['chain_disabled_us']:.2f}", "1.00x"),
                ("operator-chain", "enabled",
                 f"{result['chain_enabled_us']:.2f}",
                 f"{result['chain_overhead']:.2f}x"),
            ],
            title=(
                "QE8 — per-event cost of pipeline instrumentation "
                "(spans + provenance + stage histograms)"
            ),
        )
    )

    # The tentpole claim: full tracing + provenance costs < 1.3x on the
    # end-to-end pipeline, and stays sane even in the skeletal worst case.
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.2f}x exceeds "
        f"{MAX_OVERHEAD}x bound"
    )
    assert result["chain_overhead"] < MAX_CHAIN_OVERHEAD, (
        f"worst-case operator-chain overhead {result['chain_overhead']:.2f}x "
        f"exceeds {MAX_CHAIN_OVERHEAD}x sanity bound"
    )
