#!/usr/bin/env python3
"""Command and control: phased missions with sequence-aware escalation.

Section 2 lists command and control as the second domain with the paper's
awareness requirements.  This example models a phased mission and shows
three operators working together that the other examples don't combine:

* ``Seq`` — the mission phases (recon -> strike -> assess) must complete
  *in order*; the awareness schema recognizes the completed sequence and
  notifies mission command;
* ``And`` + deadline expiry — a *stalled mission* situation: the mission
  deadline passed (a timer-driven context event) AND recon completed but
  the strike phase never finished; delivered at URGENT priority through a
  push channel to the signed-on duty officer.

Run:  python examples/command_and_control.py
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.awareness.extensions import (
    CallbackChannel,
    ExtendedDeliveryAgent,
    Priority,
)
from repro.coordination.timers import TimerService, attach_deadline_monitors


def build_mission_schema(system):
    operator_role = RoleRef("operator")
    mission = ProcessActivitySchema("P-Mission", "mission")
    mission.add_context_schema(
        ContextSchema(
            "MissionContext",
            [
                ContextFieldSpec("deadline", "int"),
                ContextFieldSpec("deadline-expired", "int"),
                ContextFieldSpec("duty-officer", "role"),
            ],
        )
    )
    for phase in ("recon", "strike", "assess"):
        mission.add_activity_variable(
            ActivityVariable(
                phase,
                BasicActivitySchema(f"b-{phase}", phase, performer=operator_role),
                optional=(phase != "recon"),
            )
        )
    mission.mark_entry("recon")
    system.core.register_schema(mission)
    return mission


def build_awareness(system):
    window = system.awareness.create_window("P-Mission")

    def phase_done(phase):
        op = window.place(
            "Filter_activity", phase, None, {"Completed"},
            instance_name=f"{phase}-done",
        )
        window.connect(window.source("ActivityEvent"), op, 0)
        return op

    recon, strike, assess = (
        phase_done(p) for p in ("recon", "strike", "assess")
    )

    # Schema 1: the full phase sequence completed, in order.
    sequence = window.place("Seq", copy=3, arity=3, instance_name="phases-in-order")
    for slot, op in enumerate((recon, strike, assess)):
        window.connect(op, sequence, slot)
    window.output(
        sequence,
        RoleRef("mission-command"),
        user_description="Mission phases completed in order",
        schema_name="AS_MissionComplete",
    )

    # Schema 2: stalled — deadline expired AND recon done (strike wasn't).
    expired = window.place(
        "Filter_context", "MissionContext", "deadline-expired",
        instance_name="deadline-expired",
    )
    window.connect(window.source("ContextEvent"), expired, 0)
    stalled = window.place("And", copy=1, instance_name="stalled")
    window.connect(expired, stalled, 0)
    window.connect(recon, stalled, 1)
    window.output(
        stalled,
        RoleRef("duty-officer", "MissionContext"),
        user_description="Mission stalled: deadline passed after recon",
        schema_name="AS_Stalled",
    )
    system.awareness.deploy(window)
    return window


def run_mission(system, mission, duty_officer, complete_strike):
    instance = system.coordination.start_process(mission)
    ref = instance.context("MissionContext")
    system.core.create_scoped_role(ref, "duty-officer", (duty_officer,))
    # NOTE: the AM operator palette (faithfully) has no negation, so the
    # stalled-mission schema cannot say "strike did NOT complete"; give
    # healthy missions a deadline they comfortably beat instead.
    ref.set("deadline", system.clock.now() + (1000 if complete_strike else 30))

    operator = next(iter(system.core.roles.resolve_global("operator")))
    client = system.participant_client(operator)
    client.claim_and_complete_all()  # recon
    if complete_strike:
        system.coordination.start_optional_activity(instance, "strike")
        client.claim_and_complete_all()
        system.coordination.start_optional_activity(instance, "assess")
        client.claim_and_complete_all()
    system.clock.advance(40)  # past the deadline
    return instance


def main() -> None:
    system = EnactmentSystem()
    agent = ExtendedDeliveryAgent(system.core, queue=system.awareness.delivery.queue)
    system.awareness.delivery = agent

    commander = system.register_participant(Participant("u-cmd", "commander"))
    duty = system.register_participant(Participant("u-duty", "duty-officer"))
    op1 = system.register_participant(Participant("u-op", "operator-1"))
    system.core.roles.define_role("mission-command").add_member(commander)
    system.core.roles.define_role("operator").add_member(op1)

    mission = build_mission_schema(system)
    build_awareness(system)

    timers = TimerService(system.clock)
    attach_deadline_monitors(
        system.core, timers, "MissionContext", "deadline", "deadline-expired"
    )

    # Urgent stalled-mission alerts push straight to the duty officer.
    agent.set_priority("AS_Stalled", Priority.URGENT)
    push = agent.add_channel(CallbackChannel(), Priority.URGENT)
    pushed = []
    push.register(duty, pushed.append)
    duty.sign_on()

    print("mission A: all phases complete before the deadline")
    run_mission(system, mission, duty, complete_strike=True)
    for notification in system.participant_client(commander).check_awareness():
        print(f"  [command] {notification.description}")

    print("\nmission B: stalls after recon")
    run_mission(system, mission, duty, complete_strike=False)
    print(f"  urgent pushes to the duty officer: {len(pushed)}")
    for notification in pushed:
        print(f"  [push] {notification.description}")


if __name__ == "__main__":
    main()
