#!/usr/bin/env python3
"""Durable enactment: surviving a server restart.

The CMI prototype inherited persistence from IBM FlowMark; this
reproduction provides it through two mechanisms shown here end to end:

1. the **audit journal** (`repro.federation.journal`) — every CORE
   operation of the first "server" is journaled to disk; a second
   "server" recovers the exact instance trees, state histories, contexts,
   and scoped roles and *continues the same processes*;
2. the **persistent delivery queue** — awareness detected before the
   crash is still waiting for its participant after the restart.

Run:  python examples/durable_enactment.py
"""

import os
import tempfile

from repro import EnactmentSystem, Participant
from repro.coordination import CoordinationEngine
from repro.events.queues import SqliteDeliveryQueue
from repro.federation.journal import Journal, recover_core
from repro.workloads.taskforce import TaskForceApplication


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="cmi-durable-")
    journal_path = os.path.join(workdir, "audit.jsonl")
    queue_path = os.path.join(workdir, "queue.db")

    # ---- first server lifetime -------------------------------------------------
    journal = Journal()
    system = EnactmentSystem(
        queue=SqliteDeliveryQueue(queue_path), journal=journal
    )
    lee = system.register_participant(Participant("u-lee", "dr-lee"))
    kim = system.register_participant(Participant("u-kim", "dr-kim"))
    role = system.core.roles.define_role("epidemiologist")
    role.add_member(lee)
    role.add_member(kim)

    app = TaskForceApplication(system)
    app.install_awareness()
    task_force = app.create_task_force(lee, [lee, kim], deadline=200)
    app.request_information(task_force, kim, deadline=150)
    app.change_task_force_deadline(task_force, 120)  # violation detected

    print(f"server 1: journaled {len(journal)} operations")
    print(
        f"server 1: task force state = {task_force.process.current_state}, "
        f"kim's pending awareness = "
        f"{system.awareness.delivery.queue.pending_count('u-kim')}"
    )
    journal.save(journal_path)
    system.awareness.delivery.queue.close()
    print("server 1: crashed.\n")

    # ---- second server lifetime ---------------------------------------------------
    recovered_core = recover_core(Journal.load(journal_path))
    coordination = CoordinationEngine(recovered_core)
    queue = SqliteDeliveryQueue(queue_path)

    twin = recovered_core.instance(task_force.process.instance_id)
    print(f"server 2: recovered {len(recovered_core.instances())} instances")
    print(
        f"server 2: task force {twin.instance_id} state = "
        f"{twin.current_state} (history of "
        f"{len(twin.state_machine.history)} transitions intact)"
    )
    deadline = twin.context("TaskForceContext").get("TaskForceDeadline")
    print(f"server 2: TaskForceDeadline = {deadline} (set before the crash)")

    # The queued awareness survived too: kim signs on and reads it.
    pending = queue.retrieve("u-kim")
    print(f"server 2: dr-kim signs on and finds {len(pending)} notification(s):")
    for notification in pending:
        print(f"  [t={notification.time}] {notification.description}")

    # And the recovered engine keeps enacting: both open activities (the
    # assessment and the information request's gathering step) finish, and
    # the whole task force auto-completes — mid-flight work is never lost.
    for instance in [twin, *twin.descendants()]:
        if instance.is_closed() or hasattr(instance, "children"):
            continue
        if instance.current_state == "Ready":
            recovered_core.change_state(instance, "Running", user="dr-lee")
        coordination.complete_activity(instance, user="dr-lee")
    print(f"\nserver 2: open work finished; task force = {twin.current_state}")
    queue.close()


if __name__ == "__main__":
    main()
