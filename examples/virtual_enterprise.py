#!/usr/bin/env python3
"""Virtual-enterprise processes with the Service Model (Section 3).

The SM "supports reusable process activities and related resources,
service quality, and service agreements, as needed to support
collaboration processes in virtual enterprises".  In this scenario a
health agency's crisis process outsources lab analysis to one of two
provider organizations:

* both providers advertise a ``lab-analysis`` service with different QoS
  (cost / promised duration / availability);
* the agency negotiates an agreement by required QoS — selection picks the
  cheapest qualifying offer;
* the service is invoked as a subprocess through the coordination engine;
* completion is reported back and checked against the agreed duration —
  blowing the promise records an agreement violation;
* an awareness schema notifies the agency's coordinator when the
  outsourced analysis completes (awareness across organizational
  boundaries).

Run:  python examples/virtual_enterprise.py
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.service import QoSAttributes, ServiceDefinition


def provider_process(schema_id: str, provider: str) -> ProcessActivitySchema:
    """Each provider's reusable lab-analysis process."""
    analyze = BasicActivitySchema(
        f"{schema_id}/analyze",
        "analyze-samples",
        performer=RoleRef("lab-technician"),
    )
    process = ProcessActivitySchema(schema_id, "lab-analysis")
    process.add_activity_variable(ActivityVariable("analyze", analyze))
    process.mark_entry("analyze")
    return process


def main() -> None:
    system = EnactmentSystem()
    coordinator = system.register_participant(Participant("u-coord", "coordinator"))
    tech_a = system.register_participant(Participant("u-ta", "tech-at-quicklab"))
    tech_b = system.register_participant(Participant("u-tb", "tech-at-budgetlab"))
    system.core.roles.define_role("coordinator").add_member(coordinator)
    technicians = system.core.roles.define_role("lab-technician")
    technicians.add_member(tech_a)
    technicians.add_member(tech_b)

    designer = system.designer_client("enterprise-architect")

    # Two provider organizations advertise the same service name.
    quicklab = provider_process("p-quicklab", "quicklab")
    budgetlab = provider_process("p-budgetlab", "budgetlab")
    designer.register_process(quicklab)
    designer.register_process(budgetlab)
    designer.advertise_service(
        ServiceDefinition(
            "svc-quicklab", "lab-analysis", "QuickLab Inc.",
            quicklab, QoSAttributes(max_duration=20, cost=100, availability=0.99),
        )
    )
    designer.advertise_service(
        ServiceDefinition(
            "svc-budgetlab", "lab-analysis", "BudgetLab LLC",
            budgetlab, QoSAttributes(max_duration=80, cost=30, availability=0.95),
        )
    )

    # Awareness: the coordinator hears when any outsourced analysis closes.
    for schema in (quicklab, budgetlab):
        window = designer.open_awareness_window(schema.schema_id)
        done = window.place("Filter_activity", "analyze", None, {"Completed"})
        window.connect(window.source("ActivityEvent"), done, 0)
        window.output(
            done,
            RoleRef("coordinator"),
            user_description=f"outsourced analysis at {schema.schema_id} completed",
            schema_name=f"AS_Done_{schema.schema_id}",
        )
        designer.deploy_awareness(window)

    # Scenario 1: tight deadline — only QuickLab qualifies.
    urgent = QoSAttributes(max_duration=30, cost=150, availability=0.9)
    agreement = system.service.negotiate("health-agency", "lab-analysis", urgent)
    print(
        f"urgent request -> selected {agreement.service.provider} "
        f"(cost {agreement.service.qos.cost}, "
        f"promised <= {agreement.service.qos.max_duration} ticks)"
    )
    instance = system.service.invoke(agreement)
    system.clock.advance(10)
    system.participant_client(tech_a).claim_and_complete_all()
    system.participant_client(tech_b).claim_and_complete_all()
    system.service.record_completion(instance)
    print(f"  completed within agreement: violations = {agreement.violations}")

    # Scenario 2: relaxed deadline — the cheap provider wins, then blows it.
    relaxed = QoSAttributes(max_duration=100, cost=50, availability=0.9)
    agreement2 = system.service.negotiate("health-agency", "lab-analysis", relaxed)
    print(
        f"\nroutine request -> selected {agreement2.service.provider} "
        f"(cost {agreement2.service.qos.cost})"
    )
    instance2 = system.service.invoke(agreement2)
    system.clock.advance(150)  # the provider is slow this time
    system.participant_client(tech_a).claim_and_complete_all()
    system.participant_client(tech_b).claim_and_complete_all()
    system.service.record_completion(instance2)
    print(f"  agreement violations: {agreement2.violations}")

    # The coordinator's awareness viewer saw both completions.
    print("\ncoordinator awareness:")
    for notification in system.participant_client(coordinator).check_awareness():
        print(f"  [t={notification.time}] {notification.description}")


if __name__ == "__main__":
    main()
