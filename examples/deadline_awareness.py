#!/usr/bin/env python3
"""The Section 5.4 worked example: deadline-violation awareness.

Reproduces the paper's flagship scenario exactly:

* a health crisis leader creates a task force with a deadline
  (``TaskForceContext.TaskForceDeadline``);
* a member files an information request with its own earlier deadline
  (``InfoRequestContext.RequestDeadline``), becoming the ``Requestor``
  scoped role;
* the awareness schema ``AS_InfoRequest = (AD, Requestor, Identity)`` with
  ``AD = Compare2[InfoRequest, <=](op1, op2)`` watches both deadlines;
* when the leader moves the task-force deadline to or before the request
  deadline, exactly the requestor is notified — and can renegotiate or
  cancel.

Run:  python examples/deadline_awareness.py
"""

from repro import EnactmentSystem, Participant
from repro.workloads.taskforce import TaskForceApplication


def main() -> None:
    system = EnactmentSystem()
    lee = system.register_participant(Participant("u-lee", "dr-lee"))
    kim = system.register_participant(Participant("u-kim", "dr-kim"))
    park = system.register_participant(Participant("u-park", "dr-park"))
    role = system.core.roles.define_role("epidemiologist")
    for person in (lee, kim, park):
        role.add_member(person)

    app = TaskForceApplication(system)
    schema = app.install_awareness()
    print("Deployed awareness schema (Figure 6, right-hand DAG):")
    print(app.window.render())
    print()

    # dr-lee creates the task force; deadline tick 200.
    task_force = app.create_task_force(lee, [lee, kim, park], deadline=200)
    print(f"task force created, deadline={task_force.deadline}")

    # dr-kim requests external information, due at tick 150.
    request = app.request_information(task_force, kim, deadline=150)
    print(f"dr-kim filed an information request, deadline={request.deadline}")

    # The external situation worsens: dr-lee pulls the deadline to 120.
    app.change_task_force_deadline(task_force, 120)
    print("\ndr-lee moved the task force deadline to 120 (120 <= 150!)")

    for person in (lee, kim, park):
        client = system.participant_client(person)
        notifications = client.check_awareness()
        marker = f"{len(notifications)} notification(s)"
        for notification in notifications:
            marker += f" -> {notification.description!r}"
        print(f"  {person.name:8s}: {marker}")

    # dr-kim renegotiates below the new task force deadline.
    app.change_request_deadline(request, 100)
    print("\ndr-kim renegotiated the request deadline to 100")
    app.change_task_force_deadline(task_force, 110)
    print("dr-lee moved the deadline to 110 (harmless: 110 <= 100 is false)")
    print(
        f"  dr-kim notifications: "
        f"{len(system.participant_client(kim).check_awareness())}"
    )

    # After the request completes, its Requestor role expires: the
    # delivery interval is over (Section 1).
    app.complete_request(request)
    app.change_task_force_deadline(task_force, 10)
    print("\nafter the request completed, a violating move delivers nothing:")
    print(
        f"  dr-kim notifications: "
        f"{len(system.participant_client(kim).check_awareness())}"
    )
    print(
        f"  undeliverable (role expired): "
        f"{len(system.awareness.delivery.undeliverable)}"
    )


if __name__ == "__main__":
    main()
