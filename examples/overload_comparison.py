#!/usr/bin/env python3
"""Information-overload comparison: CMI vs the Section 2 baselines.

Runs the QE1 synthetic crisis workload — task forces, information
requests, deadline moves — with every awareness mechanism observing the
same run, and prints precision/recall/overload tables (see DESIGN.md,
experiment QE1, and EXPERIMENTS.md for the expected shape).

Run:  python examples/overload_comparison.py [task_forces] [seed]
"""

import sys

from repro.workloads.generator import CrisisWorkload, WorkloadConfig


def main(task_forces: int = 6, seed: int = 11) -> None:
    config = WorkloadConfig(
        task_forces=task_forces,
        members_per_force=4,
        requests_per_force=2,
        deadline_moves_per_force=2,
        violation_probability=0.5,
        participant_pool=12,
        seed=seed,
    )
    print(
        f"running crisis workload: {config.task_forces} task forces, "
        f"{config.participant_pool} participants, seed {config.seed}\n"
    )
    result = CrisisWorkload(config).run()
    print(result.table("raw"))
    print()
    print(result.table("digested"))
    print(
        "\nreading guide: 'raw' credits a mechanism when the undigested "
        "primitive event reached the right user at the right time; "
        "'digested' only when the situation was delivered as composed "
        "awareness information. Only CMI can digest the two-source "
        "deadline comparison (Section 5.4)."
    )


if __name__ == "__main__":
    task_forces = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    main(task_forces, seed)
