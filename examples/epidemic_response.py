#!/usr/bin/env python3
"""The Figure 1 epidemic information-gathering scenario.

Plays one full course of the crisis process: the three mandatory task
forces, run-time decisions about the vector-of-transmission task force,
sequential lab tests that stop at the first positive result (with the
Section 2 awareness schema notifying the stakeholders), and optional
rounds of invited local expertise.  Prints the Figure 1-style timeline.

Run:  python examples/epidemic_response.py [seed]
"""

import sys

from repro import EnactmentSystem
from repro.workloads.epidemic import EpidemicScenario


def main(seed: int = 7) -> None:
    system = EnactmentSystem()
    scenario = EpidemicScenario(system, seed=seed)
    report = scenario.run()

    print(f"=== Epidemic response (seed {seed}) ===\n")
    print(report.timeline)
    print()
    print(f"lab tests run:         {report.lab_tests_run}")
    if report.positive_test is not None:
        print(
            f"positive result:       test #{report.positive_test} — remaining "
            f"tests skipped (Section 2 requirement)"
        )
    else:
        print("positive result:       none (all tests negative)")
    print(f"vector task force:     {'yes' if report.vector_tf_started else 'no'}")
    print(f"expertise invited:     {report.expertise_rounds} round(s)")
    print(f"process state:         {report.process.current_state}")

    print("\nawareness delivered to lab stakeholders:")
    for name, count in report.notifications_by_participant.items():
        print(f"  {name:16s}: {count}")

    print("\nsystem statistics:")
    for key, value in system.stats().items():
        print(f"  {key:28s}: {value}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
