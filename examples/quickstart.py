#!/usr/bin/env python3
"""Quickstart: a process, a worklist, and one awareness schema.

This walks the smallest useful slice of the library:

1. boot the CMI enactment system (Figure 5 of the paper);
2. specify a two-step process with the designer client;
3. author an awareness schema: notify reviewers when drafting completes;
4. run the process through participants' worklists;
5. read the delivered awareness from the viewer.

Run:  python examples/quickstart.py
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    DependencyType,
    DependencyVariable,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)


def main() -> None:
    # 1. Boot the federation: CORE + Coordination + Service + Awareness.
    system = EnactmentSystem()
    alice = system.register_participant(Participant("u-alice", "alice"))
    bob = system.register_participant(Participant("u-bob", "bob"))
    authors = system.core.roles.define_role("author")
    reviewers = system.core.roles.define_role("reviewer")
    authors.add_member(alice)
    reviewers.add_member(bob)

    # 2. Process specification: draft -> review, each owned by a role.
    designer = system.designer_client("hans")
    draft = BasicActivitySchema("b-draft", "draft-report", performer=RoleRef("author"))
    review = BasicActivitySchema(
        "b-review", "review-report", performer=RoleRef("reviewer")
    )
    process = ProcessActivitySchema("p-report", "incident-report")
    process.add_activity_variable(ActivityVariable("draft", draft))
    process.add_activity_variable(ActivityVariable("review", review))
    process.add_dependency(
        DependencyVariable("then", DependencyType.SEQUENCE, ("draft",), "review")
    )
    process.mark_entry("draft")
    designer.register_process(process)

    # 3. Awareness specification (Section 6.2's three steps): place a
    #    filter on the activity-event source, connect it, root it with an
    #    output operator carrying the delivery instructions.
    window = designer.open_awareness_window("p-report")
    done = window.place("Filter_activity", "draft", None, {"Completed"})
    window.connect(window.source("ActivityEvent"), done, 0)
    window.output(
        done,
        delivery_role=RoleRef("reviewer"),
        assignment_name="identity",
        user_description="A draft is ready for your review",
        schema_name="AS_DraftDone",
    )
    print(window.render())
    designer.deploy_awareness(window)

    # 4. Enactment: alice drafts, the dependency routes to bob.
    instance = system.coordination.start_process(process)
    alice_client = system.participant_client(alice)
    item = alice_client.work_items()[0]
    alice_client.claim(item)
    alice_client.complete(item)

    # 5. Awareness delivery: bob learns about it without polling a monitor.
    bob_client = system.participant_client(bob)
    for notification in bob_client.check_awareness():
        print(f"\n[bob's viewer] {notification.description}")

    # bob finishes the review; the process completes automatically.
    bob_client.claim_and_complete_all()
    print(f"\nprocess state: {instance.current_state}")
    print(f"system stats:  {system.stats()}")


if __name__ == "__main__":
    main()
