#!/usr/bin/env python3
"""The awareness specification language plus the Section 6.5 extensions.

Two things the library adds on top of the paper's implemented core:

1. the **awareness specification language** (Section 5 names it; this is
   its textual form, using the paper's ``Eop[params](inputs)`` notation) —
   the Section 5.4 schema is authored as five lines of text and can be
   decompiled back to text for persistence;
2. the **future-work extensions** of Section 6.5 — priority levels, a
   push notification channel for signed-on users, delivery-side
   suppression of bursts, and a follow-on action that reacts to the
   awareness event automatically.

Run:  python examples/dsl_and_extensions.py
"""

from repro import EnactmentSystem, Participant
from repro.awareness.dsl import compile_specification, window_to_dsl
from repro.awareness.extensions import (
    CallbackChannel,
    ExtendedDeliveryAgent,
    Priority,
    aggregate_notifications,
)
from repro.workloads.taskforce import TaskForceApplication

SPEC = """
# Section 5.4, in the awareness specification language.
op1 = Filter_context[TaskForceContext, TaskForceDeadline](ContextEvent)
op2 = Filter_context[InfoRequestContext, RequestDeadline](ContextEvent)
violation = Compare2[<=](op1, op2)
deliver violation to InfoRequestContext.Requestor using identity \\
    as "Task force deadline moved before your request deadline" \\
    named AS_InfoRequest
"""


def main() -> None:
    system = EnactmentSystem()
    # Swap in the extended delivery agent before any deployment.
    agent = ExtendedDeliveryAgent(
        system.core, queue=system.awareness.delivery.queue
    )
    system.awareness.delivery = agent

    lee = system.register_participant(Participant("u-lee", "dr-lee"))
    kim = system.register_participant(Participant("u-kim", "dr-kim"))
    role = system.core.roles.define_role("epidemiologist")
    role.add_member(lee)
    role.add_member(kim)

    app = TaskForceApplication(system)

    # 1. Author the awareness schema from text.
    window = system.awareness.create_window(app.info_request_schema.schema_id)
    compile_specification(window, SPEC)
    system.awareness.deploy(window)
    print("specification (decompiled from the live window):")
    print(window_to_dsl(window))

    # 2. Extensions: deadline violations are URGENT; urgent notifications
    #    are pushed immediately to signed-on users; repeats within 5 ticks
    #    are suppressed; a follow-on logs an audit entry automatically.
    agent.set_priority("AS_InfoRequest", Priority.URGENT)
    push = agent.add_channel(CallbackChannel(), Priority.HIGH)
    agent.set_suppression_gap(5)
    audit_log = []
    agent.add_follow_on(
        "AS_InfoRequest",
        lambda event, receivers: audit_log.append(
            f"t={event.time}: deadline violation routed to "
            f"{sorted(p.name for p in receivers)}"
        ),
    )

    pushed = []
    push.register(kim, lambda n: pushed.append(n))
    kim.sign_on()

    # 3. Run the scenario: one violation, then a burst of three more.
    task_force = app.create_task_force(lee, [lee, kim], 200)
    app.request_information(task_force, kim, 150)
    app.change_task_force_deadline(task_force, 120)   # violation (pushed)
    for deadline in (119, 118, 117):                  # burst: suppressed
        system.clock.advance(1)
        app.change_task_force_deadline(task_force, deadline)
    system.clock.advance(50)
    app.change_task_force_deadline(task_force, 60)    # past the gap: delivered

    print(f"pushed immediately to dr-kim's live viewer: {len(pushed)}")
    print(f"suppressed burst repeats: {agent.suppressed}")
    print("audit log from the follow-on action:")
    for line in audit_log:
        print(f"  {line}")

    # 4. The viewer digests whatever reached the queue.
    pending = agent.queue.retrieve(kim.participant_id)
    print(f"\nqueued notifications: {len(pending)}; digest view:")
    for digest in aggregate_notifications(pending, gap=10):
        print(f"  {digest.render()}")


if __name__ == "__main__":
    main()
