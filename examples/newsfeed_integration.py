#!/usr/bin/env python3
"""External situation awareness: the news-service example (Section 5.1.1).

AM is open: events from outside the process enactment arena join awareness
descriptions through application-specific operators.  Here a task force
registers keyword queries with a news service; article events carry the
query id, and a ``Filter_news`` correlation operator relates them back to
the owning process instance, so only the interested task force hears about
them — combined, via ``And``, with a process-internal condition (the task
force must have completed its assessment) to show mixing external and
process events in one description.

Run:  python examples/newsfeed_integration.py
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)
from repro.events.external import NewsServiceSource


def main() -> None:
    system = EnactmentSystem()
    ana = system.register_participant(Participant("u-ana", "analyst-ana"))
    raj = system.register_participant(Participant("u-raj", "analyst-raj"))
    analysts = system.core.roles.define_role("analyst")
    analysts.add_member(ana)
    analysts.add_member(raj)

    # A watch process: assess the situation, then track the news.
    assess = BasicActivitySchema("b-assess", "assess", performer=RoleRef("analyst"))
    process = ProcessActivitySchema("p-watch", "media-watch")
    process.add_activity_variable(ActivityVariable("assess", assess))
    process.mark_entry("assess")
    system.core.register_schema(process)

    # Register the external source with the awareness engine, then author
    # the description: (assessment completed) AND (article matched query).
    news = NewsServiceSource()
    system.awareness.register_external_source("NewsEvent", news)
    window = system.awareness.create_window("p-watch")
    correlate = window.place("Filter_news", instance_name="match-query")
    assessed = window.place(
        "Filter_activity", "assess", None, {"Completed"}, instance_name="assessed"
    )
    both = window.place("And", copy=1, instance_name="assessed-and-news")
    window.connect(window.source("NewsEvent"), correlate, 0)
    window.connect(window.source("ActivityEvent"), assessed, 0)
    window.connect(correlate, both, 0)
    window.connect(assessed, both, 1)
    window.output(
        both,
        delivery_role=RoleRef("analyst"),
        user_description="Relevant news article found after assessment",
        schema_name="AS_NewsAfterAssessment",
    )
    print(window.render())
    system.awareness.deploy(window)

    # Two watch instances with different queries.
    watch_a = system.coordination.start_process(process)
    watch_b = system.coordination.start_process(process)
    query_a = news.register_query(["outbreak", "region-9"])
    query_b = news.register_query(["earthquake", "coast"])
    correlate.bind_query(query_a, watch_a.instance_id)
    correlate.bind_query(query_b, watch_b.instance_id)

    # Article for A arrives before A's assessment completed: held by And.
    news.publish_article(query_a, "Region-9 cases double", time=system.clock.tick())
    print("\narticle published before assessment -> no awareness yet:")
    print(f"  ana: {len(system.participant_client(ana).check_awareness())}")

    # Analysts complete the assessments.
    system.participant_client(ana).claim_and_complete_all()

    # The next matching article completes the conjunction for instance A.
    news.publish_article(query_a, "WHO statement on region-9", time=system.clock.tick())
    print("\narticle published after assessment -> analysts notified:")
    for person in (ana, raj):
        notifications = system.participant_client(person).check_awareness()
        for notification in notifications:
            print(f"  {person.name}: {notification.description}")

    # Instance B's query never matched: no cross-talk.
    print(f"\nbus stats: {system.awareness.stats()}")


if __name__ == "__main__":
    main()
