#!/usr/bin/env python3
"""Telecommunications service provisioning with cross-process awareness.

Section 2 notes that the crisis-management awareness requirements "also
exist in command and control, and telecommunications service provisioning
applications".  This example is the telecom case, and it exercises the
**process invocation (Translate) operator** end to end:

* an *order* process invokes a *provisioning* subprocess per order;
* the provisioning process tracks its progress in a ``ProvisioningContext``
  (``attempts`` counter and ``status`` field);
* the order-level awareness schema is authored **in the order window**,
  composing the order's own events with the subprocess's events lifted by
  ``Translate[P-Order, P-Provisioning, provisioning]`` — exactly the
  paper's "events associated with one process schema translated into
  events associated with a different process schema";
* the account manager (an order-scoped role) is notified when provisioning
  of *their* order needs escalation (3+ failed attempts), while other
  orders' troubles stay silent.

Run:  python examples/telecom_provisioning.py
"""

from repro import (
    ActivityVariable,
    BasicActivitySchema,
    ContextFieldSpec,
    ContextSchema,
    EnactmentSystem,
    Participant,
    ProcessActivitySchema,
    RoleRef,
)

ORDER_SCHEMA = "P-Order"
PROVISIONING_SCHEMA = "P-Provisioning"


def build_schemas(system):
    technician = RoleRef("field-technician")
    provisioning = ProcessActivitySchema(PROVISIONING_SCHEMA, "provisioning")
    provisioning.add_context_schema(
        ContextSchema(
            "ProvisioningContext",
            [
                ContextFieldSpec("attempts", "int"),
                ContextFieldSpec("status", "str"),
            ],
        )
    )
    provisioning.add_activity_variable(
        ActivityVariable(
            "configure",
            BasicActivitySchema("b-conf", "configure-line", performer=technician),
        )
    )
    provisioning.mark_entry("configure")

    order = ProcessActivitySchema(ORDER_SCHEMA, "service-order")
    order.add_context_schema(
        ContextSchema(
            "OrderContext", [ContextFieldSpec("account-manager", "role")]
        )
    )
    order.add_activity_variable(
        ActivityVariable(
            "intake",
            BasicActivitySchema("b-intake", "order-intake", performer=technician),
        )
    )
    order.add_activity_variable(
        ActivityVariable("provisioning", provisioning, optional=True)
    )
    order.mark_entry("intake")
    system.core.register_schema(order)
    return order, provisioning


def build_awareness(system):
    """The order-window DAG: Translate lifts provisioning attempt counts."""
    window = system.awareness.create_window(ORDER_SCHEMA)

    # A filter over the *invoked* schema's context events (explicit P).
    from repro.awareness.operators.filters import ContextFilter

    attempts = window.place_operator(
        ContextFilter(
            PROVISIONING_SCHEMA,
            "ProvisioningContext",
            "attempts",
            instance_name="attempts",
        )
    )
    window.connect(window.source("ContextEvent"), attempts, 0)

    lifted = window.place(
        "Translate",
        PROVISIONING_SCHEMA,
        "provisioning",
        instance_name="lift-to-order",
    )
    window.connect(window.source("ActivityEvent"), lifted, 0)
    window.connect(attempts, lifted, 1)

    escalate = window.place(
        "Compare1", lambda count: count >= 3, instance_name="needs-escalation"
    )
    window.connect(lifted, escalate, 0)

    window.output(
        escalate,
        delivery_role=RoleRef("account-manager", "OrderContext"),
        user_description=(
            "Provisioning of your order failed three times; escalate"
        ),
        schema_name="AS_Escalate",
    )
    print(window.render())
    system.awareness.deploy(window)


def main() -> None:
    system = EnactmentSystem()
    mia = system.register_participant(Participant("u-mia", "manager-mia"))
    noah = system.register_participant(Participant("u-noah", "manager-noah"))
    tech = system.register_participant(Participant("u-tech", "technician"))
    system.core.roles.define_role("field-technician").add_member(tech)

    order_schema, __ = build_schemas(system)
    build_awareness(system)

    # Two orders, each with its own account manager (scoped role).
    orders = []
    for manager in (mia, noah):
        order = system.coordination.start_process(order_schema)
        system.core.create_scoped_role(
            order.context("OrderContext"), "account-manager", (manager,)
        )
        provisioning = system.coordination.start_optional_activity(
            order, "provisioning"
        )
        orders.append((order, provisioning, manager))

    # Order 1's provisioning fails three times; order 2's succeeds at once.
    trouble = orders[0][1].context("ProvisioningContext")
    for attempt in (1, 2, 3):
        system.clock.advance(2)
        trouble.set("attempts", attempt)
        trouble.set("status", "failed")
    smooth = orders[1][1].context("ProvisioningContext")
    smooth.set("attempts", 1)
    smooth.set("status", "active")

    print("after provisioning attempts:")
    for __, ___, manager in orders:
        notifications = system.participant_client(manager).check_awareness()
        print(f"  {manager.name:14s}: {len(notifications)} notification(s)")
        for notification in notifications:
            print(f"      {notification.description}")


if __name__ == "__main__":
    main()
