"""repro — a reproduction of the Collaboration Management Infrastructure.

This library reimplements, from scratch and in pure Python, the CMI system
of Baker, Georgakopoulos, Schuster, Cassandra and Cichocki: a federated
collaboration-management system providing *customized process and
situation awareness* on top of a workflow substrate.

Layers (bottom-up; see DESIGN.md for the full inventory):

* :mod:`repro.core` — the CMM CORE model: activity state schemas, resources,
  contexts, scoped roles, and the CORE engine;
* :mod:`repro.coordination` — the Coordination Model: enactment, dependency
  routing, and worklists (the IBM FlowMark role in the prototype);
* :mod:`repro.service` — the Service Model: reusable activities, QoS, and
  agreements;
* :mod:`repro.events` — the event substrate (the CEDMOS role): self-contained
  events, pub/sub, primitive producers, persistent delivery queues;
* :mod:`repro.awareness` — the Awareness Model, the paper's contribution:
  event operators, awareness descriptions/schemas, detector and delivery
  agents;
* :mod:`repro.federation` — the Figure 5 architecture: the enactment system
  and the participant/designer clients;
* :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.metrics` —
  the Section 2 comparators, the crisis scenarios, and the measurement kit
  used by the benchmark suite.

Quickstart::

    from repro import EnactmentSystem, Participant

    system = EnactmentSystem()
    alice = system.register_participant(Participant("u1", "alice"))
    ...  # see examples/quickstart.py

"""

from .clock import LogicalClock
from .core import (
    ActivityVariable,
    BasicActivitySchema,
    ContextSchema,
    CoreEngine,
    DependencyType,
    DependencyVariable,
    Participant,
    ProcessActivitySchema,
    generic_activity_state_schema,
)
from .core.context import ContextFieldSpec
from .core.roles import RoleRef
from .errors import ReproError
from .federation import EnactmentSystem

__version__ = "1.0.0"

__all__ = [
    "ActivityVariable",
    "BasicActivitySchema",
    "ContextFieldSpec",
    "ContextSchema",
    "CoreEngine",
    "DependencyType",
    "DependencyVariable",
    "EnactmentSystem",
    "LogicalClock",
    "Participant",
    "ProcessActivitySchema",
    "ReproError",
    "RoleRef",
    "__version__",
    "generic_activity_state_schema",
]
