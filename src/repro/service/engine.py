"""The Service Engine (Figure 5): agreement management and invocation.

The engine connects the service registry to process enactment: a consumer
negotiates an agreement (:meth:`ServiceEngine.negotiate`), then invokes the
service (:meth:`ServiceEngine.invoke`), which starts the service's process
schema as a subprocess through the coordination engine and tracks the
agreement's QoS.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ServiceError
from ..coordination.engine import CoordinationEngine
from ..core.instances import ProcessInstance
from ..ids import IdFactory
from .model import (
    QoSAttributes,
    ServiceAgreement,
    ServiceDefinition,
    ServiceRegistry,
)


class ServiceEngine:
    """Registry + agreements + invocation over the coordination engine."""

    def __init__(
        self,
        coordination: CoordinationEngine,
        registry: Optional[ServiceRegistry] = None,
    ) -> None:
        self.coordination = coordination
        self.registry = registry or ServiceRegistry()
        self._agreements: Dict[str, ServiceAgreement] = {}
        self._invocation_start: Dict[str, Tuple[str, int]] = {}
        self._ids = IdFactory()

    # -- agreements ----------------------------------------------------------------

    def negotiate(
        self,
        consumer: str,
        service_name: str,
        required_qos: Optional[QoSAttributes] = None,
    ) -> ServiceAgreement:
        """Select a qualifying service and pin an agreement."""
        service = self.registry.select(service_name, required_qos)
        agreement = ServiceAgreement(
            agreement_id=self._ids.new("sla"),
            service=service,
            consumer=consumer,
            agreed_qos=required_qos or service.qos,
        )
        self._agreements[agreement.agreement_id] = agreement
        return agreement

    def agreement(self, agreement_id: str) -> ServiceAgreement:
        try:
            return self._agreements[agreement_id]
        except KeyError:
            raise ServiceError(f"unknown agreement {agreement_id!r}") from None

    # -- invocation -----------------------------------------------------------------

    def invoke(
        self,
        agreement: ServiceAgreement,
        parent: Optional[ProcessInstance] = None,
        activity_variable_name: Optional[str] = None,
    ) -> ProcessInstance:
        """Start the agreed service's process (top-level or as subprocess)."""
        if agreement.agreement_id not in self._agreements:
            raise ServiceError(
                f"agreement {agreement.agreement_id!r} is not registered "
                f"with this service engine"
            )
        agreement.record_invocation()
        instance = self.coordination.start_process(
            agreement.service.process_schema,
            parent=parent,
            activity_variable_name=activity_variable_name,
        )
        self._invocation_start[instance.instance_id] = (
            agreement.agreement_id,
            self.coordination.core.clock.now(),
        )
        return instance

    def record_completion(self, instance: ProcessInstance) -> None:
        """Report a finished invocation back to its agreement's QoS check."""
        entry = self._invocation_start.pop(instance.instance_id, None)
        if entry is None:
            raise ServiceError(
                f"instance {instance.instance_id!r} is not a tracked "
                f"service invocation"
            )
        agreement_id, started = entry
        duration = self.coordination.core.clock.now() - started
        self._agreements[agreement_id].record_completion(duration)
