"""Service definitions, quality attributes, and agreements.

A *service* wraps a reusable process activity schema so several
collaboration processes (possibly in different organizations of a virtual
enterprise) can invoke it.  Services advertise :class:`QoSAttributes`;
consumers select a service by QoS and pin the terms in a
:class:`ServiceAgreement`, which invocation then checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..core.schema import ProcessActivitySchema


@dataclass(frozen=True)
class QoSAttributes:
    """Advertised service quality.

    * ``max_duration`` — promised upper bound on completion (clock ticks);
    * ``cost`` — abstract per-invocation cost units;
    * ``availability`` — fraction of requests the provider promises to
      accept (0..1], used by selection as a ranking criterion.
    """

    max_duration: int
    cost: int = 0
    availability: float = 1.0

    def __post_init__(self) -> None:
        if self.max_duration <= 0:
            raise ServiceError(
                f"max_duration must be positive, got {self.max_duration}"
            )
        if self.cost < 0:
            raise ServiceError(f"cost must be non-negative, got {self.cost}")
        if not 0.0 < self.availability <= 1.0:
            raise ServiceError(
                f"availability must be in (0, 1], got {self.availability}"
            )

    def satisfies(self, required: "QoSAttributes") -> bool:
        """True when this offer meets or beats *required* on every axis."""
        return (
            self.max_duration <= required.max_duration
            and self.cost <= required.cost
            and self.availability >= required.availability
        )


@dataclass(frozen=True)
class ServiceDefinition:
    """A reusable process activity offered by a provider."""

    service_id: str
    name: str
    provider: str
    process_schema: ProcessActivitySchema
    qos: QoSAttributes


@dataclass
class ServiceAgreement:
    """Pinned terms between a consumer and a provider for one service."""

    agreement_id: str
    service: ServiceDefinition
    consumer: str
    agreed_qos: QoSAttributes
    invocations: int = 0
    violations: List[str] = field(default_factory=list)

    def record_invocation(self) -> None:
        self.invocations += 1

    def record_completion(self, duration: int) -> None:
        """Check the observed duration against the agreed QoS."""
        if duration > self.agreed_qos.max_duration:
            self.violations.append(
                f"invocation took {duration} ticks, agreed "
                f"max {self.agreed_qos.max_duration}"
            )


class ServiceRegistry:
    """Provider-side registry with QoS-based selection."""

    def __init__(self) -> None:
        self._services: Dict[str, ServiceDefinition] = {}

    def advertise(self, service: ServiceDefinition) -> ServiceDefinition:
        if service.service_id in self._services:
            raise ServiceError(f"duplicate service id {service.service_id!r}")
        self._services[service.service_id] = service
        return service

    def service(self, service_id: str) -> ServiceDefinition:
        try:
            return self._services[service_id]
        except KeyError:
            raise ServiceError(f"unknown service {service_id!r}") from None

    def services(self) -> Tuple[ServiceDefinition, ...]:
        return tuple(self._services.values())

    def select(
        self,
        name: str,
        required_qos: Optional[QoSAttributes] = None,
    ) -> ServiceDefinition:
        """Pick the best offer for *name* that satisfies *required_qos*.

        Ranking: cheapest first, then fastest, then most available
        (deterministic tie-break by service id).  Raises
        :class:`ServiceError` when nothing qualifies — a virtual-enterprise
        process should fail loudly rather than silently degrade.
        """
        candidates = [s for s in self._services.values() if s.name == name]
        if required_qos is not None:
            candidates = [s for s in candidates if s.qos.satisfies(required_qos)]
        if not candidates:
            raise ServiceError(
                f"no service named {name!r} satisfies the required QoS"
            )
        candidates.sort(
            key=lambda s: (
                s.qos.cost,
                s.qos.max_duration,
                -s.qos.availability,
                s.service_id,
            )
        )
        return candidates[0]
