"""Service Model (SM) — reusable activities, quality, agreements (§3).

"The Service Model supports reusable process activities and related
resources, service quality, and service agreements, as needed to support
collaboration processes in virtual enterprises."

The SM is out of the awareness paper's scope (it is detailed in the
companion TR [7]); this package implements the minimal faithful surface
the Figure 5 architecture requires: a service registry holding reusable
process activities with QoS attributes, service agreements between
providers and consumers, and QoS-based selection + invocation through the
coordination engine.
"""

from .engine import ServiceEngine
from .model import QoSAttributes, ServiceAgreement, ServiceDefinition, ServiceRegistry

__all__ = [
    "QoSAttributes",
    "ServiceAgreement",
    "ServiceDefinition",
    "ServiceEngine",
    "ServiceRegistry",
]
