"""Common baseline interface: uniform delivery records.

Every awareness mechanism under comparison — CMI and each Section 2
baseline — ultimately *delivers pieces of information to participants*.
:class:`Delivery` is the uniform record of one such act:

* ``participant_id`` — who received it;
* ``key`` — what information it was, as an opaque tuple the benchmark can
  match against its ground-truth relevance labels (e.g.
  ``("deadline-violation", "proc-7")`` or ``("state-change", "act-12",
  "Completed")``);
* ``time`` — when it was delivered (clock ticks).

:class:`BaselineAdapter` is the minimal surface the overload metrics need;
adapters hook the live system (bus topics, worklist manager, or delivery
queue) and accumulate deliveries as the workload runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Delivery:
    """One piece of information reaching one participant."""

    participant_id: str
    key: Tuple
    time: int


class BaselineAdapter:
    """Base: accumulate deliveries; subclasses install their own hooks."""

    #: Human-readable mechanism name used in benchmark tables.
    mechanism = "baseline"

    def __init__(self) -> None:
        self._deliveries: List[Delivery] = []

    def record(self, participant_id: str, key: Tuple, time: int) -> None:
        self._deliveries.append(Delivery(participant_id, key, time))

    def deliveries(self) -> Tuple[Delivery, ...]:
        return tuple(self._deliveries)

    def deliveries_per_participant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for delivery in self._deliveries:
            counts[delivery.participant_id] = (
                counts.get(delivery.participant_id, 0) + 1
            )
        return counts

    def total(self) -> int:
        return len(self._deliveries)
