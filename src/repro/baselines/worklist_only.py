"""The WfMS "worker" baseline: worklist-only awareness.

"WfMSs currently assume that participants in a process are either 'workers'
that need to be aware only of the activities assigned to them, or
'managers' ..." (Section 2).  A worker's entire awareness is their
worklist: they learn that an activity was offered to them, and nothing
else — no context changes, no cross-activity situations, no external
events.

The adapter polls the worklist manager after every activity event and
records a delivery per (participant, newly offered item).
"""

from __future__ import annotations

from typing import Set, Tuple

from ..coordination.worklist import WorklistManager
from ..core.engine import CoreEngine
from .base import BaselineAdapter


class WorklistOnlyAwareness(BaselineAdapter):
    """Deliveries = work item offers reaching role members."""

    mechanism = "worklist-only (WfMS worker)"

    def __init__(self, core: CoreEngine, worklists: WorklistManager) -> None:
        super().__init__()
        self._core = core
        self._worklists = worklists
        self._seen: Set[Tuple[str, str]] = set()
        # Work items appear as a consequence of activity state changes, so
        # polling on that hook observes every offer; offers made after the
        # last state change of a quiescent system are picked up by the
        # read-side sync in deliveries().
        core.on_activity_change(lambda change: self._poll(change.time))

    def deliveries(self):
        self._poll(self._core.clock.now())
        return super().deliveries()

    def deliveries_per_participant(self):
        self._poll(self._core.clock.now())
        return super().deliveries_per_participant()

    def total(self) -> int:
        self._poll(self._core.clock.now())
        return super().total()

    def _poll(self, time: int) -> None:
        for item in self._worklists.all_items():
            for participant in item.candidates:
                mark = (item.item_id, participant.participant_id)
                if mark in self._seen:
                    continue
                self._seen.add(mark)
                self.record(
                    participant.participant_id,
                    key=(
                        "work-item",
                        item.activity.parent_process_instance_id
                        or item.activity.instance_id,
                        item.activity.schema.name,
                    ),
                    time=item.offered_at,
                )
