"""The neT.120-style groupware baseline: fixed presenter/observer roles.

"Groupware tools for network presentations, such as neT.120, support
'presenter', 'observer', and/or 'hybrid' roles.  Presenters are allowed to
write on the shared whiteboard ..., while observers can only observe
(read) these resources" (Section 2).

We model a shared resource (the "whiteboard") as a context resource: the
three fixed roles govern write access, and awareness is the tool's only
built-in kind — every change of a shared resource is shown to everyone
with read access, regardless of relevance.  Roles are fixed per tool
session; coordination beyond that "must be negotiated and performed
outside the scope of groupware tools", which the adapter has no mechanism
for — exactly the limitation the paper points at.
"""

from __future__ import annotations

import enum
from typing import Dict, Set, Tuple

from ..core.context import ContextChange, ContextReference
from ..core.engine import CoreEngine
from ..errors import ScopeError
from .base import BaselineAdapter


class GroupwareRole(enum.Enum):
    """The fixed role palette of the groupware tool."""

    PRESENTER = "presenter"
    OBSERVER = "observer"
    HYBRID = "hybrid"

    @property
    def can_write(self) -> bool:
        return self in (GroupwareRole.PRESENTER, GroupwareRole.HYBRID)

    @property
    def can_read(self) -> bool:
        return self in (GroupwareRole.OBSERVER, GroupwareRole.HYBRID)


class GroupwareRoles(BaselineAdapter):
    """Shared-resource awareness with the fixed three-role palette."""

    mechanism = "groupware fixed roles (neT.120)"

    def __init__(self, core: CoreEngine) -> None:
        super().__init__()
        # (context_id -> participant_id -> role); fixed once assigned.
        self._sessions: Dict[str, Dict[str, GroupwareRole]] = {}
        core.on_context_change(self._on_context)

    def join(
        self,
        shared_resource: ContextReference,
        participant_id: str,
        role: GroupwareRole,
    ) -> None:
        """A participant joins a tool session on a shared resource."""
        session = self._sessions.setdefault(shared_resource.context_id, {})
        session[participant_id] = role

    def write(
        self,
        shared_resource: ContextReference,
        participant_id: str,
        field_name: str,
        value: object,
    ) -> None:
        """A participant writes the shared resource (role-checked)."""
        session = self._sessions.get(shared_resource.context_id, {})
        role = session.get(participant_id)
        if role is None or not role.can_write:
            raise ScopeError(
                f"participant {participant_id!r} has no write access to "
                f"shared resource {shared_resource.context_name!r}"
            )
        shared_resource.set(field_name, value)

    def _on_context(self, change: ContextChange) -> None:
        """Every change is shown to every reader of the session."""
        session = self._sessions.get(change.context_id)
        if not session:
            return
        key = ("context-change", change.context_id, change.field_name)
        for participant_id, role in session.items():
            if role.can_read:
                self.record(participant_id, key, change.time)
