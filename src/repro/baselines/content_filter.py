"""The Elvin-style baseline: content-based pub/sub over single events.

"Elvin is a general publish/subscribe framework ... subscriptions are done
with content-based filtering, but no other form of customized event
processing is performed" (Section 2).  Participants register predicate
subscriptions over *individual* primitive events.  The mechanism can
filter well, but:

* it cannot **compose** events from multiple sources (the deadline
  violation of Section 5.4 — a comparison *between two* context fields —
  is inexpressible, so composite situations have recall 0);
* it cannot target **roles**: a subscription belongs to a user, so
  dynamically scoped audiences must be approximated by over-subscription.

Subscriptions are evaluated against both primitive event kinds, presented
as flat attribute dictionaries, which is faithful to Elvin's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Tuple

from ..core.context import ContextChange
from ..core.engine import CoreEngine
from ..core.instances import ActivityStateChange
from .base import BaselineAdapter

Predicate = Callable[[Mapping[str, Any]], bool]


@dataclass(frozen=True)
class Subscription:
    """One participant's content-based subscription."""

    participant_id: str
    predicate: Predicate
    label: str = "subscription"


class ContentFilterPubSub(BaselineAdapter):
    """Single-event content filtering; no composition, no roles."""

    mechanism = "content-filter pub/sub (Elvin)"

    def __init__(self, core: CoreEngine) -> None:
        super().__init__()
        self._subscriptions: List[Subscription] = []
        core.on_activity_change(self._on_activity)
        core.on_context_change(self._on_context)

    def subscribe(
        self,
        participant_id: str,
        predicate: Predicate,
        label: str = "subscription",
    ) -> Subscription:
        subscription = Subscription(participant_id, predicate, label)
        self._subscriptions.append(subscription)
        return subscription

    # -- event flattening (Elvin notifications are flat attribute maps) --------

    @staticmethod
    def _activity_attributes(change: ActivityStateChange) -> Dict[str, Any]:
        return {
            "kind": "activity",
            "time": change.time,
            "activityInstanceId": change.activity_instance_id,
            "processSchemaId": change.parent_process_schema_id,
            "processInstanceId": change.parent_process_instance_id,
            "activityVariableId": change.activity_variable_id,
            "oldState": change.old_state,
            "newState": change.new_state,
        }

    @staticmethod
    def _context_attributes(change: ContextChange) -> Dict[str, Any]:
        return {
            "kind": "context",
            "time": change.time,
            "contextId": change.context_id,
            "contextName": change.context_name,
            "fieldName": change.field_name,
            "oldValue": change.old_value,
            "newValue": change.new_value,
        }

    def _match(self, attributes: Dict[str, Any], key: Tuple, time: int) -> None:
        for subscription in self._subscriptions:
            if subscription.predicate(attributes):
                self.record(subscription.participant_id, key, time)

    def _on_activity(self, change: ActivityStateChange) -> None:
        self._match(
            self._activity_attributes(change),
            key=("state-change", change.activity_instance_id, change.new_state),
            time=change.time,
        )

    def _on_context(self, change: ContextChange) -> None:
        self._match(
            self._context_attributes(change),
            key=("context-change", change.context_id, change.field_name),
            time=change.time,
        )
