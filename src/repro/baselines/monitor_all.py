"""The WfMS "manager" baseline: monitor the entire process.

The second built-in WfMS choice of Section 2: managers "must know the
status of all the activities in the entire process, i.e., monitor the
entire process".  Every activity state change and every context field
change is delivered to every monitoring participant — maximal recall,
maximal information overload.  The QE1 benchmark uses this as the
overload upper bound CMI is measured against.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..core.context import ContextChange
from ..core.engine import CoreEngine
from ..core.instances import ActivityStateChange
from ..core.roles import Participant
from .base import BaselineAdapter


class MonitorAllAwareness(BaselineAdapter):
    """Every primitive event goes to every monitoring participant."""

    mechanism = "monitor-everything (WfMS manager)"

    def __init__(
        self,
        core: CoreEngine,
        monitors: Iterable[Participant],
        include_context_events: bool = True,
    ) -> None:
        super().__init__()
        self._monitors: Tuple[Participant, ...] = tuple(monitors)
        core.on_activity_change(self._on_activity)
        if include_context_events:
            core.on_context_change(self._on_context)

    def _on_activity(self, change: ActivityStateChange) -> None:
        key = (
            "state-change",
            change.activity_instance_id,
            change.new_state,
        )
        for participant in self._monitors:
            self.record(participant.participant_id, key, change.time)

    def _on_context(self, change: ContextChange) -> None:
        key = (
            "context-change",
            change.context_id,
            change.field_name,
        )
        for participant in self._monitors:
            self.record(participant.participant_id, key, change.time)
