"""The do-it-yourself baseline: analyzing process monitoring logs.

Section 2: "unless WfMS users are willing to develop specialized awareness
applications that analyze process monitoring logs, their awareness choices
are limited to a few built-in options."  This adapter *is* that specialized
application, built honestly:

* it sees only what the WfMC-style monitoring API exposes — the activity
  state change log and the context change log (no scoped roles, no
  composite operators);
* it runs its custom analysis **periodically** (a polling monitor app),
  so detections arrive up to one polling interval late;
* because role information is not in the log, detected situations are
  broadcast to a **static recipient list** rather than the dynamically
  scoped audience.

The QE1 comparison then shows the trade: the situation *can* be derived
with custom code, but it arrives late and over-broadly — which is
precisely the paper's argument for building awareness into the
infrastructure.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from ..core.context import ContextChange
from ..core.engine import CoreEngine
from ..core.instances import ActivityStateChange
from .base import BaselineAdapter

#: A custom analysis: given the activity and context log slices since the
#: previous poll, return the detected situations as (key, event_time)
#: pairs.  The adapter broadcasts each to the static recipient list with
#: the *poll* time (the moment the analysis actually ran).
Analysis = Callable[
    [Sequence[ActivityStateChange], Sequence[ContextChange]],
    Iterable[Tuple[Tuple, int]],
]


class LogAnalysisAwareness(BaselineAdapter):
    """Poll the monitoring logs; run custom analyses; broadcast hits."""

    mechanism = "log analysis (custom monitoring app)"

    def __init__(
        self,
        core: CoreEngine,
        recipients: Iterable[str],
        poll_interval: int = 25,
    ) -> None:
        super().__init__()
        self._core = core
        self._recipients: Tuple[str, ...] = tuple(recipients)
        self._poll_interval = poll_interval
        self._activity_log: List[ActivityStateChange] = []
        self._context_log: List[ContextChange] = []
        self._activity_cursor = 0
        self._context_cursor = 0
        self._next_poll = poll_interval
        self._analyses: List[Analysis] = []
        self.polls = 0
        core.on_activity_change(self._on_activity)
        core.on_context_change(self._on_context)

    def add_analysis(self, analysis: Analysis) -> None:
        self._analyses.append(analysis)

    # -- log collection + poll scheduling -------------------------------------

    def _on_activity(self, change: ActivityStateChange) -> None:
        # Poll boundaries crossed by this event fire first, so the event
        # itself lands in the *next* window (a poll at time P only sees
        # events that happened before P).
        self._maybe_poll(change.time)
        self._activity_log.append(change)

    def _on_context(self, change: ContextChange) -> None:
        self._maybe_poll(change.time)
        self._context_log.append(change)

    def _maybe_poll(self, now: int) -> None:
        while now >= self._next_poll:
            self._poll(self._next_poll)
            self._next_poll += self._poll_interval

    def finish(self) -> None:
        """Run a final poll over whatever is left in the log (call at the
        end of a workload so trailing events are not lost)."""
        last_time = max(
            [c.time for c in self._activity_log[-1:]]
            + [c.time for c in self._context_log[-1:]]
            + [0]
        )
        self._poll(max(self._next_poll, last_time + self._poll_interval))

    def _poll(self, poll_time: int) -> None:
        self.polls += 1
        activity_slice = self._activity_log[self._activity_cursor:]
        context_slice = self._context_log[self._context_cursor:]
        self._activity_cursor = len(self._activity_log)
        self._context_cursor = len(self._context_log)
        if not activity_slice and not context_slice:
            return
        for analysis in self._analyses:
            for key, __ in analysis(activity_slice, context_slice):
                for recipient in self._recipients:
                    self.record(recipient, key, poll_time)
