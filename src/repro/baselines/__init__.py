"""Awareness baselines from the related-work critique (Section 2).

The paper argues existing technologies offer "only a few built-in awareness
choices"; we implement each choice as an adapter observing the *same*
enactment run as CMI, so the QE1 benchmark can compare deliveries per
participant and precision/recall of relevant information head-to-head:

* :class:`WorklistOnlyAwareness` — the WfMS "worker" choice: a participant
  is aware only of the activities assigned to them;
* :class:`MonitorAllAwareness` — the WfMS "manager" choice: monitor the
  entire process (every state change of every activity);
* :class:`ContentFilterPubSub` — the Elvin/wOrlds choice: content-based
  filtering of single events, "no other form of customized event
  processing", no role targeting, no composition;
* :class:`EmailNotification` — the InConcert choice: e-mail on simple
  workflow conditions to a static recipient list;
* :class:`GroupwareRoles` — the neT.120 choice: fixed presenter/observer/
  hybrid roles on shared resources.
"""

from .base import BaselineAdapter, Delivery
from .content_filter import ContentFilterPubSub, Subscription
from .email_notify import EmailNotification
from .groupware import GroupwareRoles, GroupwareRole
from .log_analysis import LogAnalysisAwareness
from .monitor_all import MonitorAllAwareness
from .worklist_only import WorklistOnlyAwareness

__all__ = [
    "BaselineAdapter",
    "ContentFilterPubSub",
    "Delivery",
    "EmailNotification",
    "GroupwareRole",
    "GroupwareRoles",
    "LogAnalysisAwareness",
    "MonitorAllAwareness",
    "Subscription",
    "WorklistOnlyAwareness",
]
