"""The InConcert-style baseline: e-mail on simple workflow conditions.

"InConcert WfMS is an example of a process-oriented system with e-mail
notification of simple workflow conditions, much in the spirit of this
publish/subscribe awareness ... these systems provide no mechanism to cater
the information for specific roles/classes of users, nor do they address
the issue of combining information from multiple sources" (Section 2).

A *notification rule* names an activity schema and a triggering state; when
any activity of that schema reaches the state, an e-mail goes to the rule's
**static recipient list** — fixed at rule-creation time, which is exactly
what breaks for dynamically composed task forces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.engine import CoreEngine
from ..core.instances import ActivityStateChange
from .base import BaselineAdapter


@dataclass(frozen=True)
class NotificationRule:
    """Send mail to *recipients* when *schema_name* reaches *state*."""

    schema_name: str
    state: str
    recipients: Tuple[str, ...]


class EmailNotification(BaselineAdapter):
    """Simple condition -> static recipient list."""

    mechanism = "e-mail notification (InConcert)"

    def __init__(self, core: CoreEngine) -> None:
        super().__init__()
        self.core = core
        self._rules: List[NotificationRule] = []
        core.on_activity_change(self._on_activity)

    def add_rule(
        self, schema_name: str, state: str, recipients: Tuple[str, ...]
    ) -> NotificationRule:
        rule = NotificationRule(schema_name, state, tuple(recipients))
        self._rules.append(rule)
        return rule

    def _on_activity(self, change: ActivityStateChange) -> None:
        instance = self.core.instance(change.activity_instance_id)
        for rule in self._rules:
            if instance.schema.name != rule.schema_name:
                continue
            if change.new_state != rule.state:
                continue
            key = (
                "state-change",
                change.activity_instance_id,
                change.new_state,
            )
            for recipient in rule.recipients:
                self.record(recipient, key, change.time)
