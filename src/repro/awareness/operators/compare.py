"""Comparison event operators (Section 5.1.3).

* ``Compare1[P, boolFunc1](C_P) -> C_P`` — passes an input event when its
  ``intInfo`` parameter satisfies the one-argument boolean function;
  otherwise the input is ignored.

* ``Compare2[P, boolFunc2](C_P, C_P) -> C_P`` — keeps, per process
  instance, the **latest** ``intInfo`` seen on each input position; when
  both positions have a value and ``boolFunc2(latest_0, latest_1)`` holds,
  emits a composite whose parameters are copied from the latest input —
  "irrespective of its position".

``Compare2`` is the operator at the root of the paper's Section 5.4
deadline-violation description:
``Compare2[InfoRequest, <=](Filter_ctx(TaskForceDeadline),
Filter_ctx(RequestDeadline))`` fires whenever the task-force deadline is
(moved) at or before the information-request deadline.

Named comparison functions (``"<="``, ``"<"``, ``"=="`` ...) are provided
so the specification DSL can reference them by symbol.
"""

from __future__ import annotations

import operator as _op
from typing import Any, Callable, Dict, List, Optional

from ...errors import ParameterError
from ...events.canonical import canonical_type
from ...events.event import Event
from .base import EventOperator, OperatorSignature

BoolFunc1 = Callable[[int], bool]
BoolFunc2 = Callable[[int, int], bool]

#: Named two-argument comparison functions usable in the specification DSL.
NAMED_BOOL_FUNCS_2: Dict[str, BoolFunc2] = {
    "<=": _op.le,
    "<": _op.lt,
    ">=": _op.ge,
    ">": _op.gt,
    "==": _op.eq,
    "!=": _op.ne,
}


def named_bool_func_2(symbol: str) -> BoolFunc2:
    """Look up a named comparison (raises :class:`ParameterError`)."""
    try:
        return NAMED_BOOL_FUNCS_2[symbol]
    except KeyError:
        raise ParameterError(
            f"unknown comparison {symbol!r}; expected one of "
            f"{sorted(NAMED_BOOL_FUNCS_2)}"
        ) from None


def _bool_func_1_key(operator: "EventOperator") -> object:
    """Plan-key identity of a one-argument predicate.

    DSL-authored predicates carry a ``_dsl_rendering`` — a textual form
    like ``Compare1[==, 3]`` — so structurally equal specifications share
    even though each compilation builds a fresh lambda.  Hand-wired
    predicates fall back to the callable object itself: identity-based,
    so only windows literally passing the same function object share.
    """
    rendering = getattr(operator, "_dsl_rendering", None)
    if rendering is not None:
        return rendering
    return operator.bool_func  # type: ignore[attr-defined]


class Compare1(EventOperator):
    """Single-input comparison: pass events whose intInfo satisfies a test."""

    family = "Compare1"

    def __init__(
        self,
        process_schema_id: str,
        bool_func: BoolFunc1,
        instance_name: Optional[str] = None,
    ) -> None:
        if not callable(bool_func):
            raise ParameterError("Compare1 requires a callable boolFunc1")
        ctype = canonical_type(process_schema_id)
        super().__init__(
            process_schema_id,
            OperatorSignature((ctype,), ctype),
            instance_name,
        )
        self.bool_func = bool_func

    def partition_key(self, slot: int, event: Event) -> Any:
        return None  # stateless

    def plan_params(self) -> tuple:
        return (self.process_schema_id, _bool_func_1_key(self))

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        value = event.get("intInfo")
        if value is None:
            return []
        if not self.bool_func(value):
            return []
        return [event.derive(source=self.instance_name)]

    def describe(self) -> str:
        return f"Compare1[{self.process_schema_id}, {self.bool_func!r}]"


class Edge(EventOperator):
    """Rising-edge comparison: pass an event only when the test *starts*
    holding.

    ``Edge[P, boolFunc1](C_P) -> C_P`` is :class:`Compare1` with
    hysteresis, replicated per process instance: the first event whose
    ``intInfo`` satisfies the test after one that did not (or after
    instantiation) passes; further satisfying events are swallowed until
    a non-satisfying event re-arms the edge.  This is the
    alert-transition primitive — a persistently-breached SLO notifies
    once per breach episode instead of once per telemetry sample, and a
    notification loop (the alert itself moving the metric it watches)
    cannot storm.
    """

    family = "Edge"

    def __init__(
        self,
        process_schema_id: str,
        bool_func: BoolFunc1,
        instance_name: Optional[str] = None,
    ) -> None:
        if not callable(bool_func):
            raise ParameterError("Edge requires a callable boolFunc1")
        ctype = canonical_type(process_schema_id)
        super().__init__(
            process_schema_id,
            OperatorSignature((ctype,), ctype),
            instance_name,
        )
        self.bool_func = bool_func

    def new_state(self) -> List[bool]:
        # One cell: did the last event satisfy the test?
        return [False]

    def plan_params(self) -> tuple:
        return (self.process_schema_id, _bool_func_1_key(self))

    def _apply(self, slot: int, event: Event, state: List[bool]) -> List[Event]:
        value = event.get("intInfo")
        if value is None:
            return []
        satisfied = bool(self.bool_func(value))
        armed = not state[0]
        state[0] = satisfied
        if not (satisfied and armed):
            return []
        return [event.derive(source=self.instance_name)]

    def describe(self) -> str:
        return f"Edge[{self.process_schema_id}, {self.bool_func!r}]"


class Compare2(EventOperator):
    """Double-input comparison over the latest values of two streams."""

    family = "Compare2"

    def __init__(
        self,
        process_schema_id: str,
        bool_func: BoolFunc2,
        instance_name: Optional[str] = None,
    ) -> None:
        if isinstance(bool_func, str):
            bool_func = named_bool_func_2(bool_func)
        if not callable(bool_func):
            raise ParameterError("Compare2 requires a callable boolFunc2")
        ctype = canonical_type(process_schema_id)
        super().__init__(
            process_schema_id,
            OperatorSignature((ctype, ctype), ctype),
            instance_name,
        )
        self.bool_func = bool_func

    def new_state(self) -> Dict[int, int]:
        return {}

    def plan_params(self) -> tuple:
        # Named comparisons key on their symbol; arbitrary callables on
        # object identity.  Compare2 is slot-order-sensitive, so the
        # default non-commutative input keying stays (``a <= b`` must not
        # merge with ``b <= a``).
        symbol = next(
            (s for s, f in NAMED_BOOL_FUNCS_2.items() if f is self.bool_func),
            None,
        )
        return (
            self.process_schema_id,
            symbol if symbol is not None else self.bool_func,
        )

    def _apply(self, slot: int, event: Event, state: Dict[int, int]) -> List[Event]:
        value = event.get("intInfo")
        if value is None:
            return []
        state[slot] = value
        if len(state) < 2:
            return []
        if not self.bool_func(state[0], state[1]):
            return []
        return [
            event.derive(
                source=self.instance_name,
                description=(
                    f"comparison satisfied: {state[0]} vs {state[1]} "
                    f"({event.get('description')})"
                ),
            )
        ]

    def describe(self) -> str:
        symbol = next(
            (s for s, f in NAMED_BOOL_FUNCS_2.items() if f is self.bool_func),
            repr(self.bool_func),
        )
        return f"Compare2[{self.process_schema_id}, {symbol}]"
