"""Operator registry: the palette of the awareness specification tool.

"AM provides a palette of event producers and general operators, however
application-specific event producers and operators can be added as needed
by the application" (Section 5.1).  The registry is that palette: the
specification tool and the textual DSL look operator families up by name,
and applications register their own operator classes alongside the
built-ins.

Registered operator classes may override
:meth:`~repro.awareness.operators.base.EventOperator.routing_keys` when
their parameters statically determine which primitive events can match
(the built-in filters do); the event substrate then index-routes events
to them instead of scanning every deployed operator.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ...errors import SpecificationError
from .base import EventOperator
from .compare import Compare1, Compare2, Edge
from .count import Count
from .filters import (
    ActivityFilter,
    ContextFilter,
    QueryCorrelationFilter,
    SystemFilter,
)
from .generic import And, Or, Seq
from .output import Output
from .translate import Translate


class OperatorRegistry:
    """Name -> operator class mapping with registration validation."""

    def __init__(self) -> None:
        self._operators: Dict[str, Type[EventOperator]] = {}

    def register(self, name: str, operator_class: Type[EventOperator]) -> None:
        if not issubclass(operator_class, EventOperator):
            raise SpecificationError(
                f"{operator_class!r} is not an EventOperator subclass"
            )
        if name in self._operators:
            raise SpecificationError(f"operator {name!r} is already registered")
        self._operators[name] = operator_class

    def lookup(self, name: str) -> Type[EventOperator]:
        try:
            return self._operators[name]
        except KeyError:
            raise SpecificationError(
                f"unknown operator {name!r}; registered: {sorted(self._operators)}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._operators))

    def __contains__(self, name: str) -> bool:
        return name in self._operators


def default_registry() -> OperatorRegistry:
    """The built-in AM palette of Section 5.1.3."""
    registry = OperatorRegistry()
    registry.register("Filter_activity", ActivityFilter)
    registry.register("Filter_context", ContextFilter)
    registry.register("Filter_news", QueryCorrelationFilter)
    registry.register("Filter_system", SystemFilter)
    registry.register("And", And)
    registry.register("Seq", Seq)
    registry.register("Or", Or)
    registry.register("Count", Count)
    registry.register("Compare1", Compare1)
    registry.register("Edge", Edge)
    registry.register("Compare2", Compare2)
    registry.register("Translate", Translate)
    registry.register("Output", Output)
    return registry
