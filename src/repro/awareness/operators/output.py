"""The special output event operator (Section 6.2).

"The root is a special output event operator that adds delivery
instructions to its input event.  This operator ... is an artifact of the
implementation that simplifies the awareness specification user interface.
The output operator's delivery instructions include the awareness delivery
role and awareness role assignment ... as well as a user-friendly
description of the event."

Every awareness schema's DAG is rooted by exactly one :class:`Output`
instance.  Its output events are of the shared :data:`DELIVERY_EVENT_TYPE`;
the awareness delivery agent subscribes to that single type (Section 6.5:
"the awareness delivery agent consumes all composite events of the type
produced by the special output operator").
"""

from __future__ import annotations

from typing import Any, List, Optional

from ...core.roles import RoleRef
from ...errors import ParameterError
from ...events.canonical import canonical_type
from ...events.event import Event, EventType, ParameterSpec, base_parameters
from .base import EventOperator, OperatorSignature

#: The event type consumed by the awareness delivery agent.
DELIVERY_EVENT_TYPE = EventType(
    "T_delivery",
    (
        *base_parameters(),
        ParameterSpec("schemaName", "str", nullable=False),
        ParameterSpec("deliveryRole", "str", nullable=False),
        ParameterSpec("deliveryContext", "str"),
        ParameterSpec("assignment", "str", nullable=False),
        ParameterSpec("processSchemaId", "str", nullable=False),
        ParameterSpec("processInstanceId", "str", nullable=False),
        ParameterSpec("userDescription", "str", nullable=False),
        ParameterSpec("intInfo", "int", required=False),
        ParameterSpec("strInfo", "str", required=False),
        ParameterSpec("sourceEvent", "any", required=False),
    ),
)


class Output(EventOperator):
    """Attach delivery instructions to detected composite events.

    Parameters:

    * ``delivery_role`` — a :class:`~repro.core.roles.RoleRef`; may be an
      organizational role or a scoped role reference, resolved by the
      delivery agent at detection time (Section 5.2);
    * ``assignment_name`` — the name of the awareness role assignment
      function (Section 5.3; ``"identity"`` is the paper's implemented one);
    * ``user_description`` — the designer's user-friendly text, rendered in
      the awareness information viewer.
    """

    family = "Output"

    def __init__(
        self,
        process_schema_id: str,
        delivery_role: RoleRef,
        assignment_name: str = "identity",
        user_description: str = "",
        schema_name: str = "",
        instance_name: Optional[str] = None,
    ) -> None:
        if not isinstance(delivery_role, RoleRef):
            raise ParameterError(
                f"Output requires a RoleRef delivery role, got {delivery_role!r}"
            )
        if not assignment_name:
            raise ParameterError("Output requires an assignment function name")
        super().__init__(
            process_schema_id,
            OperatorSignature(
                (canonical_type(process_schema_id),), DELIVERY_EVENT_TYPE
            ),
            instance_name,
        )
        self.delivery_role = delivery_role
        self.assignment_name = assignment_name
        self.user_description = user_description
        self.schema_name = schema_name or f"AS_{process_schema_id}"

    def partition_key(self, slot: int, event: Event) -> Any:
        return None  # stateless decoration

    # plan_params stays the base-class None by design: the output operator
    # *is* the window's delivery identity (role, assignment, description,
    # schema name), so the plan cache always keeps one per window — the
    # paper's per-participant customization survives any amount of
    # upstream sharing.

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        # Decorating an already-validated canonical event; the trusted
        # constructor skips a third per-event conformance pass.
        params = event.params
        return [
            Event.trusted(
                DELIVERY_EVENT_TYPE,
                {
                    "time": params["time"],
                    "source": self.instance_name,
                    "schemaName": self.schema_name,
                    "deliveryRole": self.delivery_role.role_name,
                    "deliveryContext": self.delivery_role.context_name,
                    "assignment": self.assignment_name,
                    "processSchemaId": params["processSchemaId"],
                    "processInstanceId": params["processInstanceId"],
                    "userDescription": self.user_description
                    or (params.get("description") or "awareness event"),
                    "intInfo": params.get("intInfo"),
                    "strInfo": params.get("strInfo"),
                    "sourceEvent": params.get("sourceEvent"),
                },
            )
        ]

    def describe(self) -> str:
        return (
            f"Output[{self.schema_name}, role={self.delivery_role}, "
            f"{self.assignment_name}]"
        )
