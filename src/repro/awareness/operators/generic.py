"""Generic event operators: conjunction, sequence, disjunction (§5.1.3).

All three consume and produce the canonical type ``C_P`` and replicate
their state per process instance:

* ``And[P, copy](C_P, ..., C_P) -> C_P`` — emits when an event has been
  seen on **all** input slots, in any order.  The ``copy`` parameter
  (1-based) selects the input event whose parameters — except time — are
  copied to the output; the output time is the time of the constituent
  that completed the pattern.  Constituents are consumed on emission, so
  the operator then waits for a fresh event on every slot.
* ``Seq[P, copy](C_P, ..., C_P) -> C_P`` — like ``And`` but events must be
  seen **in slot order**; an event arriving on a slot other than the next
  expected one is ignored.
* ``Or[P](C_P, ..., C_P) -> C_P`` — "merely echoes every input it receives
  as its output"; stateless.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...errors import ParameterError
from ...events.canonical import canonical_type
from ...events.event import Event
from ...observability import INSTRUMENTATION as _OBS
from .base import EventOperator, OperatorSignature, check_copy_parameter


def _canonical_signature(process_schema_id: str, arity: int) -> OperatorSignature:
    ctype = canonical_type(process_schema_id)
    return OperatorSignature((ctype,) * arity, ctype)


def _compose(template: Event, completing: Event, source: str) -> Event:
    """Copy *template*'s parameters (except time) onto a new composite event
    whose time is the completing constituent's time."""
    return template.derive(time=completing.time, source=source)


class And(EventOperator):
    """Conjunction with per-instance slot memory."""

    family = "And"

    def __init__(
        self,
        process_schema_id: str,
        copy: int = 1,
        arity: int = 2,
        instance_name: Optional[str] = None,
    ) -> None:
        if arity < 2:
            raise ParameterError(f"And requires at least two inputs, got {arity}")
        check_copy_parameter(copy, arity, "And")
        super().__init__(
            process_schema_id,
            _canonical_signature(process_schema_id, arity),
            instance_name,
        )
        self.copy = copy

    def plan_params(self) -> tuple:
        return (self.process_schema_id, self.copy, self.arity)

    def new_state(self) -> Dict[int, Event]:
        return {}

    def _apply(self, slot: int, event: Event, state: Dict[int, Event]) -> List[Event]:
        state[slot] = event
        if len(state) < self.arity:
            return []
        template = state[self.copy - 1]
        output = _compose(template, event, self.instance_name)
        if _OBS.enabled:
            self._constituents = tuple(state[i] for i in sorted(state))
        state.clear()
        return [output]

    def describe(self) -> str:
        return f"And[{self.process_schema_id}, copy={self.copy}]/{self.arity}"


class Seq(EventOperator):
    """Sequence: constituents must arrive in slot order."""

    family = "Seq"

    def __init__(
        self,
        process_schema_id: str,
        copy: int = 1,
        arity: int = 2,
        instance_name: Optional[str] = None,
    ) -> None:
        if arity < 2:
            raise ParameterError(f"Seq requires at least two inputs, got {arity}")
        check_copy_parameter(copy, arity, "Seq")
        super().__init__(
            process_schema_id,
            _canonical_signature(process_schema_id, arity),
            instance_name,
        )
        self.copy = copy

    def plan_params(self) -> tuple:
        return (self.process_schema_id, self.copy, self.arity)

    def new_state(self) -> Dict[str, Any]:
        return {"pointer": 0, "seen": []}

    def _apply(self, slot: int, event: Event, state: Dict[str, Any]) -> List[Event]:
        if slot != state["pointer"]:
            return []
        state["seen"].append(event)
        state["pointer"] += 1
        if state["pointer"] < self.arity:
            return []
        template = state["seen"][self.copy - 1]
        output = _compose(template, event, self.instance_name)
        if _OBS.enabled:
            self._constituents = tuple(state["seen"])
        state["pointer"] = 0
        state["seen"] = []
        return [output]

    def describe(self) -> str:
        return f"Seq[{self.process_schema_id}, copy={self.copy}]/{self.arity}"


class Or(EventOperator):
    """Disjunction: echo every input (merge of n streams)."""

    family = "Or"

    #: A merge is insensitive to which slot a stream enters on, so the
    #: planner order-normalizes the input keys: Or(a, b) and Or(b, a)
    #: intern to one shared node.
    plan_commutative = True

    def __init__(
        self,
        process_schema_id: str,
        arity: int = 2,
        instance_name: Optional[str] = None,
    ) -> None:
        if arity < 2:
            raise ParameterError(f"Or requires at least two inputs, got {arity}")
        super().__init__(
            process_schema_id,
            _canonical_signature(process_schema_id, arity),
            instance_name,
        )

    def partition_key(self, slot: int, event: Event) -> Any:
        return None  # stateless

    def plan_params(self) -> tuple:
        return (self.process_schema_id, self.arity)

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        return [event.derive(source=self.instance_name)]

    def describe(self) -> str:
        return f"Or[{self.process_schema_id}]/{self.arity}"
