"""The count event operator (Section 5.1.3).

``Count[P](C_P) -> C_P`` "maintains a count of the number of input events
seen (per process instance) and emits that value as the intInfo parameter
on its canonical output event ... outputs an event for every input seen.
The count operator is most useful when combined with the comparison
operators."

Example from the paper's domain: counting positive lab-test completions in
one crisis-response instance, feeding ``Compare1[>= 1]`` so the first
positive result triggers awareness that the remaining tests are
unnecessary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...events.canonical import canonical_type
from ...events.event import Event
from .base import EventOperator, OperatorSignature


class Count(EventOperator):
    """Per-process-instance event counter."""

    family = "Count"

    def __init__(
        self, process_schema_id: str, instance_name: Optional[str] = None
    ) -> None:
        ctype = canonical_type(process_schema_id)
        super().__init__(
            process_schema_id,
            OperatorSignature((ctype,), ctype),
            instance_name,
        )

    def new_state(self) -> Dict[str, int]:
        return {"count": 0}

    def plan_params(self) -> tuple:
        return (self.process_schema_id,)

    def _apply(self, slot: int, event: Event, state: Dict[str, int]) -> List[Event]:
        state["count"] += 1
        return [
            event.derive(
                source=self.instance_name,
                intInfo=state["count"],
                description=f"count={state['count']}",
            )
        ]

    def current_count(self, process_instance_id: str) -> int:
        """The running count for one process instance (0 if none seen)."""
        state = self._partitions.get(process_instance_id)
        return state["count"] if state else 0

    def describe(self) -> str:
        return f"Count[{self.process_schema_id}]"
