"""The process invocation event operator (Section 5.1.3).

``Translate[P_invoking, P_invoked, Av](T_activity, C_P_invoked) ->
C_P_invoking`` is "the only operator that allows events associated with one
process schema to be translated into events associated with a different
process schema.  This translation is only meaningful if one process
instance invokes the other as a subprocess."

Mechanics, per the paper: the first input (the primitive activity event
type) provides "the necessary information for the translation between
process instances" — when an activity event shows that activity variable
*Av* of an instance of *P_invoking* is an invocation of *P_invoked*, the
operator learns the mapping ``invoked instance id -> invoking instance
id``.  Canonical events of the invoked process arriving on the second slot
are then re-issued as canonical events of the invoking instance; events of
unmapped instances are ignored.

To combine events from two processes not directly related through a
sub-activity invocation, processing must occur in a common ancestor, with
one Translate per invocation hop — the DAG validator does not enforce that
modelling guideline, but the EX54/FIG6 tests demonstrate it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...errors import ParameterError
from ...events.canonical import canonical_event, canonical_type
from ...events.event import Event
from ...events.producers import ACTIVITY_EVENT_TYPE
from .base import EventOperator, OperatorSignature


class Translate(EventOperator):
    """Lift canonical events of an invoked subprocess into the invoker."""

    family = "Translate"

    #: Slot indices, named for readability at call sites.
    SLOT_ACTIVITY = 0
    SLOT_INVOKED = 1

    def __init__(
        self,
        invoking_schema_id: str,
        invoked_schema_id: str,
        activity_variable: str,
        instance_name: Optional[str] = None,
    ) -> None:
        if not invoked_schema_id:
            raise ParameterError("Translate requires the invoked process schema")
        if not activity_variable:
            raise ParameterError("Translate requires the invoking activity variable")
        super().__init__(
            invoking_schema_id,
            OperatorSignature(
                (ACTIVITY_EVENT_TYPE, canonical_type(invoked_schema_id)),
                canonical_type(invoking_schema_id),
            ),
            instance_name,
        )
        self.invoked_schema_id = invoked_schema_id
        self.activity_variable = activity_variable
        # invoked process instance id -> invoking process instance id.
        # The mapping is global to the operator instance (it *defines* the
        # per-instance relation), so partitioned state is not used.
        self._mapping: Dict[str, str] = {}

    def partition_key(self, slot: int, event: Event) -> Any:
        return None

    def plan_params(self) -> tuple:
        # The invocation mapping is learned deterministically from the
        # activity stream on slot 0, which shared deployments also share —
        # so equal-parameter Translates converge on the same mapping and
        # may intern.  (A late-deployed window adopts invocations learned
        # before it arrived, same as every partitioned stateful operator.)
        return (
            self.process_schema_id,
            self.invoked_schema_id,
            self.activity_variable,
        )

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        if slot == self.SLOT_ACTIVITY:
            self._learn(event)
            return []
        invoked_instance = event["processInstanceId"]
        invoking_instance = self._mapping.get(invoked_instance)
        if invoking_instance is None:
            return []
        return [
            canonical_event(
                self.process_schema_id,
                invoking_instance,
                time=event.time,
                source=self.instance_name,
                int_info=event.get("intInfo"),
                str_info=event.get("strInfo"),
                description=(
                    f"translated from {self.invoked_schema_id} instance "
                    f"{invoked_instance}: {event.get('description')}"
                ),
                source_event=event.params,
            )
        ]

    def _learn(self, event: Event) -> None:
        """Record invoked->invoking instance pairs from activity events."""
        if event["parentProcessSchemaId"] != self.process_schema_id:
            return
        if event["activityVariableId"] != self.activity_variable:
            return
        if event["activityProcessSchemaId"] != self.invoked_schema_id:
            return
        self._mapping[event["activityInstanceId"]] = event[
            "parentProcessInstanceId"
        ]

    def known_invocations(self) -> int:
        """How many subprocess invocations this operator has learned."""
        return len(self._mapping)

    def describe(self) -> str:
        return (
            f"Translate[{self.process_schema_id}, {self.invoked_schema_id}, "
            f"{self.activity_variable}]"
        )
