"""Filtering event operators (Section 5.1.3).

"A filter operator takes a primitive event producer as input and outputs
some subset of those events as specified by the operator's parameters.
Filtering event operators have a one-to-one correspondence with the
available primitive event types."

* :class:`ActivityFilter` —
  ``Filter_activity[P, Av, States_old, States_new](T_activity) -> C_P``
* :class:`ContextFilter` —
  ``Filter_context[P, Cname, Fname](T_context) -> C_P``
* :class:`ExternalFilter` / :class:`QueryCorrelationFilter` — the
  application-specific filter extension point of Sections 5.1.1/5.1.3 (a
  "sentinel filter" attached to an external source, here the news service).

Filters are the entry of every awareness description: they are where raw
primitive events acquire the canonical type and its ``processInstanceId``
partitioning parameter.
"""

from __future__ import annotations

from typing import AbstractSet, Any, Dict, List, Optional

from ...errors import ParameterError
from ...events.canonical import canonical_event, canonical_type
from ...events.event import Event, EventType
from ...events.external import NEWS_EVENT_TYPE
from ...events.producers import (
    ACTIVITY_EVENT_TYPE,
    CONTEXT_EVENT_TYPE,
    SYSTEM_EVENT_TYPE,
)
from .base import EventOperator, OperatorSignature


class ActivityFilter(EventOperator):
    """Pass activity state changes of one activity variable of P.

    Emits a canonical event when an ``T_activity`` event reports that the
    activity bound to activity variable *Av* in process schema *P*
    transitioned from a state in *states_old* to a state in *states_new*.
    Passing ``None`` for either state set means "any state" (a reproduction
    convenience used by the monitoring baselines; the paper's examples
    always give explicit sets).

    The composite output summarizes the constituent: ``strInfo`` carries
    the new state and ``sourceEvent`` the full primitive parameters.
    """

    family = "Filter_activity"

    def __init__(
        self,
        process_schema_id: str,
        activity_variable: str,
        states_old: Optional[AbstractSet[str]] = None,
        states_new: Optional[AbstractSet[str]] = None,
        instance_name: Optional[str] = None,
    ) -> None:
        if not activity_variable:
            raise ParameterError("Filter_activity requires an activity variable Av")
        super().__init__(
            process_schema_id,
            OperatorSignature(
                (ACTIVITY_EVENT_TYPE,), canonical_type(process_schema_id)
            ),
            instance_name,
        )
        self.activity_variable = activity_variable
        self.states_old = frozenset(states_old) if states_old is not None else None
        self.states_new = frozenset(states_new) if states_new is not None else None

    def partition_key(self, slot: int, event: Event) -> Any:
        # Stateless; a single shared partition suffices.
        return None

    def routing_keys(self, slot: int) -> List[Any]:
        """Static match key: only ``(P, Av)`` activity events can pass."""
        self._check_slot(slot)
        return [(self.process_schema_id, self.activity_variable)]

    def plan_params(self) -> tuple:
        old = tuple(sorted(self.states_old)) if self.states_old is not None else None
        new = tuple(sorted(self.states_new)) if self.states_new is not None else None
        return (self.process_schema_id, self.activity_variable, old, new)

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        params = event.params
        if params["parentProcessSchemaId"] != self.process_schema_id:
            return []
        if params["activityVariableId"] != self.activity_variable:
            return []
        if self.states_old is not None and params["oldState"] not in self.states_old:
            return []
        if self.states_new is not None and params["newState"] not in self.states_new:
            return []
        return [
            canonical_event(
                self.process_schema_id,
                params["parentProcessInstanceId"],
                time=params["time"],
                source=self.instance_name,
                str_info=params["newState"],
                description=(
                    f"activity {self.activity_variable!r}: "
                    f"{params['oldState']} -> {params['newState']}"
                ),
                source_event=params,
                event_type=self.output_type,
            )
        ]

    def describe(self) -> str:
        old = sorted(self.states_old) if self.states_old is not None else "*"
        new = sorted(self.states_new) if self.states_new is not None else "*"
        return (
            f"Filter_activity[{self.process_schema_id}, "
            f"{self.activity_variable}, {old}, {new}]"
        )


class ContextFilter(EventOperator):
    """Pass changes of one field of one named context associated with P.

    A context resource may be associated with several process instances
    (Section 5.1.1); the filter emits one canonical event *per instance of
    P* in the event's association set, so downstream per-instance
    replication sees the change in every affected scope.

    When the new field value is an int it is copied to ``intInfo``; string
    values go to ``strInfo`` (Section 5.1.3: "when appropriate, the new
    field value is copied to the intInfo output event parameter").
    """

    family = "Filter_context"

    def __init__(
        self,
        process_schema_id: str,
        context_name: str,
        field_name: str,
        instance_name: Optional[str] = None,
    ) -> None:
        if not context_name or not field_name:
            raise ParameterError(
                "Filter_context requires a context name and a field name"
            )
        super().__init__(
            process_schema_id,
            OperatorSignature(
                (CONTEXT_EVENT_TYPE,), canonical_type(process_schema_id)
            ),
            instance_name,
        )
        self.context_name = context_name
        self.field_name = field_name

    def partition_key(self, slot: int, event: Event) -> Any:
        return None

    def routing_keys(self, slot: int) -> List[Any]:
        """Static match key: only ``(Cname, Fname)`` context events can pass."""
        self._check_slot(slot)
        return [(self.context_name, self.field_name)]

    def plan_params(self) -> tuple:
        return (self.process_schema_id, self.context_name, self.field_name)

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        params = event.params
        if params["contextName"] != self.context_name:
            return []
        if params["fieldName"] != self.field_name:
            return []
        new_value = params["newFieldValue"]
        int_info = new_value if isinstance(new_value, int) and not isinstance(
            new_value, bool
        ) else None
        str_info = new_value if isinstance(new_value, str) else None
        associations = params["processAssociations"]
        if len(associations) > 1:
            associations = sorted(associations)
        outputs = []
        for schema_id, instance_id in associations:
            if schema_id != self.process_schema_id:
                continue
            outputs.append(
                canonical_event(
                    self.process_schema_id,
                    instance_id,
                    time=params["time"],
                    source=self.instance_name,
                    int_info=int_info,
                    str_info=str_info,
                    description=(
                        f"context {self.context_name!r} field "
                        f"{self.field_name!r} = {new_value!r}"
                    ),
                    source_event=params,
                    event_type=self.output_type,
                )
            )
        return outputs

    def describe(self) -> str:
        return (
            f"Filter_context[{self.process_schema_id}, "
            f"{self.context_name}, {self.field_name}]"
        )


class SystemFilter(EventOperator):
    """Pass telemetry samples of one metric (optionally one series).

    The ``T_system`` analogue of :class:`ContextFilter`: a sample of
    *metric* becomes a canonical event whose ``intInfo`` carries the
    sampled value, ready for the :class:`~.compare.Compare1` health
    predicates downstream.  ``series_label`` selects one labelled series
    (e.g. one participant's queue); ``None`` matches only the unlabelled
    total series and ``"*"`` matches every series of the metric.

    The canonical ``processInstanceId`` is the reporting system's id, so
    per-instance replication partitions health state per system when
    federated telemetry shares one bus.
    """

    family = "Filter_system"

    #: ``series_label`` wildcard: pass every series of the metric.
    ANY_SERIES = "*"

    def __init__(
        self,
        process_schema_id: str,
        metric: str,
        series_label: Optional[str] = None,
        instance_name: Optional[str] = None,
    ) -> None:
        if not metric:
            raise ParameterError("Filter_system requires a metric name")
        super().__init__(
            process_schema_id,
            OperatorSignature(
                (SYSTEM_EVENT_TYPE,), canonical_type(process_schema_id)
            ),
            instance_name,
        )
        self.metric = metric
        self.series_label = series_label

    def partition_key(self, slot: int, event: Event) -> Any:
        return None

    def routing_keys(self, slot: int) -> List[Any]:
        """Static match key: only samples of ``metric`` can pass."""
        self._check_slot(slot)
        return [self.metric]

    def plan_params(self) -> tuple:
        return (self.process_schema_id, self.metric, self.series_label)

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        params = event.params
        if params["metric"] != self.metric:
            return []
        label = params["seriesLabel"]
        if self.series_label != self.ANY_SERIES and label != self.series_label:
            return []
        series = f"{self.metric}[{label}]" if label is not None else self.metric
        return [
            canonical_event(
                self.process_schema_id,
                params["systemId"],
                time=params["time"],
                source=self.instance_name,
                int_info=params["value"],
                str_info=label,
                description=f"system metric {series} = {params['value']}",
                source_event=params,
                event_type=self.output_type,
            )
        ]

    def describe(self) -> str:
        if self.series_label is None:
            return f"Filter_system[{self.process_schema_id}, {self.metric}]"
        return (
            f"Filter_system[{self.process_schema_id}, "
            f"{self.metric}, {self.series_label}]"
        )


class ExternalFilter(EventOperator):
    """Base for application-specific filters over external event sources.

    Subclasses provide the primitive event type, a match predicate, and a
    mapping from the external event to a process instance id; the base
    class does the canonicalization.  This is the "sentinel filter" slot of
    Section 5.1.3.
    """

    family = "Filter_external"

    def __init__(
        self,
        process_schema_id: str,
        input_type: EventType,
        instance_name: Optional[str] = None,
    ) -> None:
        super().__init__(
            process_schema_id,
            OperatorSignature((input_type,), canonical_type(process_schema_id)),
            instance_name,
        )

    def partition_key(self, slot: int, event: Event) -> Any:
        return None

    # routing_keys stays the base-class None: the match predicate is a
    # method (often over run-time state, e.g. bound queries), so external
    # filters ride the wildcard bucket and inspect every source event.
    # plan_params likewise stays None — the predicate and instance mapping
    # are run-time mutable (bind_query), so sharing across windows could
    # leak one window's bindings into another's recognitions.

    def matches(self, event: Event) -> bool:
        raise NotImplementedError

    def instance_for(self, event: Event) -> Optional[str]:
        """Map the external event to a process instance id (None = drop)."""
        raise NotImplementedError

    def digest(self, event: Event) -> str:
        return f"external event from {event.source}"

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        if not self.matches(event):
            return []
        instance_id = self.instance_for(event)
        if instance_id is None:
            return []
        return [
            canonical_event(
                self.process_schema_id,
                instance_id,
                time=event.time,
                source=self.instance_name,
                str_info=event.get("headline"),
                description=self.digest(event),
                source_event=event.params,
                event_type=self.output_type,
            )
        ]


class QueryCorrelationFilter(ExternalFilter):
    """The paper's news-service correlation operator (Section 5.1.1).

    "An event from the news service would contain a query id that can be
    related back to the process instance through an application-specific
    event operator."  Process activities register their queries via
    :meth:`bind_query`; matching articles become canonical events of the
    owning process instance.
    """

    family = "Filter_news"

    def __init__(
        self,
        process_schema_id: str,
        instance_name: Optional[str] = None,
    ) -> None:
        super().__init__(process_schema_id, NEWS_EVENT_TYPE, instance_name)
        self._query_to_instance: Dict[str, str] = {}

    def bind_query(self, query_id: str, process_instance_id: str) -> None:
        """Relate a registered news query to a process instance."""
        self._query_to_instance[query_id] = process_instance_id

    def matches(self, event: Event) -> bool:
        return event["queryId"] in self._query_to_instance

    def instance_for(self, event: Event) -> Optional[str]:
        return self._query_to_instance.get(event["queryId"])

    def digest(self, event: Event) -> str:
        return f"news article matched query {event['queryId']}: {event['headline']}"
