"""AM event operators (Section 5.1.2, 5.1.3).

An *event operator* is a self-contained, reusable algorithm for recognizing
instances of a pattern of constituent events and calculating the parameters
of the resulting composite events.  All AM operators share three
process-oriented enhancements over generic event processing:

* they output events of the **canonical event type** ``C_P``;
* they **replicate their algorithm per process instance** so events are
  never mixed across instances;
* they are **parameterized families** ``Eop[p1..pm](T1..Tn) -> T_Eop`` whose
  parameters are fixed at design time.

The taxonomy of Section 5.1.3 — filtering, generic, count, comparison, and
process invocation operators — maps to the modules of this package.
"""

from .base import EventOperator, OperatorSignature
from .compare import Compare1, Compare2, Edge
from .count import Count
from .filters import (
    ActivityFilter,
    ContextFilter,
    ExternalFilter,
    QueryCorrelationFilter,
    SystemFilter,
)
from .generic import And, Or, Seq
from .output import DELIVERY_EVENT_TYPE, Output
from .registry import OperatorRegistry, default_registry
from .translate import Translate

__all__ = [
    "ActivityFilter",
    "And",
    "Compare1",
    "Compare2",
    "ContextFilter",
    "Count",
    "DELIVERY_EVENT_TYPE",
    "Edge",
    "EventOperator",
    "ExternalFilter",
    "OperatorRegistry",
    "OperatorSignature",
    "Or",
    "Output",
    "QueryCorrelationFilter",
    "Seq",
    "SystemFilter",
    "Translate",
    "default_registry",
]
