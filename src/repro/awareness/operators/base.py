"""Operator framework: typed slots, parameterization, instance replication.

Section 5.1.2 gives every AM operator three common properties, all
implemented here once:

* **Canonical event type** — operators declare a type signature
  ``Eop[p1..pm](T1..Tn) -> T_Eop``; the framework type-checks events
  arriving on each input slot, so a mis-wired awareness description fails
  loudly at the first event rather than silently dropping information.

* **Process instance replication** — "each event operator must replicate
  its algorithm for each process instance it receives events from ...
  because the process instance is a parameter on the canonical event type,
  the operator may simply use that event parameter to access its
  partitioned internal state."  :meth:`EventOperator.consume` computes the
  partition key (by default the canonical ``processInstanceId``) and hands
  the matching private state to the subclass algorithm.

* **Parameterization** — operator parameters are fixed per instance at
  design time; subclass constructors validate them and store them on the
  instance (usually the first parameter is ``P``, the process schema id).

Subclasses implement :meth:`EventOperator._apply`; the framework is an
event-in/events-out pipeline ("an event operator instance can be thought of
as a computational pipeline that can produce any number of output events
for a single input event").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...errors import ParameterError, SlotError
from ...events.event import Event, EventType
from ...observability import INSTRUMENTATION as _OBS


@dataclass(frozen=True)
class OperatorSignature:
    """The declared type signature ``(T1, ..., Tn) -> T_Eop``."""

    input_types: Tuple[EventType, ...]
    output_type: EventType

    @property
    def arity(self) -> int:
        return len(self.input_types)


class EventOperator:
    """Base class of all AM event operators."""

    #: Human-readable operator family name ("And", "Filter_activity", ...).
    family: str = "operator"

    #: True for operator families whose output stream does not depend on
    #: which input slot an event arrives on (only ``Or``): the plan
    #: canonicalizer may then order-normalize the input keys so mirrored
    #: wirings of the same streams intern to one shared node.
    plan_commutative: bool = False

    def __init__(
        self,
        process_schema_id: str,
        signature: OperatorSignature,
        instance_name: Optional[str] = None,
    ) -> None:
        if not process_schema_id:
            raise ParameterError(
                f"{type(self).__name__} requires a process schema id P"
            )
        self.process_schema_id = process_schema_id
        self.signature = signature
        self.instance_name = instance_name or f"{self.family}"
        self._partitions: Dict[Any, Any] = {}
        #: Downstream consumers: (callable, slot_index) pairs wired by the
        #: awareness description / detector.
        self._consumers: List[Tuple[Callable[[int, Event], None], int]] = []
        #: Parallel batch partners for :meth:`consume_batch`, one per
        #: `_consumers` record (see :meth:`add_consumer`).
        self._batch_consumers: List[
            Tuple[Callable[[int, Sequence[Event]], object], int]
        ] = []
        self.consumed = 0
        self.produced = 0
        #: Transient provenance hand-off: multi-input subclasses (And, Seq)
        #: set this inside `_apply` — guarded by the instrumentation flag —
        #: to report *all* constituent events of an emission, since their
        #: partition state is cleared before `_apply` returns.
        self._constituents: Optional[Tuple[Event, ...]] = None
        #: Lazily-built, shared attribute dict for this operator's spans.
        self._span_attrs: Optional[Dict[str, object]] = None

    # -- wiring -----------------------------------------------------------------

    @property
    def arity(self) -> int:
        return self.signature.arity

    def slot_type(self, slot: int) -> EventType:
        self._check_slot(slot)
        return self.signature.input_types[slot]

    @property
    def output_type(self) -> EventType:
        return self.signature.output_type

    def add_consumer(
        self, consumer: Callable[[int, Event], None], slot: int
    ) -> None:
        """Wire this operator's output into *slot* of a downstream consumer."""
        self._consumers.append((consumer, slot))
        # Batch partner, kept in a parallel list so `consume` never pays a
        # lookup: when the consumer is another operator's bound `consume`,
        # a batch of outputs is handed to its `consume_batch` in one call;
        # anything else (detection collectors, test callables) gets a
        # per-event unroll wrapper.
        owner = getattr(consumer, "__self__", None)
        if (
            isinstance(owner, EventOperator)
            and getattr(consumer, "__func__", None) is EventOperator.consume
        ):
            batch: Callable[[int, Sequence[Event]], object] = owner.consume_batch
        else:

            def batch(
                batch_slot: int,
                events: Sequence[Event],
                _consumer: Callable[[int, Event], None] = consumer,
            ) -> None:
                for event in events:
                    _consumer(batch_slot, event)

        self._batch_consumers.append((batch, slot))

    def remove_consumer(
        self, consumer: Callable[[int, Event], None], slot: Optional[int] = None
    ) -> None:
        """Unwire the first consumer equal to *consumer* (on *slot*, if given).

        Bound-method equality makes ``remove_consumer(op.consume, 2)``
        match the record installed by ``add_consumer(op.consume, 2)``; a
        no-op when nothing matches, so plan detach is idempotent.
        """
        for index, (existing, existing_slot) in enumerate(self._consumers):
            if existing == consumer and (slot is None or existing_slot == slot):
                del self._consumers[index]
                del self._batch_consumers[index]
                return

    def reset_consumers(self) -> None:
        """Drop every wired consumer.

        The plan cache calls this when it interns an operator: the
        authoring-time wiring of the window the instance came from is
        replaced by the shared plan's fan-out, installed edge by edge.
        """
        self._consumers.clear()
        self._batch_consumers.clear()

    def plan_params(self) -> Optional[Tuple[Any, ...]]:
        """Hashable design-time parameters for plan sharing, or ``None``.

        ``None`` — the default — marks the operator *non-shareable*: the
        plan cache always deploys it (and everything downstream of it) as
        a private per-window node.  Families whose behavior is fully
        determined by their constructor parameters override this to
        return those parameters as a hashable tuple; two instances with
        equal family, instance name, parameters, and input plans then
        intern to one shared node across deployed windows.
        """
        return None

    def routing_keys(self, slot: int) -> Optional[Sequence[Any]]:
        """Static routing keys this operator can match on input *slot*.

        Operators whose parameters statically determine which events can
        pass (the filters) return the routing keys — hashables matching
        the key extractor of the slot's primitive event type — so the
        event substrate can index-route and skip them for every other
        event.  ``None`` (the default) means "no static predicate": the
        operator must observe every event on the slot's stream, and the
        substrate files it in the wildcard bucket.
        """
        self._check_slot(slot)
        return None

    # -- event flow ---------------------------------------------------------------

    def consume(self, slot: int, event: Event) -> List[Event]:
        """Feed *event* into input *slot*; returns (and forwards) outputs."""
        input_types = self.signature.input_types
        if not 0 <= slot < len(input_types):
            self._check_slot(slot)
        expected = input_types[slot]
        # Identity fast path: primitive and canonical EventType objects are
        # module-level/cached singletons, so `is` almost always settles it.
        received = event.event_type
        if received is not expected and received.name != expected.name:
            raise SlotError(
                f"operator {self.instance_name!r} slot {slot} expects "
                f"{expected.name!r}, got event of type {event.type_name!r}"
            )
        self.consumed += 1
        key = self.partition_key(slot, event)
        state = self._partitions.get(key)
        if state is None:
            state = self.new_state()
            self._partitions[key] = state
        if not _OBS.enabled:
            outputs = self._apply(slot, event, state)
            for output in outputs:
                self.produced += 1
                for consumer, consumer_slot in self._consumers:
                    consumer(consumer_slot, output)
            return outputs
        # Instrumented tail, inlined (an extra frame per consume is real
        # money at this call rate): wrap the subclass algorithm and the
        # downstream forwarding in an ``operator.consume`` span (downstream
        # consume spans nest under it) and stamp every output with a
        # provenance node linking it to its constituents.  Constituents
        # default to the triggering event; multi-input operators override
        # via :attr:`_constituents`.
        tracer = _OBS.tracer
        if tracer._light_depth:
            # Sampler skipped this trace: bump the depth in place instead
            # of paying two method calls (see Tracer._light_depth).
            tracer._light_depth += 1
            span = None
        else:
            attrs = self._span_attrs
            if attrs is None:
                attrs = self._span_attrs = {
                    "node": self.instance_name,
                    "op": self.family,
                }
            span = tracer.begin(
                "operator.consume", event._params["time"], attrs
            )
        try:
            self._constituents = None
            outputs = self._apply(slot, event, state)
            if outputs:
                constituents = self._constituents
                if constituents is None:
                    constituents = (event,)
                else:
                    self._constituents = None
                tracker = _OBS.provenance
                name = self.instance_name
                family = self.family
                for output in outputs:
                    if output.provenance is None:
                        tracker.record_operator(
                            output, name, family, constituents
                        )
                    self.produced += 1
                    for consumer, consumer_slot in self._consumers:
                        consumer(consumer_slot, output)
        finally:
            if span is None:
                tracer._light_depth -= 1
            else:
                tracer.end(span)
        return outputs

    def consume_batch(self, slot: int, events: Sequence[Event]) -> List[Event]:
        """Feed a run of events into *slot*; forward outputs as one batch.

        Event-for-event equivalent to calling :meth:`consume` on each
        element (same type checks, same partition handling, same
        provenance stamps, outputs concatenated in order) — but the
        downstream fan-out list is traversed once per batch instead of
        once per output, and operator consumers receive the outputs via
        their own ``consume_batch``, so a shared prefix amortizes its
        per-consumer dispatch over the whole run.  The one observable
        difference is interleaving: all outputs reach the first consumer
        before any reaches the second, where ``consume`` alternates
        per output (the relative order seen by each consumer is
        identical).
        """
        if not events:
            return []
        input_types = self.signature.input_types
        if not 0 <= slot < len(input_types):
            self._check_slot(slot)
        expected = input_types[slot]
        partitions = self._partitions
        outputs: List[Event] = []
        instrumented = _OBS.enabled
        span = None
        tracer = None
        if instrumented:
            # One span covers the whole run; provenance is still stamped
            # per output, exactly as consume does.
            tracer = _OBS.tracer
            if tracer._light_depth:
                tracer._light_depth += 1
            else:
                attrs = self._span_attrs
                if attrs is None:
                    attrs = self._span_attrs = {
                        "node": self.instance_name,
                        "op": self.family,
                    }
                span = tracer.begin(
                    "operator.consume", events[0]._params["time"], attrs
                )
        try:
            for event in events:
                received = event.event_type
                if received is not expected and received.name != expected.name:
                    raise SlotError(
                        f"operator {self.instance_name!r} slot {slot} expects "
                        f"{expected.name!r}, got event of type "
                        f"{event.type_name!r}"
                    )
                self.consumed += 1
                key = self.partition_key(slot, event)
                state = partitions.get(key)
                if state is None:
                    state = self.new_state()
                    partitions[key] = state
                if instrumented:
                    self._constituents = None
                    produced = self._apply(slot, event, state)
                    if produced:
                        constituents = self._constituents
                        if constituents is None:
                            constituents = (event,)
                        else:
                            self._constituents = None
                        tracker = _OBS.provenance
                        for output in produced:
                            if output.provenance is None:
                                tracker.record_operator(
                                    output,
                                    self.instance_name,
                                    self.family,
                                    constituents,
                                )
                        outputs.extend(produced)
                else:
                    produced = self._apply(slot, event, state)
                    if produced:
                        outputs.extend(produced)
        finally:
            if instrumented:
                if span is None:
                    tracer._light_depth -= 1  # type: ignore[union-attr]
                else:
                    tracer.end(span)  # type: ignore[union-attr]
        if outputs:
            self.produced += len(outputs)
            for batch_consumer, consumer_slot in self._batch_consumers:
                batch_consumer(consumer_slot, outputs)
        return outputs

    # -- subclass hooks ---------------------------------------------------------------

    def partition_key(self, slot: int, event: Event) -> Any:
        """The replication key; canonical inputs partition by instance id."""
        return event.get("processInstanceId")

    def new_state(self) -> Any:
        """Fresh private state for one partition (default: stateless)."""
        return None

    def _apply(self, slot: int, event: Event, state: Any) -> List[Event]:
        raise NotImplementedError

    # -- introspection ------------------------------------------------------------------

    def partition_count(self) -> int:
        """How many process instances this operator has replicated for."""
        return len(self._partitions)

    def describe(self) -> str:
        """One-line rendering used by the specification tool."""
        return f"{self.family}[{self.process_schema_id}]"

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.signature.arity:
            raise SlotError(
                f"operator {self.instance_name!r} has {self.signature.arity} "
                f"slots; slot {slot} does not exist"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.instance_name!r})"


def check_copy_parameter(copy: int, arity: int, family: str) -> None:
    """Validate the 1-based ``copy`` parameter of And/Seq (Section 5.1.3)."""
    if not 1 <= copy <= arity:
        raise ParameterError(
            f"{family} copy parameter must satisfy 1 <= copy <= {arity}, "
            f"got {copy}"
        )
