"""Awareness role assignment functions ``RA_P`` (Section 5.3).

"The awareness role assignment allows a specific subset of the awareness
delivery role to actually receive the information ... an arbitrary function
on the set of users gathered by resolving the awareness role that returns a
subset of those users.  The function may choose users that should receive
awareness information based on their load or whether they are currently
signed-on to the system.  Currently, the only implemented awareness role
assignment function is the identity function."

We implement the paper's identity function plus the two anticipated
policies (signed-on filtering and load-based selection), registered by name
so output operators can reference them in delivery instructions.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from ..core.roles import Participant
from ..errors import DeliveryError

#: An assignment maps the resolved role member set to the receiving subset.
RoleAssignment = Callable[[FrozenSet[Participant]], FrozenSet[Participant]]


def identity_assignment(members: FrozenSet[Participant]) -> FrozenSet[Participant]:
    """All users in the awareness delivery role receive the information."""
    return members


def signed_on_assignment(members: FrozenSet[Participant]) -> FrozenSet[Participant]:
    """Only currently signed-on users receive the information."""
    return frozenset(p for p in members if p.signed_on)


def least_loaded_assignment(n: int = 1) -> RoleAssignment:
    """Select the *n* least-loaded users (deterministic tie-break by id)."""
    if n < 1:
        raise DeliveryError(f"least_loaded assignment requires n >= 1, got {n}")

    def assign(members: FrozenSet[Participant]) -> FrozenSet[Participant]:
        ranked = sorted(members, key=lambda p: (p.load, p.participant_id))
        return frozenset(ranked[:n])

    return assign


class AssignmentRegistry:
    """Name -> assignment function, used by the delivery agent."""

    def __init__(self) -> None:
        self._assignments: Dict[str, RoleAssignment] = {}
        self.register("identity", identity_assignment)
        self.register("signed_on", signed_on_assignment)
        self.register("least_loaded", least_loaded_assignment(1))

    def register(self, name: str, assignment: RoleAssignment) -> None:
        if name in self._assignments:
            raise DeliveryError(f"assignment {name!r} is already registered")
        self._assignments[name] = assignment

    def lookup(self, name: str) -> RoleAssignment:
        try:
            return self._assignments[name]
        except KeyError:
            raise DeliveryError(
                f"unknown role assignment {name!r}; registered: "
                f"{sorted(self._assignments)}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._assignments))
