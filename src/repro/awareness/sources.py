"""Event source agents (Section 6.3).

"The implementation of AM provides event source agents for gathering
primitive events and delivering them to interested software components.
Conceptually, the event source agents in CMI are part of the Awareness
Engine, though they are tightly bound to the actual event sources."

Two agents mirror the paper's two primitive event kinds:

* :class:`ActivitySourceAgent` instruments the Coordination/CORE engine
  side: it hooks the CORE engine's activity state change callback and
  converts each change into a ``T_activity`` event through the single
  ``E_activity`` producer;
* :class:`ContextSourceAgent` instruments the CORE engine's context store
  the same way for ``E_context``.

Both count what they gathered — in the metrics registry, as the
``events_gathered_total{source=...}`` counter — so the architecture
benchmark (FIG5) can verify event flow between components.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from ..core.context import ContextChange
from ..core.engine import CoreEngine
from ..core.instances import ActivityStateChange
from ..events.bus import EventBus
from ..events.producers import ActivityEventProducer, ContextEventProducer
from ..observability import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..events.event import Event

#: Counter name shared by both source agents; the label tells them apart.
GATHERED_COUNTER = "events_gathered_total"


def _gathered_child(metrics: MetricsRegistry, source: str):
    return metrics.counter(
        GATHERED_COUNTER,
        "Primitive change records gathered, by source agent",
        ("source",),
    ).child((source,))


class ActivitySourceAgent:
    """Gathers activity state change events at the coordination side."""

    def __init__(
        self,
        core: CoreEngine,
        producer: Optional[ActivityEventProducer] = None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.producer = producer or ActivityEventProducer(metrics=metrics)
        if bus is not None:
            self.producer.attach(bus)
        self._gathered = _gathered_child(metrics, "activity")
        core.on_activity_change(self._gather)

    @property
    def gathered(self) -> int:
        """Change records gathered (a view over the registry counter)."""
        return int(self._gathered.value())

    def _gather(self, change: ActivityStateChange) -> None:
        self._gathered.inc()
        self.producer.produce(change)


class ContextSourceAgent:
    """Gathers context resource field change events at the CORE side."""

    def __init__(
        self,
        core: CoreEngine,
        producer: Optional[ContextEventProducer] = None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.producer = producer or ContextEventProducer(metrics=metrics)
        if bus is not None:
            self.producer.attach(bus)
        self._gathered = _gathered_child(metrics, "context")
        core.on_context_change(self._gather)

    @property
    def gathered(self) -> int:
        """Change records gathered (a view over the registry counter)."""
        return int(self._gathered.value())

    def _gather(self, change: ContextChange) -> None:
        self._gathered.inc()
        self.producer.produce(change)

    def gather_batch(self, changes: Iterable[ContextChange]) -> List["Event"]:
        """Forward a burst of field changes as one producer batch.

        Bulk context updates (e.g. :meth:`ContextReference.update`) hand
        their change records here so the bus sees a single
        ``publish_batch`` instead of one drain per field.
        """
        change_list = list(changes)
        self._gathered.inc(len(change_list))
        return self.producer.produce_batch(change_list)
