"""Event source agents (Section 6.3).

"The implementation of AM provides event source agents for gathering
primitive events and delivering them to interested software components.
Conceptually, the event source agents in CMI are part of the Awareness
Engine, though they are tightly bound to the actual event sources."

Two agents mirror the paper's two primitive event kinds:

* :class:`ActivitySourceAgent` instruments the Coordination/CORE engine
  side: it hooks the CORE engine's activity state change callback and
  converts each change into a ``T_activity`` event through the single
  ``E_activity`` producer;
* :class:`ContextSourceAgent` instruments the CORE engine's context store
  the same way for ``E_context``.

Both count what they gathered — in the metrics registry, as the
``events_gathered_total{source=...}`` counter — so the architecture
benchmark (FIG5) can verify event flow between components.

A third agent closes the self-awareness loop:
:class:`SystemTelemetrySource` samples the *system's own*
:class:`~repro.observability.MetricsRegistry` on logical-clock advance and
publishes each sample as a ``T_system`` event, so health rules are
authored, deployed, and delivered exactly like any other awareness
(Section 5.1.1's "an event source agent must be implemented for each
source of primitive events" — here the source is CMI itself).
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..clock import LogicalClock
from ..core.context import ContextChange
from ..core.engine import CoreEngine
from ..core.instances import ActivityStateChange
from ..events.bus import EventBus
from ..events.producers import (
    ActivityEventProducer,
    ContextEventProducer,
    SystemEventProducer,
)
from ..observability import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MultiCallbackGauge,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..events.event import Event

#: Counter name shared by both source agents; the label tells them apart.
GATHERED_COUNTER = "events_gathered_total"


def _gathered_child(metrics: MetricsRegistry, source: str):
    return metrics.counter(
        GATHERED_COUNTER,
        "Primitive change records gathered, by source agent",
        ("source",),
    ).child((source,))


class ActivitySourceAgent:
    """Gathers activity state change events at the coordination side."""

    def __init__(
        self,
        core: CoreEngine,
        producer: Optional[ActivityEventProducer] = None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.producer = producer or ActivityEventProducer(metrics=metrics)
        if bus is not None:
            self.producer.attach(bus)
        self._gathered = _gathered_child(metrics, "activity")
        core.on_activity_change(self._gather)

    @property
    def gathered(self) -> int:
        """Change records gathered (a view over the registry counter)."""
        return int(self._gathered.value())

    def _gather(self, change: ActivityStateChange) -> None:
        self._gathered.inc()
        self.producer.produce(change)


class ContextSourceAgent:
    """Gathers context resource field change events at the CORE side."""

    def __init__(
        self,
        core: CoreEngine,
        producer: Optional[ContextEventProducer] = None,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.producer = producer or ContextEventProducer(metrics=metrics)
        if bus is not None:
            self.producer.attach(bus)
        self._gathered = _gathered_child(metrics, "context")
        core.on_context_change(self._gather)

    @property
    def gathered(self) -> int:
        """Change records gathered (a view over the registry counter)."""
        return int(self._gathered.value())

    def _gather(self, change: ContextChange) -> None:
        self._gathered.inc()
        self.producer.produce(change)

    def gather_batch(self, changes: Iterable[ContextChange]) -> List["Event"]:
        """Forward a burst of field changes as one producer batch.

        Bulk context updates (e.g. :meth:`ContextReference.update`) hand
        their change records here so the bus sees a single
        ``publish_batch`` instead of one drain per field.
        """
        change_list = list(changes)
        self._gathered.inc(len(change_list))
        return self.producer.produce_batch(change_list)


#: One telemetry reading: ``(metric, series label or None, value)``.
Sample = Tuple[str, Optional[str], int]

#: Default sampling period in logical-clock ticks.
DEFAULT_SAMPLING_INTERVAL = 5

#: Registry instruments sampled by default — the self-awareness surface:
#: per-participant queue depths, delivery lag, bus failures, the timer
#: backlog, open work items, and journal divergence (each registered by
#: :class:`~repro.federation.system.EnactmentSystem`; absent names are
#: skipped, so the source also works over a partial registry).
DEFAULT_SYSTEM_METRICS: Tuple[str, ...] = (
    "queue_depth",
    "delivery_lag",
    "bus_failed_total",
    "timer_backlog",
    "work_items_open",
    "journal_divergence",
    "shard_recoveries",
)

#: Name of the derived per-stage p95 latency metric (microseconds), read
#: off the tracer's ``pipeline_stage_us`` histogram when present.
STAGE_P95_METRIC = "stage_p95_us"


class SystemTelemetrySource:
    """Gathers ``T_system`` telemetry events from the metrics registry.

    Hooks the logical clock: every :attr:`interval` ticks (and on demand
    via :meth:`sample_now`) it reads the configured registry instruments
    and publishes one ``produce_batch`` of samples.  Beyond the raw
    instrument values it derives:

    * **rates** — :meth:`watch_rate` emits ``rate[metric/window]``, the
      increase of *metric* over the last *window* sampling passes (how
      SLO "failure rate over window" rules see a monotone counter);
    * **staleness** — :meth:`watch_staleness` emits ``stale[metric]``,
      the count of consecutive passes in which *metric* did not increase
      (the absence/watchdog primitive: a counter that should keep moving
      but does not drives this up).

    Observers registered with :meth:`on_sample` see every pass
    synchronously — the health evaluator uses this to refresh its rule
    states in lock-step with the events it publishes.

    **Delta suppression.**  Only readings that *changed* since the last
    pass are published as ``T_system`` events; observers always receive
    the full sample set.  Steady-state telemetry therefore costs near
    zero bus traffic, and a persistent SLO breach produces one alert at
    the transition instead of one per sampling pass.  Detection latency
    is unaffected: a breach changes the reading, so the first pass after
    it publishes.
    """

    def __init__(
        self,
        clock: LogicalClock,
        metrics: MetricsRegistry,
        producer: Optional[SystemEventProducer] = None,
        bus: Optional[EventBus] = None,
        system_id: str = "cmi",
        interval: int = DEFAULT_SAMPLING_INTERVAL,
        sampled_metrics: Sequence[str] = DEFAULT_SYSTEM_METRICS,
    ) -> None:
        if interval < 1:
            raise ValueError(f"sampling interval must be >= 1, got {interval}")
        self.metrics = metrics
        self.clock = clock
        self.interval = interval
        self.sampled_metrics: Tuple[str, ...] = tuple(sampled_metrics)
        self.producer = producer or SystemEventProducer(
            system_id=system_id, metrics=metrics
        )
        if bus is not None:
            self.producer.attach(bus)
        self._gathered = _gathered_child(metrics, "system")
        self._rates: Dict[Tuple[str, int], Deque[int]] = {}
        self._stale: Dict[str, Tuple[int, int]] = {}
        self._published: Dict[Tuple[str, Optional[str]], int] = {}
        #: Metric name -> (kind, instrument), filled lazily by `_collect`.
        self._resolved: Dict[str, Tuple[int, Any]] = {}
        self._observers: List[Callable[[List[Sample], int], None]] = []
        self._last_sample = clock.now()
        clock.on_advance(self._on_advance)

    @property
    def gathered(self) -> int:
        """Telemetry samples gathered (a view over the registry counter)."""
        return int(self._gathered.value())

    # -- derived series ----------------------------------------------------

    def watch_rate(self, metric: str, window: int) -> str:
        """Derive ``rate[metric/window]``; returns the derived name."""
        if window < 1:
            raise ValueError(f"rate window must be >= 1, got {window}")
        key = (metric, window)
        if key not in self._rates:
            self._rates[key] = deque(maxlen=window + 1)
        return f"rate[{metric}/{window}]"

    def watch_staleness(self, metric: str) -> str:
        """Derive ``stale[metric]``; returns the derived name."""
        if metric not in self._stale:
            self._stale[metric] = (0, 0)
        return f"stale[{metric}]"

    def on_sample(
        self, observer: Callable[[List[Sample], int], None]
    ) -> None:
        """Call ``observer(samples, now)`` after every sampling pass."""
        self._observers.append(observer)

    # -- sampling ----------------------------------------------------------

    def _on_advance(self, now: int) -> None:
        if now - self._last_sample >= self.interval:
            self.sample_now(now)

    def sample_now(self, now: Optional[int] = None) -> List[Sample]:
        """Run one sampling pass immediately; returns the samples."""
        if now is None:
            now = self.clock.now()
        self._last_sample = now
        samples = self._collect()
        self._derive(samples)
        self._gathered.inc(len(samples))
        published = self._published
        changed = [
            sample for sample in samples
            if published.get((sample[0], sample[1])) != sample[2]
        ]
        for metric, label, value in changed:
            published[(metric, label)] = value
        if changed:
            self.producer.produce_batch(now, changed)
        for observer in list(self._observers):
            observer(samples, now)
        return samples

    def _collect(self) -> List[Sample]:
        samples: List[Sample] = []
        registry = self.metrics
        resolved = self._resolved
        for name in self.sampled_metrics:
            entry = resolved.get(name)
            if entry is None:
                # Instruments are registered once and never replaced, so
                # the (kind, instrument) resolution is cached; unresolved
                # names are re-probed each pass in case they appear later.
                instrument = registry.get(name)
                if instrument is None:
                    continue
                if isinstance(instrument, Counter):
                    kind = 0
                elif isinstance(instrument, MultiCallbackGauge):
                    kind = 1
                elif isinstance(instrument, (Gauge, CallbackGauge)):
                    kind = 2
                else:
                    continue
                entry = resolved[name] = (kind, instrument)
            kind, instrument = entry
            if kind == 0:
                samples.append((name, None, int(instrument.total())))
            elif kind == 1:
                series = instrument.series()
                total = 0.0
                for labels, value in sorted(series.items()):
                    total += value
                    samples.append((name, ",".join(labels), int(value)))
                samples.append((name, None, int(total)))
            else:
                for labels, value in sorted(instrument.series().items()):
                    label = ",".join(labels) if labels else None
                    samples.append((name, label, int(value)))
        histogram = registry.get("pipeline_stage_us")
        if isinstance(histogram, Histogram):
            for labels in sorted(histogram.series_labels()):
                p95 = _histogram_p95(histogram, labels)
                if p95 is not None:
                    samples.append((STAGE_P95_METRIC, ",".join(labels), p95))
        return samples

    def _derive(self, samples: List[Sample]) -> None:
        # Derivations read the pass's *unlabelled* series (the totals).
        totals = {
            metric: value
            for metric, label, value in samples
            if label is None
        }
        for (metric, window), history in self._rates.items():
            value = totals.get(metric)
            if value is None:
                continue
            history.append(value)
            samples.append(
                (f"rate[{metric}/{window}]", None, value - history[0])
            )
        for metric, (last, misses) in self._stale.items():
            value = totals.get(metric)
            if value is None:
                continue
            misses = 0 if value > last else misses + 1
            self._stale[metric] = (max(last, value), misses)
            samples.append((f"stale[{metric}]", None, misses))


def _histogram_p95(histogram: Histogram, labels: Tuple[str, ...]) -> Optional[int]:
    """The 95th-percentile upper bucket edge of one histogram series.

    Bucketed quantile in Prometheus style: the smallest bucket edge whose
    cumulative count covers 95% of observations (overflow observations
    report the last finite edge).  ``None`` for an empty series.
    """
    counts, __, count = histogram.snapshot(labels)
    if count == 0:
        return None
    need = 0.95 * count
    running = 0
    for index, bucket_count in enumerate(counts):
        running += bucket_count
        if running >= need:
            if index >= len(histogram.buckets):
                return int(histogram.buckets[-1])
            return int(histogram.buckets[index])
    return int(histogram.buckets[-1])
