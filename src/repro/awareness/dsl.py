"""The awareness specification language (Section 5).

"AM provides an awareness specification *language* that is used by
awareness designers to construct awareness schemas."  The paper renders
operator applications as ``Eop[p1, ..., pm](T1, ..., Tn)`` — design-time
parameters in brackets, consumed event streams in parentheses.  This
module implements a small textual language using exactly that notation, so
a specification reads like the paper's formulas:

.. code-block:: text

    # The Section 5.4 deadline-violation awareness schema.
    op1 = Filter_context[TaskForceContext, TaskForceDeadline](ContextEvent)
    op2 = Filter_context[InfoRequestContext, RequestDeadline](ContextEvent)
    violation = Compare2[<=](op1, op2)
    deliver violation to InfoRequestContext.Requestor using identity \
        as "Task force deadline moved before your request deadline" \
        named AS_InfoRequest

Statement forms:

* ``name = Family[param, ...](input, ...)`` — place and wire an operator.
  Inputs are window source names (``ContextEvent``, ``ActivityEvent``,
  registered external sources) or previously defined operator names.
  Parameters may be identifiers, quoted strings, integers, ``*`` (a
  wildcard, passed as ``None``), state sets ``{Ready, Running}``, and the
  comparison symbols ``<= < >= > == !=``.
* ``deliver name to Role using assignment as "text" [named AS_Name]`` —
  root the named node with an output operator; ``Role`` is either a global
  role name or ``Context.Role`` for a scoped role.
* ``#`` starts a comment; a trailing backslash continues a line.

Parameter conventions per built-in family (the window supplies ``P``):

* ``Filter_context[context_name, field_name]``
* ``Filter_activity[activity_variable, old_states, new_states]`` — each
  state set is ``{A, B}`` or ``*`` for "any"
* ``Filter_system[metric]`` / ``Filter_system[metric, series_label]`` —
  telemetry samples of one metric; no label means the unlabelled total
  series, ``*`` means any series.  Derived metric names contain brackets
  (``rate[m/w]``), so quote them: ``Filter_system["rate[m/5]"]``
* ``And[copy]`` / ``Seq[copy]`` — optional 1-based copy parameter
  (default 1); the arity is inferred from the input list
* ``Or[]`` / ``Count[]`` — no parameters
* ``Compare1[op, value]`` — e.g. ``Compare1[==, 1]``
* ``Edge[op, value]`` — rising-edge ``Compare1``: passes only when the
  test starts holding, e.g. ``Edge[>, 50]``
* ``Compare2[op]`` — e.g. ``Compare2[<=]``
* ``Translate[invoked_schema, activity_variable]`` — the invoking schema
  is the window's
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.roles import RoleRef
from ..errors import SpecificationError
from .operators.compare import NAMED_BOOL_FUNCS_2, named_bool_func_2
from .schema import AwarenessSchema
from .specification import SpecificationWindow

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<string>"[^"]*")
  | (?P<comparison><=|>=|==|!=|<|>)
  | (?P<number>-?\d+)
  | (?P<identifier>[A-Za-z_][\w.\-]*)
  | (?P<symbol>[=\[\](){},*])
  | (?P<whitespace>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int


def tokenize(text: str) -> List[Token]:
    """Split the specification text into tokens; comments are stripped and
    backslash continuations joined before scanning."""
    logical_lines: List[Tuple[int, str]] = []
    pending = ""
    pending_start = 1
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0]
        stripped = line.rstrip()
        if stripped.endswith("\\"):
            if not pending:
                pending_start = number
            pending += stripped[:-1] + " "
            continue
        if pending:
            logical_lines.append((pending_start, pending + line))
            pending = ""
        elif line.strip():
            logical_lines.append((number, line))
    if pending:
        logical_lines.append((pending_start, pending))

    tokens: List[Token] = []
    for number, line in logical_lines:
        position = 0
        while position < len(line):
            match = _TOKEN_PATTERN.match(line, position)
            if match is None:
                raise SpecificationError(
                    f"line {number}: cannot tokenize {line[position:]!r}"
                )
            position = match.end()
            kind = match.lastgroup
            if kind == "whitespace":
                continue
            value = match.group()
            if kind == "string":
                value = value[1:-1]
            tokens.append(Token(kind, value, number))
        tokens.append(Token("newline", "\n", number))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


@dataclass
class _OperatorStatement:
    name: str
    family: str
    parameters: List[Any]
    inputs: List[str]
    line: int


@dataclass
class _DeliverStatement:
    node: str
    role: RoleRef
    assignment: str
    description: str
    schema_name: Optional[str]
    line: int


Statement = Union[_OperatorStatement, _DeliverStatement]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SpecificationError("unexpected end of specification")
        self._index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise SpecificationError(
                f"line {token.line}: expected {wanted!r}, got {token.value!r}"
            )
        return token

    def _skip_newlines(self) -> None:
        while (token := self._peek()) is not None and token.kind == "newline":
            self._index += 1

    def parse(self) -> List[Statement]:
        statements: List[Statement] = []
        self._skip_newlines()
        while self._peek() is not None:
            token = self._peek()
            assert token is not None
            if token.kind == "identifier" and token.value == "deliver":
                statements.append(self._parse_deliver())
            elif token.kind == "identifier":
                statements.append(self._parse_operator())
            else:
                raise SpecificationError(
                    f"line {token.line}: unexpected {token.value!r}"
                )
            self._skip_newlines()
        return statements

    # -- name = Family[params](inputs) -----------------------------------------

    def _parse_operator(self) -> _OperatorStatement:
        name_token = self._expect("identifier")
        self._expect("symbol", "=")
        family_token = self._expect("identifier")
        parameters = self._parse_parameters()
        inputs = self._parse_inputs()
        self._expect("newline")
        return _OperatorStatement(
            name=name_token.value,
            family=family_token.value,
            parameters=parameters,
            inputs=inputs,
            line=name_token.line,
        )

    def _parse_parameters(self) -> List[Any]:
        self._expect("symbol", "[")
        parameters: List[Any] = []
        while True:
            token = self._peek()
            if token is None:
                raise SpecificationError("unterminated parameter list")
            if token.kind == "symbol" and token.value == "]":
                self._next()
                return parameters
            parameters.append(self._parse_parameter_value())
            token = self._peek()
            if token is not None and token.kind == "symbol" and token.value == ",":
                self._next()

    def _parse_parameter_value(self) -> Any:
        token = self._next()
        if token.kind == "symbol" and token.value == "*":
            return None
        if token.kind == "symbol" and token.value == "{":
            return self._parse_state_set()
        if token.kind == "number":
            return int(token.value)
        if token.kind in ("identifier", "string", "comparison"):
            return token.value
        raise SpecificationError(
            f"line {token.line}: invalid parameter {token.value!r}"
        )

    def _parse_state_set(self) -> frozenset:
        values = []
        while True:
            token = self._next()
            if token.kind == "symbol" and token.value == "}":
                return frozenset(values)
            if token.kind == "symbol" and token.value == ",":
                continue
            if token.kind == "identifier":
                values.append(token.value)
                continue
            raise SpecificationError(
                f"line {token.line}: invalid state set element {token.value!r}"
            )

    def _parse_inputs(self) -> List[str]:
        self._expect("symbol", "(")
        inputs: List[str] = []
        while True:
            token = self._next()
            if token.kind == "symbol" and token.value == ")":
                return inputs
            if token.kind == "symbol" and token.value == ",":
                continue
            if token.kind == "identifier":
                inputs.append(token.value)
                continue
            raise SpecificationError(
                f"line {token.line}: invalid input {token.value!r}"
            )

    # -- deliver ... -------------------------------------------------------------

    def _parse_deliver(self) -> _DeliverStatement:
        keyword = self._expect("identifier")  # 'deliver'
        node = self._expect("identifier").value
        self._expect_keyword("to")
        role = self._parse_role()
        assignment = "identity"
        description = ""
        schema_name: Optional[str] = None
        while (token := self._peek()) is not None and token.kind != "newline":
            word = self._expect("identifier").value
            if word == "using":
                assignment = self._expect("identifier").value
            elif word == "as":
                description = self._expect("string").value
            elif word == "named":
                schema_name = self._expect("identifier").value
            else:
                raise SpecificationError(
                    f"line {token.line}: unexpected {word!r} in deliver"
                )
        self._expect("newline")
        return _DeliverStatement(
            node=node,
            role=role,
            assignment=assignment,
            description=description,
            schema_name=schema_name,
            line=keyword.line,
        )

    def _expect_keyword(self, word: str) -> None:
        token = self._expect("identifier")
        if token.value != word:
            raise SpecificationError(
                f"line {token.line}: expected {word!r}, got {token.value!r}"
            )

    def _parse_role(self) -> RoleRef:
        token = self._expect("identifier")
        if "." in token.value:
            context_name, __, role_name = token.value.partition(".")
            if not context_name or not role_name:
                raise SpecificationError(
                    f"line {token.line}: malformed role {token.value!r}"
                )
            return RoleRef(role_name, context_name)
        return RoleRef(token.value)


# ---------------------------------------------------------------------------
# Compilation onto a specification window
# ---------------------------------------------------------------------------


def _build_operator(
    window: SpecificationWindow, statement: _OperatorStatement
):
    """Translate the parameter conventions per family and place the op."""
    family = statement.family
    params = statement.parameters
    arity = len(statement.inputs)

    def fail(message: str) -> SpecificationError:
        return SpecificationError(f"line {statement.line}: {message}")

    if family in ("Filter_context",):
        # Paper notation allows the explicit process schema as the first
        # parameter — Filter_context[P, Cname, Fname] — which is how a
        # filter over an *invoked* process schema feeds a Translate.
        if len(params) == 3:
            from .operators.filters import ContextFilter

            return window.place_operator(
                ContextFilter(
                    params[0], params[1], params[2],
                    instance_name=statement.name,
                )
            )
        if len(params) != 2:
            raise fail(
                "Filter_context takes [context_name, field_name] or "
                "[P, context_name, field_name]"
            )
        return window.place(
            family, params[0], params[1], instance_name=statement.name
        )
    if family == "Filter_system":
        if not params or len(params) > 2 or not isinstance(params[0], str):
            raise fail(
                "Filter_system takes [metric] or [metric, series_label] "
                "(series label * matches any series)"
            )
        from .operators.filters import SystemFilter

        label: Optional[str] = None
        if len(params) == 2:
            if params[1] is None:
                label = SystemFilter.ANY_SERIES
            elif isinstance(params[1], str):
                label = params[1]
            else:
                raise fail("Filter_system series label must be a name or *")
        return window.place(
            family, params[0], label, instance_name=statement.name
        )
    if family == "Filter_activity":
        if len(params) == 4:
            from .operators.filters import ActivityFilter

            return window.place_operator(
                ActivityFilter(
                    params[0], params[1], params[2], params[3],
                    instance_name=statement.name,
                )
            )
        if len(params) != 3:
            raise fail(
                "Filter_activity takes [activity_variable, old_states, "
                "new_states] or [P, activity_variable, old_states, new_states]"
            )
        return window.place(
            family, params[0], params[1], params[2],
            instance_name=statement.name,
        )
    if family in ("And", "Seq"):
        if len(params) > 1:
            raise fail(f"{family} takes an optional [copy] parameter")
        copy = params[0] if params else 1
        if not isinstance(copy, int):
            raise fail(f"{family} copy parameter must be an integer")
        if arity < 2:
            raise fail(f"{family} needs at least two inputs")
        return window.place(
            family, copy=copy, arity=arity, instance_name=statement.name
        )
    if family == "Or":
        if params:
            raise fail("Or takes no parameters")
        if arity < 2:
            raise fail("Or needs at least two inputs")
        return window.place(family, arity=arity, instance_name=statement.name)
    if family == "Count":
        if params:
            raise fail("Count takes no parameters")
        return window.place(family, instance_name=statement.name)
    if family in ("Compare1", "Edge"):
        if len(params) != 2 or params[0] not in NAMED_BOOL_FUNCS_2:
            raise fail(f"{family} takes [comparison, integer], e.g. [==, 1]")
        threshold = params[1]
        if not isinstance(threshold, int):
            raise fail(f"{family} threshold must be an integer")
        comparison = named_bool_func_2(params[0])
        operator = window.place(
            family,
            lambda value, c=comparison, t=threshold: c(value, t),
            instance_name=statement.name,
        )
        # Stash the textual form so window_to_dsl can decompile it.
        operator._dsl_rendering = f"{family}[{params[0]}, {threshold}]"
        return operator
    if family == "Compare2":
        if len(params) != 1 or params[0] not in NAMED_BOOL_FUNCS_2:
            raise fail("Compare2 takes [comparison], e.g. [<=]")
        return window.place(family, params[0], instance_name=statement.name)
    if family == "Translate":
        if len(params) != 2:
            raise fail("Translate takes [invoked_schema, activity_variable]")
        return window.place(
            family, params[0], params[1], instance_name=statement.name
        )
    raise fail(f"unknown operator family {family!r}")


def compile_specification(
    window: SpecificationWindow, text: str
) -> Tuple[AwarenessSchema, ...]:
    """Compile DSL *text* onto *window*; returns the delivered schemas.

    Operator statements place and wire operators; ``deliver`` statements
    root them with output operators.  Names are single-assignment;
    forward references are errors (the language is declarative but reads
    top-down, like the paper's formula sequences).
    """
    statements = _Parser(tokenize(text)).parse()
    nodes: Dict[str, Any] = {}
    schemas: List[AwarenessSchema] = []
    for statement in statements:
        if isinstance(statement, _OperatorStatement):
            if statement.name in nodes:
                raise SpecificationError(
                    f"line {statement.line}: {statement.name!r} is already "
                    f"defined"
                )
            operator = _build_operator(window, statement)
            for slot, input_name in enumerate(statement.inputs):
                source = nodes.get(input_name)
                if source is None:
                    try:
                        source = window.source(input_name)
                    except SpecificationError:
                        raise SpecificationError(
                            f"line {statement.line}: unknown input "
                            f"{input_name!r}"
                        ) from None
                window.connect(source, operator, slot)
            nodes[statement.name] = operator
        else:
            source = nodes.get(statement.node)
            if source is None:
                raise SpecificationError(
                    f"line {statement.line}: deliver references unknown "
                    f"operator {statement.node!r}"
                )
            schemas.append(
                window.output(
                    source,
                    delivery_role=statement.role,
                    assignment_name=statement.assignment,
                    user_description=statement.description,
                    schema_name=statement.schema_name,
                )
            )
    if not schemas:
        raise SpecificationError(
            "specification defines no `deliver` statement; nothing would "
            "ever reach a participant"
        )
    return tuple(schemas)


# ---------------------------------------------------------------------------
# Decompilation: window -> DSL text (spec persistence)
# ---------------------------------------------------------------------------


def _render_state_set(states) -> str:
    if states is None:
        return "*"
    return "{" + ", ".join(sorted(states)) + "}"


_IDENTIFIER = re.compile(r"[A-Za-z_][\w.\-]*\Z")


def _render_system_param(value: str) -> str:
    """Quote metric/series names the tokenizer cannot read bare (e.g.
    derived names like ``rate[m/5]``)."""
    if _IDENTIFIER.match(value):
        return value
    return f'"{value}"'


def _render_operator(operator, window: SpecificationWindow) -> str:
    """Render one operator statement in the paper's bracket notation."""
    from .operators.compare import NAMED_BOOL_FUNCS_2
    from .operators.count import Count
    from .operators.compare import Compare1, Compare2, Edge
    from .operators.filters import ActivityFilter, ContextFilter, SystemFilter
    from .operators.generic import And, Or, Seq
    from .operators.translate import Translate

    if isinstance(operator, SystemFilter):
        params = [_render_system_param(operator.metric)]
        if operator.series_label == SystemFilter.ANY_SERIES:
            params.append("*")
        elif operator.series_label is not None:
            params.append(_render_system_param(operator.series_label))
        return f"Filter_system[{', '.join(params)}]"
    if isinstance(operator, ContextFilter):
        params = [operator.context_name, operator.field_name]
        if operator.process_schema_id != window.process_schema_id:
            params.insert(0, operator.process_schema_id)
        return f"Filter_context[{', '.join(params)}]"
    if isinstance(operator, ActivityFilter):
        params = [
            operator.activity_variable,
            _render_state_set(operator.states_old),
            _render_state_set(operator.states_new),
        ]
        if operator.process_schema_id != window.process_schema_id:
            params.insert(0, operator.process_schema_id)
        return f"Filter_activity[{', '.join(params)}]"
    if isinstance(operator, (And, Seq)):
        return f"{operator.family}[{operator.copy}]"
    if isinstance(operator, Or):
        return "Or[]"
    if isinstance(operator, Count):
        return "Count[]"
    if isinstance(operator, Compare2):
        symbol = next(
            (s for s, f in NAMED_BOOL_FUNCS_2.items() if f is operator.bool_func),
            None,
        )
        if symbol is None:
            raise SpecificationError(
                f"operator {operator.instance_name!r} uses an unnamed "
                f"comparison; only named comparisons decompile to DSL"
            )
        return f"Compare2[{symbol}]"
    if isinstance(operator, (Compare1, Edge)):
        rendering = getattr(operator, "_dsl_rendering", None)
        if rendering is None:
            raise SpecificationError(
                f"operator {operator.instance_name!r} carries an arbitrary "
                f"boolFunc1; only DSL-authored {operator.family} decompiles"
            )
        return rendering
    if isinstance(operator, Translate):
        return (
            f"Translate[{operator.invoked_schema_id}, "
            f"{operator.activity_variable}]"
        )
    raise SpecificationError(
        f"operator family {operator.family!r} has no DSL rendering"
    )


def window_to_dsl(window: SpecificationWindow) -> str:
    """Decompile *window* into DSL text that recompiles to an equivalent
    window (built-in operator families only).

    Together with :func:`compile_specification` this makes the DSL the
    persistence format for awareness specifications: author, save the
    text, reload on the next system boot.
    """
    from .operators.output import Output

    graph = window.graph
    source_names = {}
    for name in ("ActivityEvent", "ContextEvent"):
        try:
            source_names[id(window.source(name))] = name
        except SpecificationError:
            pass
    for name, producer in list(window._sources.items()):
        source_names.setdefault(id(producer), name)

    # Emit operators in wiring (dependency) order; edges were added in
    # topological order by construction, but operators may have been
    # placed early — order by "all inputs already named".  Within each
    # wave, operators are sorted by instance name (then family), so the
    # decompiled text is a *canonical* ordering: two windows that are
    # structurally equal decompile identically regardless of placement
    # order, and plan-cache keys computed over re-authored windows
    # reproduce.
    operator_names: Dict[int, str] = {}
    lines: List[str] = []
    pending = [
        op for op in graph.operators() if not isinstance(op, Output)
    ]
    used_names = set()
    while pending:
        ready = [
            operator
            for operator in pending
            if all(
                id(source) in source_names or id(source) in operator_names
                for source, __ in graph.upstream(operator)
            )
        ]
        if not ready:
            raise SpecificationError(
                "window contains operators with unwired inputs; validate() "
                "it before decompiling"
            )
        ready.sort(key=lambda op: (op.instance_name, op.family))
        ready_ids = {id(operator) for operator in ready}
        for operator in ready:
            upstream = graph.upstream(operator)
            name = operator.instance_name
            if not re.fullmatch(r"[A-Za-z_][\w.\-]*", name) or name in used_names:
                name = f"node{len(operator_names) + 1}"
            used_names.add(name)
            operator_names[id(operator)] = name
            inputs = [""] * operator.arity
            for source, slot in upstream:
                inputs[slot] = (
                    source_names.get(id(source))
                    or operator_names[id(source)]
                )
            lines.append(
                f"{name} = {_render_operator(operator, window)}"
                f"({', '.join(inputs)})"
            )
        pending = [
            operator for operator in pending if id(operator) not in ready_ids
        ]

    for schema in window.schemas():
        root = schema.description.root
        upstream = graph.upstream(root)
        source, __ = upstream[0]
        source_name = operator_names.get(id(source)) or source_names[id(source)]
        line = f"deliver {source_name} to {schema.delivery_role}"
        if schema.assignment_name != "identity":
            line += f" using {schema.assignment_name}"
        if root.user_description:
            line += f' as "{root.user_description}"'
        line += f" named {schema.name}"
        lines.append(line)
    return "\n".join(lines) + "\n"
