"""The awareness information viewer (Section 6.5).

"The awareness information viewer in the CMI Client for Participants is
responsible for registering an interest in the event queue for its user,
retrieving event information, and displaying it to him."

The viewer is the participant-side endpoint of awareness provisioning: it
drains the participant's persistent queue and renders notifications as
text.  Because the queue is persistent, a participant who signs on after
the composite event was detected still receives the information.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.roles import Participant
from ..events.queues import DeliveryQueue, Notification
from ..observability import ProvenanceNode


class AwarenessViewer:
    """Per-participant client over the shared delivery queue."""

    def __init__(self, participant: Participant, queue: DeliveryQueue) -> None:
        self.participant = participant
        self.queue = queue
        self._received: List[Notification] = []

    def unread_count(self) -> int:
        """Notifications waiting in the queue (not yet retrieved)."""
        return self.queue.pending_count(self.participant.participant_id)

    def retrieve(self) -> Tuple[Notification, ...]:
        """Drain the queue into the viewer's local history."""
        items = self.queue.retrieve(self.participant.participant_id)
        self._received.extend(items)
        return items

    def received(self) -> Tuple[Notification, ...]:
        """Everything this viewer has retrieved so far."""
        return tuple(self._received)

    @staticmethod
    def provenance_for(notification: Notification) -> Optional[ProvenanceNode]:
        """The recognition chain of *notification*, if one was recorded.

        Chains exist only for notifications delivered while pipeline
        instrumentation (:mod:`repro.observability`) was enabled; a
        notification that crossed a serializing queue carries at most a
        stringified chain, for which this returns ``None``.
        """
        chain = notification.parameters.get("provenance")
        return chain if isinstance(chain, ProvenanceNode) else None

    def render(self, provenance: bool = False) -> str:
        """Plain-text display of the retrieved awareness information.

        With ``provenance=True`` each notification that carries a recorded
        recognition chain is followed by the indented chain — the "why was
        I notified" evidence behind the prose description.
        """
        lines = [f"Awareness for {self.participant.name}:"]
        if not self._received:
            lines.append("  (no awareness information)")
        for notification in self._received:
            lines.append(
                f"  [t={notification.time}] {notification.schema_name}: "
                f"{notification.description}"
            )
            if provenance:
                chain = self.provenance_for(notification)
                if chain is not None:
                    lines.append(chain.render(indent=2))
        return "\n".join(lines)
