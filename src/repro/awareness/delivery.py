"""The awareness delivery agent (Section 6.5).

"The awareness delivery agent consumes all composite events of the type
produced by the special output operator ... When the agent receives such an
event, it resolves the awareness delivery role and awareness role
assignment from the event's delivery instructions to a set of participants
through an interaction with the CORE Engine.  The information from the
event is then queued for each participant in the set."

Resolution happens **at detection time** against the triggering process
instance's scope: for scoped roles, the agent asks the CORE engine which
live contexts are associated with the instance, and looks the role up
there.  If the role cannot be resolved — the context was destroyed, so the
role's existence interval is over — the event is recorded as undeliverable
rather than mis-delivered; this is precisely how "the existence of an
awareness role determines the appropriate time interval to deliver the
information" (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.engine import CoreEngine
from ..core.roles import RoleRef
from ..errors import RoleResolutionError
from ..events.event import Event
from ..events.queues import DeliveryQueue, MemoryDeliveryQueue, Notification
from ..ids import IdFactory
from ..observability import INSTRUMENTATION as _OBS
from ..observability import MetricsRegistry
from ..observability import STRUCTURED_LOG as _SLOG
from .assignment import AssignmentRegistry


@dataclass(frozen=True)
class UndeliveredEvent:
    """Audit record for a composite event that had no live recipients."""

    time: int
    schema_name: str
    role: str
    reason: str


class DeliveryAgent:
    """Resolve delivery instructions and enqueue notifications."""

    def __init__(
        self,
        core: CoreEngine,
        queue: Optional[DeliveryQueue] = None,
        assignments: Optional[AssignmentRegistry] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.core = core
        self.queue = queue if queue is not None else MemoryDeliveryQueue()
        self.assignments = assignments or AssignmentRegistry()
        self._ids = IdFactory()
        self._role_refs: dict = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._delivered = self.metrics.counter(
            "notifications_delivered_total",
            "Notifications queued for participants by the delivery agent",
        )
        self.undeliverable: List[UndeliveredEvent] = []

    @property
    def delivered(self) -> int:
        """Notifications queued so far (a view over the registry counter)."""
        return int(self._delivered.value())

    def deliver(self, event: Event) -> Tuple[Notification, ...]:
        """Process one ``T_delivery`` event; returns the queued notifications."""
        if _OBS.enabled:
            with _OBS.tracer.span(
                "delivery.deliver",
                logical_time=event.time,
                schema=event.get("schemaName"),
            ):
                return self._deliver(event)
        return self._deliver(event)

    def _deliver(self, event: Event) -> Tuple[Notification, ...]:
        receivers = self._resolve_receivers(event)
        if receivers is None:
            return ()
        if len(receivers) > 1:
            receivers = sorted(receivers, key=lambda p: p.participant_id)
        notifications = []
        for participant in receivers:
            notification = self._make_notification(event, participant)
            self._route(event, participant, notification)
            notifications.append(notification)
            self._delivered.inc()
            if _OBS.enabled:
                _OBS.provenance.record_delivery(
                    notification.notification_id,
                    notification.participant_id,
                    notification.schema_name,
                    notification.description,
                    notification.time,
                    event,
                )
        return tuple(notifications)

    # -- overridable steps (the extension hooks of Section 6.5's outlook) -------

    def _resolve_receivers(self, event: Event):
        """Resolve role + assignment; ``None`` marks the event undeliverable."""
        key = (event["deliveryRole"], event.get("deliveryContext"))
        role_ref = self._role_refs.get(key)
        if role_ref is None:
            role_ref = self._role_refs[key] = RoleRef(
                role_name=key[0], context_name=key[1]
            )
        try:
            candidates = self.core.resolve_role(
                role_ref, event["processInstanceId"]
            )
        except RoleResolutionError as exc:
            self.undeliverable.append(
                UndeliveredEvent(
                    time=event.time,
                    schema_name=event["schemaName"],
                    role=str(role_ref),
                    reason=str(exc),
                )
            )
            if _SLOG.enabled:
                _SLOG.emit(
                    "delivery",
                    "undeliverable",
                    level="warning",
                    tick=event.time,
                    schema=event["schemaName"],
                    role=str(role_ref),
                    reason=str(exc),
                )
            return None
        assignment = self.assignments.lookup(event["assignment"])
        return assignment(candidates)

    def _make_notification(self, event: Event, participant) -> Notification:
        params = event.params
        parameters = {
            "processSchemaId": params["processSchemaId"],
            "processInstanceId": params["processInstanceId"],
            "intInfo": params.get("intInfo"),
            "strInfo": params.get("strInfo"),
            "sourceEvent": params.get("sourceEvent"),
        }
        if _OBS.enabled:
            # The chain object itself, not a rendering: the viewer renders
            # lazily, and persistent queues stringify it on serialization.
            parameters["provenance"] = getattr(event, "provenance", None)
        return Notification(
            notification_id=self._ids.new("ntf"),
            participant_id=participant.participant_id,
            time=params["time"],
            description=params["userDescription"],
            schema_name=params["schemaName"],
            parameters=parameters,
        )

    def _route(self, event: Event, participant, notification: Notification) -> None:
        """Hand the notification to its transport; the base agent always
        uses the persistent queue (the paper's implemented mechanism)."""
        if _OBS.enabled:
            with _OBS.tracer.span(
                "queue.append",
                logical_time=notification.time,
                participant=notification.participant_id,
            ):
                self.queue.enqueue(notification)
            return
        self.queue.enqueue(notification)
