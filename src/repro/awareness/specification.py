"""The awareness specification tool model (Section 6.2, Figure 6).

The CMI graphical specification tool is a build-time client for designers.
Each *window* of the tool is associated with one process schema; all
awareness schemata for that schema are edited in that window.  Interior
nodes and leaves may be shared amongst all awareness schemata DAGs, so the
complete set of awareness schemata of a process is "a single, multiply
rooted DAG".

:class:`SpecificationWindow` is the programmatic model of such a window
(the GUI is substituted by this API plus an ASCII rendering; see
DESIGN.md).  A designer authors a schema in the paper's three steps:

1. **place** operator instances (boxes) — the window always contains the
   primitive event sources (diamonds);
2. **connect** the edges between producers and positional slots;
3. **parameterize** — in this API, operator parameters are supplied at
   placement (the dialogue-based editor of the GUI is folded into step 1);
   the :meth:`SpecificationWindow.output` call attaches the delivery
   instructions that the GUI's Output box dialog would collect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..core.roles import RoleRef
from ..errors import SpecificationError
from ..events.producers import EventProducer
from .description import AwarenessDescription, EventGraph, Node, _node_name
from .operators.base import EventOperator
from .operators.output import Output
from .operators.registry import OperatorRegistry, default_registry
from .schema import AwarenessSchema


class SpecificationWindow:
    """One specification window: process schema + multi-rooted DAG."""

    def __init__(
        self,
        process_schema_id: str,
        producers: Dict[str, EventProducer],
        registry: Optional[OperatorRegistry] = None,
    ) -> None:
        self.process_schema_id = process_schema_id
        self.registry = registry or default_registry()
        self.graph = EventGraph()
        self._sources: Dict[str, EventProducer] = {}
        for name, producer in producers.items():
            self._sources[name] = self.graph.add_producer(producer)
        self._schemas: Dict[str, AwarenessSchema] = {}
        self._placed: List[EventOperator] = []

    # -- step 1: place operators -------------------------------------------------

    def source(self, name: str) -> EventProducer:
        """One of the window's primitive event source diamonds."""
        try:
            return self._sources[name]
        except KeyError:
            raise SpecificationError(
                f"window for {self.process_schema_id!r} has no event source "
                f"{name!r}; available: {sorted(self._sources)}"
            ) from None

    def add_source(self, name: str, producer: EventProducer) -> EventProducer:
        """Add an application-specific external event source diamond."""
        if name in self._sources:
            raise SpecificationError(f"source {name!r} already in the window")
        self._sources[name] = self.graph.add_producer(producer)
        return producer

    def place(self, family: str, *args, **kwargs) -> EventOperator:
        """Place (and parameterize) an operator instance in the window.

        The operator's first parameter P — the window's process schema —
        is supplied automatically unless the operator family crosses
        process schemas (``Translate`` takes its invoking schema
        explicitly, which must equal the window's).
        """
        operator_class = self.registry.lookup(family)
        operator = operator_class(self.process_schema_id, *args, **kwargs)
        self.graph.add_operator(operator)
        self._placed.append(operator)
        return operator

    def place_operator(self, operator: EventOperator) -> EventOperator:
        """Place a pre-constructed operator (application-specific classes)."""
        self.graph.add_operator(operator)
        self._placed.append(operator)
        return operator

    # -- step 2: connect edges ------------------------------------------------------

    def connect(self, source: Node, target: EventOperator, slot: int = 0) -> None:
        """Draw an edge from *source*'s output to *target*'s input *slot*."""
        self.graph.connect(source, target, slot)

    # -- step 3: the output operator / delivery instructions -------------------------

    def output(
        self,
        source: Node,
        delivery_role: RoleRef,
        assignment_name: str = "identity",
        user_description: str = "",
        schema_name: Optional[str] = None,
    ) -> AwarenessSchema:
        """Root *source* with an Output operator; registers the schema."""
        name = schema_name or f"AS_{self.process_schema_id}_{len(self._schemas) + 1}"
        if name in self._schemas:
            raise SpecificationError(f"awareness schema {name!r} already exists")
        output = Output(
            self.process_schema_id,
            delivery_role=delivery_role,
            assignment_name=assignment_name,
            user_description=user_description,
            schema_name=name,
            instance_name=f"Output({name})",
        )
        self.graph.add_operator(output)
        self.graph.connect(source, output, 0)
        description = AwarenessDescription(self.graph, output)
        schema = AwarenessSchema(
            name=name,
            description=description,
            delivery_role=delivery_role,
            assignment_name=assignment_name,
        )
        schema.validate()
        self._schemas[name] = schema
        return schema

    # -- inspection -----------------------------------------------------------------------

    def schemas(self) -> Tuple[AwarenessSchema, ...]:
        return tuple(self._schemas.values())

    def schema(self, name: str) -> AwarenessSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SpecificationError(
                f"window has no awareness schema {name!r}"
            ) from None

    def operators(self) -> Tuple[EventOperator, ...]:
        return self.graph.operators()

    def validate(self) -> None:
        """Validate every schema; unrooted placed operators are an error.

        The GUI would show a dangling box; programmatically we reject the
        window so a half-edited specification cannot be deployed.
        """
        if not self._schemas:
            raise SpecificationError(
                f"window for {self.process_schema_id!r} defines no "
                f"awareness schemas"
            )
        for schema in self._schemas.values():
            schema.validate()
        rooted = set()
        for schema in self._schemas.values():
            seen, __, ___ = self.graph.reachable_subgraph(schema.description.root)
            rooted.update(seen)
        dangling = [
            op.instance_name
            for op in self.graph.operators()
            if id(op) not in rooted
        ]
        if dangling:
            raise SpecificationError(
                f"window has operators not connected to any awareness "
                f"schema: {sorted(dangling)}"
            )

    # -- rendering (the GUI substitute) ------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering of the window: diamonds, boxes, and edges.

        Mirrors Figure 6: primitive sources as ``<...>``, operators as
        ``[...]``, and one line per edge with the slot position.
        """
        lines = [f"Awareness specification window — process {self.process_schema_id}"]
        lines.append("  sources:")
        for name, producer in sorted(self._sources.items()):
            lines.append(f"    <{name}> : {producer.output_type.name}")
        lines.append("  operators:")
        for operator in self.graph.operators():
            lines.append(f"    [{operator.instance_name}] {operator.describe()}")
        lines.append("  edges:")
        for source, target, slot in self.graph.edges():
            lines.append(
                f"    {_node_name(source)} --slot {slot}--> "
                f"{target.instance_name}"
            )
        lines.append("  awareness schemas:")
        for schema in self._schemas.values():
            lines.append(
                f"    {schema.name}: role={schema.delivery_role}, "
                f"assignment={schema.assignment_name}, "
                f"depth={schema.description.depth()}"
            )
        return "\n".join(lines)
