"""Detector agents (Section 6.4).

"At build-time, the designer-specified awareness schemata are automatically
transformed into one or more detector agents that embody one or more
awareness schemas.  The resulting agents become part of the Awareness
Engine.  The agent(s) consume primitive events, perform the event
processing, and send recognized composite events, complete with delivery
instructions, to the awareness delivery component."

A :class:`DetectorAgent` is compiled from one specification window.  The
live operator wiring was installed while the window was authored (edges
double as consumer links), so the agent's job is: validate the window,
register as listener on every schema's detection stream, and forward the
delivery-instruction events to its sink (the delivery agent, or an event
bus publishing ``T_delivery``).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..events.bus import EventBus
from ..events.event import Event
from .specification import SpecificationWindow

Sink = Callable[[Event], None]


class DetectorAgent:
    """Embodies the awareness schemas of one specification window."""

    def __init__(
        self,
        window: SpecificationWindow,
        sink: Optional[Sink] = None,
        bus: Optional[EventBus] = None,
        detach_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        window.validate()
        self.window = window
        #: When the engine deployed the window through the plan cache the
        #: live wiring belongs to the shared plan, not to this window's
        #: graph; detach then releases the plan instead of the leaves.
        self._detach_hook = detach_hook
        #: The :class:`~repro.awareness.planner.DeployedPlan` this window
        #: resolved to (set by the engine under plan sharing, ``None``
        #: otherwise).  Durability snapshots enumerate the *live*
        #: operators through it — the shared nodes, not the window's
        #: authoring-time copies.
        self.plan: Optional[Any] = None
        self._sinks: List[Sink] = []
        self._sink_snapshot: Tuple[Sink, ...] = ()
        if sink is not None:
            self._sinks.append(sink)
        if bus is not None:
            self._sinks.append(bus.publish)
        self._sink_snapshot = tuple(self._sinks)
        self.recognized = 0
        self._recognized_events: List[Event] = []
        for schema in window.schemas():
            schema.description.on_detected(self._forward)

    @property
    def process_schema_id(self) -> str:
        return self.window.process_schema_id

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)
        self._sink_snapshot = tuple(self._sinks)

    def detach(self) -> None:
        """Disconnect this detector's leaves from the shared producers.

        After detaching, events no longer reach the window's operators;
        the engine calls this on undeploy so the routing index holds no
        ghost entries for retired detectors.  The detection listeners are
        unregistered too, so a later redeploy of the same window does not
        double-deliver through this retired agent.
        """
        if self._detach_hook is not None:
            self._detach_hook()
        else:
            self.window.graph.detach_producers()
        for schema in self.window.schemas():
            schema.description.remove_listener(self._forward)

    def _forward(self, event: Event) -> None:
        self.recognized += 1
        self._recognized_events.append(event)
        # Snapshot is rebuilt on add_sink, not copied per recognition.
        for sink in self._sink_snapshot:
            sink(event)

    def recognized_events(self) -> Tuple[Event, ...]:
        """All composite events recognized so far (with delivery data)."""
        return tuple(self._recognized_events)

    def schema_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.window.schemas())
