"""Awareness extensions the paper leaves as future work (Section 6.5).

"Issues of event aggregation, priority, notification mechanisms, and
follow-on actions are under further consideration."  This module
implements all four, layered on the base delivery agent without changing
its paper-described behaviour:

* **Priority** — awareness schemas are assigned a :class:`Priority`;
  notifications carry it, viewers can sort/filter by it, and channels can
  be gated on a minimum priority.
* **Notification mechanisms** — pluggable :class:`NotificationChannel`
  transports.  :class:`QueueChannel` is the paper's persistent queue;
  :class:`CallbackChannel` pushes to signed-on participants immediately
  (the "popping viewer" mechanism); :class:`RecordingChannel` models a
  gateway such as e-mail.
* **Event aggregation** — :func:`aggregate_notifications` digests bursts
  of same-schema notifications into summary digests; the delivery-side
  equivalent is :class:`ExtendedDeliveryAgent`'s per-participant
  suppression window.
* **Follow-on actions** — callables bound to awareness schema names,
  executed when a matching composite event is delivered; the crisis
  domain's "cancel the obsolete lab tests automatically" becomes a
  one-liner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.engine import CoreEngine
from ..core.roles import Participant
from ..errors import DeliveryError
from ..events.event import Event
from ..events.queues import DeliveryQueue, Notification
from .assignment import AssignmentRegistry
from .delivery import DeliveryAgent


class Priority(enum.IntEnum):
    """Notification priority levels (ordered; higher is more urgent)."""

    LOW = 0
    NORMAL = 1
    HIGH = 2
    URGENT = 3


#: Key under which the priority rides in notification parameters.
PRIORITY_PARAMETER = "priority"


def notification_priority(notification: Notification) -> Priority:
    """Read a notification's priority (NORMAL when absent)."""
    value = notification.parameters.get(PRIORITY_PARAMETER, Priority.NORMAL)
    return Priority(value)


# ---------------------------------------------------------------------------
# Notification mechanisms (channels)
# ---------------------------------------------------------------------------


class NotificationChannel:
    """A transport for awareness notifications."""

    name = "channel"

    def send(self, participant: Participant, notification: Notification) -> None:
        raise NotImplementedError


class QueueChannel(NotificationChannel):
    """The paper's mechanism: enqueue into the persistent queue."""

    name = "queue"

    def __init__(self, queue: DeliveryQueue) -> None:
        self.queue = queue

    def send(self, participant: Participant, notification: Notification) -> None:
        self.queue.enqueue(notification)


class CallbackChannel(NotificationChannel):
    """Immediate push to signed-on participants.

    Participants register a callback (their live viewer); notifications to
    signed-off participants are silently skipped — the queue channel keeps
    the durable copy.
    """

    name = "push"

    def __init__(self) -> None:
        self._callbacks: Dict[str, Callable[[Notification], None]] = {}
        self.pushed = 0

    def register(
        self, participant: Participant, callback: Callable[[Notification], None]
    ) -> None:
        self._callbacks[participant.participant_id] = callback

    def unregister(self, participant: Participant) -> None:
        self._callbacks.pop(participant.participant_id, None)

    def send(self, participant: Participant, notification: Notification) -> None:
        if not participant.signed_on:
            return
        callback = self._callbacks.get(participant.participant_id)
        if callback is None:
            return
        self.pushed += 1
        callback(notification)


class RecordingChannel(NotificationChannel):
    """A gateway stand-in (e.g. e-mail): records what it would send."""

    name = "gateway"

    def __init__(self) -> None:
        self.sent: List[Tuple[str, Notification]] = []

    def send(self, participant: Participant, notification: Notification) -> None:
        self.sent.append((participant.participant_id, notification))


@dataclass
class _ChannelBinding:
    channel: NotificationChannel
    min_priority: Priority


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Digest:
    """An aggregate of several same-schema notifications."""

    schema_name: str
    count: int
    first_time: int
    last_time: int
    sample_description: str

    def render(self) -> str:
        if self.count == 1:
            return f"[t={self.first_time}] {self.sample_description}"
        return (
            f"[t={self.first_time}..{self.last_time}] {self.count}x "
            f"{self.schema_name}: {self.sample_description}"
        )


def aggregate_notifications(
    notifications: Sequence[Notification],
    gap: int = 10,
) -> Tuple[Digest, ...]:
    """Digest notifications per schema, merging bursts closer than *gap*.

    Notifications of the same awareness schema whose times fall within
    *gap* ticks of the previous one collapse into a single digest — the
    viewer shows "5x AS_PositiveLab" instead of five rows.
    """
    if gap < 0:
        raise DeliveryError(f"aggregation gap must be non-negative, got {gap}")
    by_schema: Dict[str, List[Notification]] = {}
    for notification in notifications:
        by_schema.setdefault(notification.schema_name, []).append(notification)
    digests: List[Digest] = []
    for schema_name, group in by_schema.items():
        group.sort(key=lambda n: n.time)
        run: List[Notification] = []
        for notification in group:
            if run and notification.time - run[-1].time > gap:
                digests.append(_close_run(schema_name, run))
                run = []
            run.append(notification)
        if run:
            digests.append(_close_run(schema_name, run))
    digests.sort(key=lambda d: (d.first_time, d.schema_name))
    return tuple(digests)


def _close_run(schema_name: str, run: List[Notification]) -> Digest:
    return Digest(
        schema_name=schema_name,
        count=len(run),
        first_time=run[0].time,
        last_time=run[-1].time,
        sample_description=run[0].description,
    )


# ---------------------------------------------------------------------------
# Follow-on actions
# ---------------------------------------------------------------------------

#: A follow-on action receives the raw delivery event and the receiver set.
FollowOnAction = Callable[[Event, Tuple[Participant, ...]], None]


# ---------------------------------------------------------------------------
# The extended delivery agent
# ---------------------------------------------------------------------------


class ExtendedDeliveryAgent(DeliveryAgent):
    """Delivery with priorities, channels, suppression, and follow-ons.

    Defaults reproduce the base agent exactly (queue channel at priority
    LOW, no suppression, no follow-ons); everything else is opt-in.
    """

    def __init__(
        self,
        core: CoreEngine,
        queue: Optional[DeliveryQueue] = None,
        assignments: Optional[AssignmentRegistry] = None,
    ) -> None:
        super().__init__(core, queue=queue, assignments=assignments)
        self._priorities: Dict[str, Priority] = {}
        self._channels: List[_ChannelBinding] = [
            _ChannelBinding(QueueChannel(self.queue), Priority.LOW)
        ]
        self._follow_ons: Dict[str, List[FollowOnAction]] = {}
        self._suppression_gap = 0
        self._last_sent: Dict[Tuple[str, str], int] = {}
        self.suppressed = 0
        self.follow_ons_run = 0

    # -- configuration -----------------------------------------------------------

    def set_priority(self, schema_name: str, priority: Priority) -> None:
        """Assign a priority to an awareness schema's notifications."""
        self._priorities[schema_name] = priority

    def priority_of(self, schema_name: str) -> Priority:
        return self._priorities.get(schema_name, Priority.NORMAL)

    def add_channel(
        self,
        channel: NotificationChannel,
        min_priority: Priority = Priority.LOW,
    ) -> NotificationChannel:
        """Route notifications at or above *min_priority* through *channel*."""
        self._channels.append(_ChannelBinding(channel, min_priority))
        return channel

    def set_suppression_gap(self, gap: int) -> None:
        """Delivery-side aggregation: drop repeats of the same schema to
        the same participant arriving within *gap* ticks (0 disables)."""
        if gap < 0:
            raise DeliveryError(f"suppression gap must be >= 0, got {gap}")
        self._suppression_gap = gap

    def add_follow_on(self, schema_name: str, action: FollowOnAction) -> None:
        """Run *action* whenever *schema_name*'s composite is delivered."""
        self._follow_ons.setdefault(schema_name, []).append(action)

    # -- overridden pipeline steps ----------------------------------------------

    def deliver(self, event: Event):
        notifications = super().deliver(event)
        if notifications:
            receivers = tuple(
                self.core.roles.participant(n.participant_id)
                for n in notifications
            )
            for action in self._follow_ons.get(event["schemaName"], ()):
                self.follow_ons_run += 1
                action(event, receivers)
        return notifications

    def _make_notification(self, event: Event, participant) -> Notification:
        notification = super()._make_notification(event, participant)
        priority = self.priority_of(event["schemaName"])
        parameters = dict(notification.parameters)
        parameters[PRIORITY_PARAMETER] = int(priority)
        return Notification(
            notification_id=notification.notification_id,
            participant_id=notification.participant_id,
            time=notification.time,
            description=notification.description,
            schema_name=notification.schema_name,
            parameters=parameters,
        )

    def _route(self, event: Event, participant, notification: Notification) -> None:
        key = (notification.participant_id, notification.schema_name)
        if self._suppression_gap:
            last = self._last_sent.get(key)
            if last is not None and notification.time - last < self._suppression_gap:
                self.suppressed += 1
                return
        self._last_sent[key] = notification.time
        priority = notification_priority(notification)
        for binding in self._channels:
            if priority >= binding.min_priority:
                binding.channel.send(participant, notification)
