"""Retrospective awareness: what *would* a new schema have detected?

Awareness descriptions process events as they happen; a specification
deployed in the middle of a long-running crisis only sees the future.  But
the monitoring audit trail holds the past (Section 2's WfMC monitoring
API, :class:`~repro.federation.monitor.ProcessMonitor`), so the question
"what would this schema have detected so far?" is answerable: compile the
specification against *fresh* primitive producers — isolated from the live
engine so nothing is delivered twice — and replay the logged activity and
context changes through it in time order.

Uses: designers dry-running a specification against real history before
deploying it; analysts investigating an incident ("had we had this schema,
who would have been told, and when?").  The detected composites come back
as plain events, delivery instructions included, but nothing is queued —
retrospection observes, it does not notify.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..events.event import Event
from ..events.producers import ActivityEventProducer, ContextEventProducer
from ..federation.monitor import ProcessMonitor
from .specification import SpecificationWindow

#: A builder receives the isolated window and authors the description(s);
#: alternatively pass DSL text.
WindowBuilder = Callable[[SpecificationWindow], None]


class RetrospectionResult:
    """Everything the replayed specification detected, with timing."""

    def __init__(self, window: SpecificationWindow, detected: List[Event]):
        self.window = window
        self._detected = detected

    def detected(self) -> Tuple[Event, ...]:
        return tuple(self._detected)

    def __len__(self) -> int:
        return len(self._detected)

    def would_have_notified(self) -> Tuple[Tuple[int, str, str], ...]:
        """(time, schema name, delivery role) for each detection."""
        return tuple(
            (
                event.time,
                event["schemaName"],
                (
                    f"{event['deliveryContext']}.{event['deliveryRole']}"
                    if event.get("deliveryContext")
                    else event["deliveryRole"]
                ),
            )
            for event in self._detected
        )

    def render(self) -> str:
        lines = [f"retrospective detections: {len(self._detected)}"]
        for time, schema_name, role in self.would_have_notified():
            lines.append(f"  t={time:>5}  {schema_name} -> {role}")
        return "\n".join(lines)


def retrospect(
    process_schema_id: str,
    specification: Union[str, WindowBuilder],
    monitor: ProcessMonitor,
    extra_events: Sequence[Event] = (),
) -> RetrospectionResult:
    """Replay the audit history through a freshly compiled specification.

    *specification* is DSL text or a builder callable; *monitor* supplies
    the activity and context history.  *extra_events* lets callers splice
    in external-source history (must already be primitive ``Event``
    objects); they are merged by time with the audit logs.
    """
    activity_producer = ActivityEventProducer()
    context_producer = ContextEventProducer()
    window = SpecificationWindow(
        process_schema_id,
        {
            "ActivityEvent": activity_producer,
            "ContextEvent": context_producer,
        },
    )
    if callable(specification):
        specification(window)
    else:
        from .dsl import compile_specification

        compile_specification(window, specification)
    window.validate()

    detected: List[Event] = []
    for schema in window.schemas():
        schema.description.on_detected(detected.append)

    # Merge the histories in time order; within a tick, keep log order
    # (activity before context mirrors live interleaving closely enough:
    # state changes tick the clock, context writes share it).
    merged: List[Tuple[int, int, str, object]] = []
    for order, change in enumerate(monitor.log()):
        merged.append((change.time, order, "activity", change))
    for order, change in enumerate(monitor.context_log()):
        merged.append((change.time, order, "context", change))
    for order, event in enumerate(extra_events):
        merged.append((event.time, order, "extra", event))
    merged.sort(key=lambda entry: (entry[0], entry[1]))

    for __, ___, kind, payload in merged:
        if kind == "activity":
            activity_producer.produce(payload)  # type: ignore[arg-type]
        elif kind == "context":
            context_producer.produce(payload)  # type: ignore[arg-type]
        else:
            # External events enter through their own producer diamonds in
            # live runs; retrospectively we hand them to any operator that
            # consumes their type via the window's extra sources.
            for producer in window.graph.producers():
                if producer.output_type == payload.event_type:  # type: ignore[union-attr]
                    producer.emit(payload)  # type: ignore[arg-type]
                    break
    return RetrospectionResult(window, detected)
