"""Awareness descriptions: composite event specifications (Section 5.1).

"A composite event specification is a rooted, directed acyclic graph (DAG)
where the leaves of the DAG are primitive event producers, the non-leaves
are event operator instances, and the edges are connections, i.e., typed
event streams, between event producers and the consuming slots of event
operator instances."

:class:`EventGraph` is the shared graph substrate (one per specification
window; interior nodes and leaves may be shared amongst all awareness
schemata of a window, Section 6.2).  :class:`AwarenessDescription` is the
sub-DAG rooted at one operator — the ``AD_P`` of an awareness schema.

Wiring an edge both records it for validation and connects the live event
flow: events entering a leaf flow through operator ``consume`` calls to the
root.  "Composite events that are output from the root of the DAG are said
to be composite events *detected* by the composite event specification."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ..errors import DagValidationError, SlotError
from ..events.event import Event
from ..events.producers import EventProducer
from .operators.base import EventOperator

Node = Union[EventProducer, EventOperator]


def _node_name(node: Node) -> str:
    if isinstance(node, EventProducer):
        return node.producer_id
    return node.instance_name


class EventGraph:
    """A (possibly multi-rooted) DAG of producers and operator instances."""

    def __init__(self) -> None:
        self._producers: List[EventProducer] = []
        self._operators: List[EventOperator] = []
        #: (source node, target operator, slot)
        self._edges: List[Tuple[Node, EventOperator, int]] = []
        self._filled_slots: Dict[int, Set[int]] = {}
        #: Live consumer callables this graph installed on (shared)
        #: producers, kept so undeploy can detach them.
        self._producer_links: List[Tuple[EventProducer, Callable[[Event], None]]] = []

    # -- construction -----------------------------------------------------------

    def add_producer(self, producer: EventProducer) -> EventProducer:
        if producer not in self._producers:
            self._producers.append(producer)
        return producer

    def add_operator(self, operator: EventOperator) -> EventOperator:
        if operator in self._operators:
            raise DagValidationError(
                f"operator {operator.instance_name!r} is already in the graph"
            )
        self._operators.append(operator)
        return operator

    def connect(self, source: Node, target: EventOperator, slot: int) -> None:
        """Wire *source*'s output stream into *target*'s input *slot*.

        Checks the slot's type constraint and its cardinality (exactly one
        producer per slot), then installs the live consumer link.
        """
        if target not in self._operators:
            raise DagValidationError(
                f"target operator {_node_name(target)!r} is not in the graph"
            )
        if isinstance(source, EventOperator):
            if source not in self._operators:
                raise DagValidationError(
                    f"source operator {_node_name(source)!r} is not in the graph"
                )
        elif source not in self._producers:
            raise DagValidationError(
                f"source producer {_node_name(source)!r} is not in the graph"
            )
        expected = target.slot_type(slot)
        if source.output_type != expected:
            raise SlotError(
                f"cannot connect {_node_name(source)!r} "
                f"({source.output_type.name}) to slot {slot} of "
                f"{_node_name(target)!r} (expects {expected.name})"
            )
        filled = self._filled_slots.setdefault(id(target), set())
        if slot in filled:
            raise SlotError(
                f"slot {slot} of {_node_name(target)!r} is already connected"
            )
        if self._would_cycle(source, target):
            raise DagValidationError(
                f"edge {_node_name(source)} -> {_node_name(target)} "
                f"would create a cycle"
            )
        filled.add(slot)
        self._edges.append((source, target, slot))
        if isinstance(source, EventOperator):
            source.add_consumer(target.consume, slot)
        else:
            # Producer leaves go through the routing index: operators with
            # a static match key (the filters) are only visited for events
            # carrying their key; everything else rides the wildcard bucket.
            self._install_producer_link(source, target, slot)

    def _install_producer_link(
        self, source: EventProducer, target: EventOperator, slot: int
    ) -> None:
        handle = source.add_consumer(
            lambda event, t=target, s=slot: t.consume(s, event),
            keys=target.routing_keys(slot),
        )
        self._producer_links.append((source, handle))

    def attach_producers(self) -> None:
        """Re-install the producer leaf links after :meth:`detach_producers`.

        Redeploying a previously undeployed window must rewire its leaves
        against the shared producers; a no-op while the links from
        :meth:`connect` are still installed.  Registrations are grouped
        per producer and installed through one bulk ``add_consumers``
        call each, so a redeploy invalidates each routing bucket once
        instead of once per leaf edge.
        """
        if self._producer_links:
            return
        grouped: Dict[int, Tuple[EventProducer, List[Tuple]]] = {}
        for source, target, slot in self._edges:
            if not isinstance(source, EventOperator):
                __, records = grouped.setdefault(id(source), (source, []))
                records.append(
                    (
                        lambda event, t=target, s=slot: t.consume(s, event),
                        target.routing_keys(slot),
                        None,
                    )
                )
        for producer, records in grouped.values():
            for handle in producer.add_consumers(records):
                self._producer_links.append((producer, handle))

    def detach_producers(self) -> None:
        """Remove this graph's consumer links from the shared producers.

        Called on undeploy: the producers outlive the window (they belong
        to the engine's source agents), so the index entries and wildcard
        registrations installed by :meth:`connect` must be reaped or the
        undeployed detector would keep receiving events.
        """
        for producer, handle in self._producer_links:
            producer.remove_consumer(handle)
        self._producer_links.clear()

    # -- inspection ---------------------------------------------------------------

    def producers(self) -> Tuple[EventProducer, ...]:
        return tuple(self._producers)

    def operators(self) -> Tuple[EventOperator, ...]:
        return tuple(self._operators)

    def edges(self) -> Tuple[Tuple[Node, EventOperator, int], ...]:
        return tuple(self._edges)

    def upstream(self, operator: EventOperator) -> Tuple[Tuple[Node, int], ...]:
        """The (source, slot) pairs feeding *operator*."""
        return tuple(
            (source, slot)
            for source, target, slot in self._edges
            if target is operator
        )

    def downstream(self, node: Node) -> Tuple[EventOperator, ...]:
        return tuple(
            target for source, target, __ in self._edges if source is node
        )

    def roots(self) -> Tuple[EventOperator, ...]:
        """Operators with no outgoing edges (the candidate schema roots)."""
        with_outgoing = {id(source) for source, __, ___ in self._edges}
        return tuple(
            op for op in self._operators if id(op) not in with_outgoing
        )

    # -- validation ------------------------------------------------------------------

    def _would_cycle(self, source: Node, target: EventOperator) -> bool:
        """True when target already (transitively) feeds source."""
        if not isinstance(source, EventOperator):
            return False
        frontier: List[Node] = [target]
        seen: Set[int] = set()
        while frontier:
            node = frontier.pop()
            if node is source:
                return True
            if id(node) in seen:
                continue
            seen.add(id(node))
            frontier.extend(self.downstream(node))
        return False

    def reachable_subgraph(
        self, root: EventOperator
    ) -> Tuple[Set[int], List[EventOperator], List[EventProducer]]:
        """Everything upstream of *root* (inclusive)."""
        seen: Set[int] = set()
        operators: List[EventOperator] = []
        producers: List[EventProducer] = []
        frontier: List[Node] = [root]
        while frontier:
            node = frontier.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, EventOperator):
                operators.append(node)
                frontier.extend(src for src, __ in self.upstream(node))
            else:
                producers.append(node)
        return seen, operators, producers


class AwarenessDescription:
    """``AD_P``: the sub-DAG of a graph rooted at one operator.

    The description is itself an event producer for the events produced by
    its root operator instance: register interest via :meth:`on_detected`.
    """

    def __init__(self, graph: EventGraph, root: EventOperator) -> None:
        self.graph = graph
        self.root = root
        self._detected: List[Event] = []
        self._listeners: List[Callable[[Event], None]] = []
        self._listener_snapshot: Tuple[Callable[[Event], None], ...] = ()
        root.add_consumer(self._collect, 0)

    # -- detection stream --------------------------------------------------------

    def _collect(self, slot: int, event: Event) -> None:
        self._detected.append(event)
        # Snapshot is rebuilt on on_detected, not copied per detection.
        for listener in self._listener_snapshot:
            listener(event)

    def on_detected(self, listener: Callable[[Event], None]) -> None:
        self._listeners.append(listener)
        self._listener_snapshot = tuple(self._listeners)

    def remove_listener(self, listener: Callable[[Event], None]) -> None:
        """Unregister *listener*; a no-op when it is not registered."""
        if listener in self._listeners:
            self._listeners.remove(listener)
            self._listener_snapshot = tuple(self._listeners)

    def detected(self) -> Tuple[Event, ...]:
        """All composite events detected so far (test/bench convenience)."""
        return tuple(self._detected)

    # -- structure ------------------------------------------------------------------

    @property
    def process_schema_id(self) -> str:
        return self.root.process_schema_id

    def operators(self) -> Tuple[EventOperator, ...]:
        __, operators, ___ = self.graph.reachable_subgraph(self.root)
        return tuple(operators)

    def producers(self) -> Tuple[EventProducer, ...]:
        __, ___, producers = self.graph.reachable_subgraph(self.root)
        return tuple(producers)

    def depth(self) -> int:
        """Longest producer-to-root operator chain (pipeline latency bound)."""

        def node_depth(node: Node) -> int:
            if isinstance(node, EventProducer):
                return 0
            upstream = self.graph.upstream(node)
            if not upstream:
                return 1
            return 1 + max(node_depth(source) for source, __ in upstream)

        return node_depth(self.root)

    def validate(self) -> None:
        """Check the Section 5.1 structural rules for this description.

        * the root is an operator with every input slot wired;
        * every reachable operator has all slots wired (cardinality);
        * every leaf is a primitive event producer;
        * the graph is acyclic (enforced on construction; re-checked here).
        """
        __, operators, producers = self.graph.reachable_subgraph(self.root)
        if not producers:
            raise DagValidationError(
                f"description rooted at {self.root.instance_name!r} has no "
                f"primitive event producers"
            )
        for operator in operators:
            wired = {slot for __, slot in self.graph.upstream(operator)}
            missing = set(range(operator.arity)) - wired
            if missing:
                raise DagValidationError(
                    f"operator {operator.instance_name!r} has unwired input "
                    f"slots {sorted(missing)}"
                )
        # Re-run cycle detection from the root (cheap belt-and-braces).
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {}

        def visit(node: Node) -> None:
            color[id(node)] = GRAY
            if isinstance(node, EventOperator):
                for source, __ in self.graph.upstream(node):
                    state = color.get(id(source), WHITE)
                    if state == GRAY:
                        raise DagValidationError(
                            f"cycle detected through {_node_name(source)!r}"
                        )
                    if state == WHITE:
                        visit(source)
            color[id(node)] = BLACK

        visit(self.root)
