"""Shared detector plans: common-subexpression elimination across windows.

The paper's pitch is *customized* awareness — every participant can carry
their own specification — so a realistic deployment holds many windows
that are structurally identical up to the delivery role.  Deploying each
window as a private operator chain makes recognition cost and operator
state O(windows).  This module applies the classic continuous-query
answer (NiagaraCQ-style group optimization): intern equivalent sub-DAGs
once and fan their outputs out, so N customized copies of one
specification cost one shared plan plus an O(N) output layer.

Three pieces:

* **Canonicalizer** — :meth:`PlanCache._node_key` computes a structural
  key per operator bottom-up: ``(family, instance name, plan_params,
  input keys)``, with input keys order-normalized for commutative
  families (``Or``).  Operators whose
  :meth:`~repro.awareness.operators.base.EventOperator.plan_params`
  returns ``None`` (Output, external filters) get an identity key, which
  keeps them — and everything downstream of them — private per window.
  The instance name is deliberately part of the key: shared nodes only
  merge when the designer named them identically, which is exactly the
  "N customized copies of one template" case and keeps recognition
  provenance chains byte-identical to an unshared engine.

* **PlanCache** — owned by the awareness engine; interns live operator
  instances by key.  Deploying a window resolves each of its operators
  to a cached node (dropping the window's private copy) or interns the
  window's own instance as the cache entry, then re-wires the DAG edges
  in authoring order: edges into freshly-interned nodes install the
  shared wiring (producer leaves register batch-capable consumers so
  ``emit_batch`` runs become one ``consume_batch`` call), edges into
  already-shared nodes are skipped (the wiring exists), and edges into
  the per-window Output roots add one fan-out entry on the shared node.

* **DeployedPlan** — the refcounted handle: ``undeploy`` detaches only
  the output fan-out plus whatever shared nodes no surviving window
  references.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import SpecificationError
from ..events.producers import EventProducer
from .operators.base import EventOperator
from .specification import SpecificationWindow

PlanKey = Tuple[Any, ...]

#: ``output_links`` record tags (see :meth:`PlanCache._release`).
_LINK_OPERATOR = "op"
_LINK_PRODUCER = "leaf"


class SharedNode:
    """One interned operator: the live instance plus attach bookkeeping.

    ``leaf_links``/``upstream_links`` record the wiring this node's
    interning installed, so the cache can unwire exactly that when the
    last referencing window undeploys.
    """

    __slots__ = (
        "key",
        "operator",
        "refcount",
        "plan_id",
        "shareable",
        "leaf_links",
        "upstream_links",
    )

    def __init__(
        self, key: PlanKey, operator: EventOperator, plan_id: int, shareable: bool
    ) -> None:
        self.key = key
        self.operator = operator
        self.refcount = 0
        self.plan_id = plan_id
        self.shareable = shareable
        #: (producer, removal handle) pairs for producer leaf edges.
        self.leaf_links: List[Tuple[EventProducer, Any]] = []
        #: (upstream operator, consumer, slot) triples for operator edges.
        self.upstream_links: List[Tuple[EventOperator, Any, int]] = []


class DeployedPlan:
    """What one window's deploy resolved to; :meth:`detach` releases it."""

    __slots__ = ("window", "entries", "output_links", "shared_hits", "_cache", "_released")

    def __init__(
        self,
        cache: "PlanCache",
        window: SpecificationWindow,
        entries: List[SharedNode],
        output_links: List[Tuple[str, Any, Any, Optional[int]]],
        shared_hits: int,
    ) -> None:
        self._cache = cache
        self.window = window
        #: One entry per resolved non-Output operator, in topological
        #: order; an entry appears twice when the window itself contained
        #: the same subexpression twice (its refcount was bumped twice).
        self.entries = entries
        self.output_links = output_links
        #: How many of this window's operators resolved to a node another
        #: window (or an earlier part of this one) had already interned.
        self.shared_hits = shared_hits
        self._released = False

    @property
    def operator_count(self) -> int:
        return len(self.entries)

    @property
    def released(self) -> bool:
        return self._released

    def detach(self) -> None:
        """Release this window's hold on the shared plan (idempotent)."""
        if self._released:
            return
        self._released = True
        self._cache._release(self)


class PlanCache:
    """Interns operator nodes by structural key across deployed windows."""

    def __init__(self) -> None:
        self._nodes: Dict[PlanKey, SharedNode] = {}
        self._plans: List[DeployedPlan] = []
        self._next_plan_id = 1
        #: Cumulative counters (never decremented on undeploy).
        self.operators_resolved = 0
        self.operators_deduped = 0

    # -- deployment --------------------------------------------------------

    def deploy(self, window: SpecificationWindow) -> DeployedPlan:
        """Resolve *window* against the cache and wire the shared plan.

        The window's authoring-time leaf links fed its private operator
        copies; they are detached first — from here on the cache owns all
        live wiring for this window, and :meth:`DeployedPlan.detach` is
        the only unwire path.
        """
        graph = window.graph
        graph.detach_producers()
        output_ids = {id(schema.description.root) for schema in window.schemas()}
        order = self._topological(graph, output_ids)

        keys: Dict[int, PlanKey] = {}
        resolved: Dict[int, EventOperator] = {}
        fresh: Dict[int, SharedNode] = {}
        entries: List[SharedNode] = []
        shared_hits = 0
        for operator in order:
            key = self._node_key(operator, graph, keys)
            keys[id(operator)] = key
            entry = self._nodes.get(key)
            if entry is None:
                # This window's own instance becomes the cache entry; its
                # authoring wiring is dropped and re-installed edge by
                # edge below, so only plan-resolved consumers remain.
                operator.reset_consumers()
                entry = SharedNode(
                    key,
                    operator,
                    self._next_plan_id,
                    shareable=operator.plan_params() is not None,
                )
                self._next_plan_id += 1
                self._nodes[key] = entry
                fresh[id(operator)] = entry
            else:
                shared_hits += 1
            entry.refcount += 1
            entries.append(entry)
            resolved[id(operator)] = entry.operator

        # Re-wire following the authoring edge order, so a canonical
        # window's consumer lists come out byte-for-byte as connect()
        # built them — detection order is invariant under sharing.
        # Producer-leaf attaches are deferred and flushed through one
        # bulk `add_consumers` call per producer (grouping is stable, so
        # each producer still sees its attaches in edge order).
        output_links: List[Tuple[str, Any, Any, Optional[int]]] = []
        deferred_leaves: Dict[int, Tuple[Any, List[Tuple[Any, ...]]]] = {}

        def defer_leaf(producer: Any, consumer: Any, keys: Any, batch: Any,
                       on_handle: Any) -> None:
            bucket = deferred_leaves.get(id(producer))
            if bucket is None:
                bucket = deferred_leaves[id(producer)] = (producer, [])
            bucket[1].append((consumer, keys, batch, on_handle))

        for source, target, slot in graph.edges():
            if id(target) in output_ids:
                # The per-window delivery root: always a fresh fan-out
                # entry on the (possibly shared) source node.
                if isinstance(source, EventOperator):
                    upstream = resolved[id(source)]
                    upstream.add_consumer(target.consume, slot)
                    output_links.append(
                        (_LINK_OPERATOR, upstream, target.consume, slot)
                    )
                else:
                    defer_leaf(
                        source,
                        lambda event, t=target, s=slot: t.consume(s, event),
                        target.routing_keys(slot),
                        None,
                        lambda handle, s=source: output_links.append(
                            (_LINK_PRODUCER, s, handle, None)
                        ),
                    )
                continue
            entry = fresh.get(id(target))
            if entry is None:
                # Target resolved to an already-interned node: its input
                # wiring was installed when that node was interned.
                continue
            if isinstance(source, EventOperator):
                upstream = resolved[id(source)]
                consumer = entry.operator.consume
                upstream.add_consumer(consumer, slot)
                entry.upstream_links.append((upstream, consumer, slot))
            else:
                operator = entry.operator
                defer_leaf(
                    source,
                    lambda event, t=operator, s=slot: t.consume(s, event),
                    operator.routing_keys(slot),
                    lambda events, t=operator, s=slot: t.consume_batch(
                        s, events
                    ),
                    lambda handle, s=source, e=entry: e.leaf_links.append(
                        (s, handle)
                    ),
                )

        for producer, records in deferred_leaves.values():
            handles = producer.add_consumers(
                [(consumer, keys, batch) for consumer, keys, batch, __ in records]
            )
            for handle, (__, ___, ____, on_handle) in zip(handles, records):
                on_handle(handle)

        self.operators_resolved += len(entries)
        self.operators_deduped += shared_hits
        plan = DeployedPlan(self, window, entries, output_links, shared_hits)
        self._plans.append(plan)
        return plan

    # -- release -----------------------------------------------------------

    def _release(self, plan: DeployedPlan) -> None:
        """Undo one deploy: drop the output fan-out, then unreference.

        Entries are walked root-first (reverse topological order) so a
        dying node's own consumer registrations on still-live upstream
        nodes are removed before those upstreams are considered.
        """
        for tag, node, link, slot in plan.output_links:
            if tag == _LINK_OPERATOR:
                node.remove_consumer(link, slot)
            else:
                node.remove_consumer(link)
        for entry in reversed(plan.entries):
            entry.refcount -= 1
            if entry.refcount == 0:
                del self._nodes[entry.key]
                for upstream, consumer, slot in entry.upstream_links:
                    upstream.remove_consumer(consumer, slot)
                for producer, handle in entry.leaf_links:
                    producer.remove_consumer(handle)
        self._plans.remove(plan)

    # -- canonicalization --------------------------------------------------

    def _node_key(
        self,
        operator: EventOperator,
        graph: Any,
        keys: Dict[int, PlanKey],
    ) -> PlanKey:
        params = operator.plan_params()
        if params is None:
            # Non-shareable: an identity key.  The cache holds a strong
            # reference to the operator while the entry lives, so the id
            # cannot be recycled by a different live operator; everything
            # downstream inherits uniqueness through its input keys.
            return ("unique", id(operator))
        inputs: List[Optional[Any]] = [None] * operator.arity
        for source, slot in graph.upstream(operator):
            inputs[slot] = source
        child_keys: List[PlanKey] = []
        for source in inputs:
            if isinstance(source, EventOperator):
                child_keys.append(keys[id(source)])
            else:
                child_keys.append(("producer", source.producer_id))
        if operator.plan_commutative:
            child_keys.sort(key=repr)
        return (
            operator.family,
            operator.instance_name,
            params,
            tuple(child_keys),
        )

    @staticmethod
    def _topological(graph: Any, output_ids: set) -> List[EventOperator]:
        """Non-Output operators in bottom-up (inputs-first) wave order."""
        pending = [
            operator
            for operator in graph.operators()
            if id(operator) not in output_ids
        ]
        order: List[EventOperator] = []
        placed: set = set()
        while pending:
            remaining = []
            progressed = False
            for operator in pending:
                ready = all(
                    not isinstance(source, EventOperator)
                    or id(source) in placed
                    for source, __ in graph.upstream(operator)
                )
                if ready:
                    order.append(operator)
                    placed.add(id(operator))
                    progressed = True
                else:
                    remaining.append(operator)
            if not progressed:
                raise SpecificationError(
                    "window contains operators whose inputs do not resolve; "
                    "validate() it before deploying"
                )
            pending = remaining
        return order

    # -- inspection --------------------------------------------------------

    def plans(self) -> Tuple[DeployedPlan, ...]:
        return tuple(self._plans)

    def live_node_count(self) -> int:
        return len(self._nodes)

    def stats(self) -> Dict[str, int]:
        """Sharing counters for the engine's metrics/stats surface."""
        return {
            "windows_deployed": len(self._plans),
            "nodes_live": len(self._nodes),
            "operators_resolved": self.operators_resolved,
            "operators_deduped": self.operators_deduped,
        }

    def describe(self) -> List[Dict[str, object]]:
        """Inspection rows for ``repro plans``: one per live interned node."""
        rows: List[Dict[str, object]] = []
        for entry in sorted(self._nodes.values(), key=lambda e: e.plan_id):
            operator = entry.operator
            # DSL-authored comparisons render their textual form; the
            # default describe() would print the compiled lambda.
            rendering = getattr(operator, "_dsl_rendering", None)
            rows.append(
                {
                    "node_id": f"plan-{entry.plan_id}",
                    "family": operator.family,
                    "operator": rendering or operator.describe(),
                    "instance": operator.instance_name,
                    "shared": entry.shareable,
                    "refs": entry.refcount,
                    "consumers": len(operator._consumers),
                    "consumed": operator.consumed,
                    "produced": operator.produced,
                }
            )
        return rows
