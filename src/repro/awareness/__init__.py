"""Awareness Model (AM) — the paper's primary contribution (Section 5, 6).

AM extends CORE with customized process and situation awareness:

* **awareness descriptions** — composite event specifications: rooted DAGs
  of event operators over primitive event producers
  (:mod:`repro.awareness.description`, :mod:`repro.awareness.operators`);
* **awareness schemas** ``AS_P = (AD_P, R_P, RA_P)`` — a description plus a
  delivery role and a role assignment (:mod:`repro.awareness.schema`,
  :mod:`repro.awareness.assignment`);
* the **awareness specification tool** model of Section 6.2
  (:mod:`repro.awareness.specification`);
* the run-time machinery of Section 6.3–6.5: event source agents,
  detector agents, and the delivery agent with its persistent queues
  (:mod:`repro.awareness.sources`, :mod:`repro.awareness.detector`,
  :mod:`repro.awareness.delivery`);
* the **Awareness Engine** that wires it all together
  (:mod:`repro.awareness.engine`).
"""

from .assignment import (
    RoleAssignment,
    identity_assignment,
    least_loaded_assignment,
    signed_on_assignment,
)
from .delivery import DeliveryAgent
from .description import AwarenessDescription
from .detector import DetectorAgent
from .engine import AwarenessEngine
from .retrospective import RetrospectionResult, retrospect
from .schema import AwarenessSchema
from .sources import ActivitySourceAgent, ContextSourceAgent
from .specification import SpecificationWindow
from .viewer import AwarenessViewer

__all__ = [
    "ActivitySourceAgent",
    "AwarenessDescription",
    "AwarenessEngine",
    "AwarenessSchema",
    "AwarenessViewer",
    "ContextSourceAgent",
    "DeliveryAgent",
    "DetectorAgent",
    "RetrospectionResult",
    "RoleAssignment",
    "SpecificationWindow",
    "identity_assignment",
    "least_loaded_assignment",
    "retrospect",
    "signed_on_assignment",
]
