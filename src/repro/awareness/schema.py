"""Awareness schemas ``AS_P = (AD_P, R_P, RA_P)`` (Section 5).

"Formally, an awareness schema AS_P on process schema P is defined to be a
triplet (AD_P, R_P, RA_P), where AD_P is an awareness description, R_P is an
awareness delivery role, and RA_P is an awareness role assignment."

* ``AD_P`` — a composite event specification over event sources visible in
  P (:class:`~repro.awareness.description.AwarenessDescription`);
* ``R_P`` — a role visible in the scope of P, resolved *at composite event
  detection time* to the candidate receivers; organizational or scoped;
* ``RA_P`` — a function choosing the receiving subset.

In the implementation the role and assignment ride on the root
:class:`~repro.awareness.operators.output.Output` operator as delivery
instructions (Section 6.2); :class:`AwarenessSchema` ties the three parts
together and validates their consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.roles import RoleRef
from ..errors import SpecificationError
from .description import AwarenessDescription
from .operators.output import Output


@dataclass(frozen=True)
class AwarenessSchema:
    """The (AD, R, RA) triplet plus a designer-facing name."""

    name: str
    description: AwarenessDescription
    delivery_role: RoleRef
    assignment_name: str = "identity"

    @property
    def process_schema_id(self) -> str:
        return self.description.process_schema_id

    @property
    def output(self) -> Output:
        root = self.description.root
        assert isinstance(root, Output)
        return root

    def validate(self) -> None:
        """Structural validation of the triplet.

        The description must validate as a DAG, must be rooted by an output
        operator, and the output operator's delivery instructions must
        agree with the schema's role and assignment (they are the same
        information viewed from the model and implementation sides).
        """
        root = self.description.root
        if not isinstance(root, Output):
            raise SpecificationError(
                f"awareness schema {self.name!r} must be rooted by the "
                f"special output operator, found {type(root).__name__}"
            )
        if root.delivery_role != self.delivery_role:
            raise SpecificationError(
                f"awareness schema {self.name!r}: output operator role "
                f"{root.delivery_role} disagrees with schema role "
                f"{self.delivery_role}"
            )
        if root.assignment_name != self.assignment_name:
            raise SpecificationError(
                f"awareness schema {self.name!r}: output operator assignment "
                f"{root.assignment_name!r} disagrees with schema assignment "
                f"{self.assignment_name!r}"
            )
        self.description.validate()
