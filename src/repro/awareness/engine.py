"""The Awareness Engine (Figure 5, Section 6).

The Awareness Engine is the CMI Enactment System component "primarily
responsible for implementation of the CMM Awareness Model".  It owns:

* the primitive event producers ``E_activity`` and ``E_context`` and their
  event source agents, hooked into the CORE engine (Section 6.3);
* the detector agents compiled from deployed specification windows
  (Section 6.4);
* the awareness delivery agent with the persistent participant queues
  (Section 6.5).

Its public surface is small: :meth:`AwarenessEngine.create_window` starts a
designer authoring session against this engine's event sources;
:meth:`AwarenessEngine.deploy` turns a finished window into a live detector
agent; :meth:`AwarenessEngine.viewer_for` gives a participant their
awareness information viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.engine import CoreEngine
from ..core.roles import Participant
from ..errors import SpecificationError
from ..events.bus import EventBus
from ..events.producers import EventProducer
from ..events.queues import DeliveryQueue, MemoryDeliveryQueue
from ..observability import MetricsRegistry
from ..observability import STRUCTURED_LOG as _SLOG
from .assignment import AssignmentRegistry
from .delivery import DeliveryAgent
from .detector import DetectorAgent
from .operators.registry import OperatorRegistry, default_registry
from .planner import PlanCache
from .sources import ActivitySourceAgent, ContextSourceAgent
from .specification import SpecificationWindow
from .viewer import AwarenessViewer

#: The diamond names every specification window starts with (Figure 6 shows
#: the "Activity Event" and "Context Event" diamonds).
ACTIVITY_SOURCE = "ActivityEvent"
CONTEXT_SOURCE = "ContextEvent"

#: Conventional diamond name of the ``T_system`` telemetry source.  Not
#: reserved: self-awareness attaches it through
#: :meth:`AwarenessEngine.register_external_source` like any Section
#: 5.1.1 application-specific source.
SYSTEM_SOURCE = "SystemEvent"


class AwarenessEngine:
    """Wires sources, detectors, and delivery over a CORE engine."""

    def __init__(
        self,
        core: CoreEngine,
        bus: Optional[EventBus] = None,
        queue: Optional[DeliveryQueue] = None,
        registry: Optional[OperatorRegistry] = None,
        assignments: Optional[AssignmentRegistry] = None,
        delivery_agent: Optional[DeliveryAgent] = None,
        metrics: Optional[MetricsRegistry] = None,
        share_plans: bool = True,
    ) -> None:
        self.core = core
        #: All Figure 5 agents owned by this engine register their counters
        #: here; :meth:`stats` is a view over these instruments.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = bus or EventBus(metrics=self.metrics)
        self.registry = registry or default_registry()
        self.activity_source = ActivitySourceAgent(
            core, bus=self.bus, metrics=self.metrics
        )
        self.context_source = ContextSourceAgent(
            core, bus=self.bus, metrics=self.metrics
        )
        self.delivery = delivery_agent or DeliveryAgent(
            core,
            queue=queue if queue is not None else MemoryDeliveryQueue(),
            assignments=assignments,
            metrics=self.metrics,
        )
        self._detectors: List[DetectorAgent] = []
        #: Live detector per deployed window (keyed by window identity),
        #: making :meth:`deploy` idempotent.
        self._deployed: Dict[int, DetectorAgent] = {}
        #: Recognitions carried by detectors that have since been retired;
        #: keeps the ``composites_recognized`` gauge monotonic across
        #: undeploys.
        self._recognized_retired = 0
        #: The multi-query optimizer: windows deployed through the cache
        #: share equal operator sub-DAGs.  ``None`` disables sharing (each
        #: window keeps its private chain — the pre-cache behavior, used
        #: as the differential/benchmark baseline).
        self.planner: Optional[PlanCache] = PlanCache() if share_plans else None
        self._external_sources: Dict[str, EventProducer] = {}
        self.metrics.callback_gauge(
            "composites_recognized",
            lambda: self._recognized_retired
            + sum(d.recognized for d in self._detectors),
            "Composite events recognized across detector agents, including "
            "detectors since retired",
        )
        if self.planner is not None:
            planner = self.planner
            self.metrics.callback_gauge(
                "plan_nodes_live",
                lambda: planner.live_node_count(),
                "Interned operator nodes live in the shared plan cache",
            )
            self.metrics.callback_gauge(
                "plan_operators_deduped",
                lambda: planner.operators_deduped,
                "Deployed operators resolved to an already-interned node",
            )
        self.metrics.callback_gauge(
            "undeliverable_events",
            lambda: len(self.delivery.undeliverable),
            "Delivery events whose awareness role could not be resolved",
        )

    # -- external sources --------------------------------------------------------

    def register_external_source(
        self, name: str, producer: EventProducer
    ) -> EventProducer:
        """Add an application-specific event source (Section 5.1.1)."""
        if name in (ACTIVITY_SOURCE, CONTEXT_SOURCE):
            raise SpecificationError(f"source name {name!r} is reserved")
        if name in self._external_sources:
            raise SpecificationError(f"external source {name!r} already exists")
        producer.attach(self.bus)
        self._external_sources[name] = producer
        if _SLOG.enabled:
            _SLOG.emit(
                "awareness",
                "external_source_registered",
                tick=self.core.clock.now(),
                source=name,
                producer=producer.producer_id,
            )
        return producer

    # -- designer side --------------------------------------------------------------

    def create_window(self, process_schema_id: str) -> SpecificationWindow:
        """Open an authoring window bound to this engine's event sources."""
        producers: Dict[str, EventProducer] = {
            ACTIVITY_SOURCE: self.activity_source.producer,
            CONTEXT_SOURCE: self.context_source.producer,
        }
        producers.update(self._external_sources)
        return SpecificationWindow(
            process_schema_id, producers, registry=self.registry
        )

    def deploy(self, window: SpecificationWindow) -> DetectorAgent:
        """Compile a window into a detector agent feeding delivery.

        With plan sharing (the default) the window is resolved against
        the engine's :class:`~repro.awareness.planner.PlanCache`:
        sub-DAGs structurally equal to an already-deployed window's are
        not instantiated again — the existing shared nodes fan out to
        this window's output operators, so recognition cost grows with
        *unique* operators, not deployed windows.  Without sharing the
        window's authoring-time leaf links (keyed by each operator's
        :meth:`~repro.awareness.operators.base.EventOperator.routing_keys`)
        are attached as before.

        Deploying a window that is already deployed is idempotent: the
        live detector is returned, and nothing is re-attached (a double
        deploy used to double-wire the leaves and double-count
        recognitions).  Redeploying a window retired with
        :meth:`undeploy` rewires it freshly.
        """
        existing = self._deployed.get(id(window))
        if existing is not None:
            return existing
        if self.planner is not None:
            window.validate()
            plan = self.planner.deploy(window)
            detector = DetectorAgent(
                window, sink=self.delivery.deliver, detach_hook=plan.detach
            )
            detector.plan = plan
        else:
            window.graph.attach_producers()
            detector = DetectorAgent(window, sink=self.delivery.deliver)
        self._detectors.append(detector)
        self._deployed[id(window)] = detector
        if _SLOG.enabled:
            _SLOG.emit(
                "awareness",
                "window_deployed",
                tick=self.core.clock.now(),
                process=window.process_schema_id,
                schemas=[schema.name for schema in window.schemas()],
                shared_operators=(
                    plan.shared_hits if self.planner is not None else 0
                ),
            )
        return detector

    def undeploy(self, detector: DetectorAgent) -> None:
        """Retire a detector: detach its wiring and drop it from the engine.

        Detaching removes the detector's entries from the producers'
        routing indexes (and wildcard buckets) — or, under plan sharing,
        releases its hold on the shared plan, unwiring only the nodes no
        surviving window references — so no further events are dispatched
        to the retired window's operators.  The detector's recognition
        count is folded into the engine baseline first, keeping the
        ``composites_recognized`` gauge monotonic.
        """
        detector.detach()
        if detector in self._detectors:
            self._recognized_retired += detector.recognized
            self._detectors.remove(detector)
            self._deployed.pop(id(detector.window), None)
        if _SLOG.enabled:
            _SLOG.emit(
                "awareness",
                "window_undeployed",
                tick=self.core.clock.now(),
                process=detector.window.process_schema_id,
            )

    # -- participant side ---------------------------------------------------------------

    def viewer_for(self, participant: Participant) -> AwarenessViewer:
        return AwarenessViewer(participant, self.delivery.queue)

    # -- statistics -------------------------------------------------------------------------

    def detectors(self) -> Tuple[DetectorAgent, ...]:
        return tuple(self._detectors)

    def stats(self) -> Dict[str, int]:
        """Event-flow counters across the Figure 5 pipeline.

        Every value is a view over a registry instrument: the gathered /
        delivered counts read the agents' counters, and the recognized /
        undeliverable counts read the collection-time gauges registered in
        :attr:`metrics`.
        """
        out = {
            "activity_events_gathered": self.activity_source.gathered,
            "context_events_gathered": self.context_source.gathered,
            "composites_recognized": int(
                self.metrics.value("composites_recognized")
            ),
            "notifications_delivered": self.delivery.delivered,
            "undeliverable_events": int(
                self.metrics.value("undeliverable_events")
            ),
        }
        if self.planner is not None:
            plan_stats = self.planner.stats()
            out["plan_nodes_live"] = plan_stats["nodes_live"]
            out["plan_operators_deduped"] = plan_stats["operators_deduped"]
        return out
