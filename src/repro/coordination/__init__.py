"""Coordination Model (CM) — the workflow-enactment substrate.

The CM extends CORE with "operations that cause state transitions"
(Section 4) and with automated process enactment: when an activity closes,
the dependency variables of the enclosing process schema determine which
subactivities become ready next, and work items appear on the worklists of
the participants playing the performer roles.

In the paper's prototype this layer is realized on IBM FlowMark; here it is
implemented from scratch (see DESIGN.md, substitutions table).  What the
Awareness Model observes — the stream of activity state change events — is
identical.
"""

from .dependencies import DependencyEvaluator
from .engine import CoordinationEngine
from .timers import DeadlineMonitor, Timer, TimerService, attach_deadline_monitors
from .worklist import WorkItem, Worklist, WorklistManager

__all__ = [
    "CoordinationEngine",
    "DeadlineMonitor",
    "DependencyEvaluator",
    "Timer",
    "TimerService",
    "WorkItem",
    "Worklist",
    "WorklistManager",
    "attach_deadline_monitors",
]
