"""Worklists — the traditional WfMS participant interface.

CMI's Client for Participants contains "a variant of the traditional WfMS
worklist" (Section 6.1).  A work item appears when a basic activity becomes
ready; it is offered to every participant who currently plays the
activity's performer role, and claimed by exactly one of them, who then
performs and completes the activity.

The worklist also doubles as the **worklist-only awareness baseline** of
Section 2: WfMSs "assume that participants in a process are either
'workers' that need to be aware only of the activities assigned to them, or
'managers' that must know the status of all the activities" — the worklist
is all the awareness a worker gets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import WorklistError
from ..core.instances import ActivityInstance
from ..core.roles import Participant


@dataclass
class WorkItem:
    """One ready activity offered to the members of its performer role."""

    item_id: str
    activity: ActivityInstance
    candidates: FrozenSet[Participant]
    offered_at: int
    claimed_by: Optional[Participant] = None
    completed: bool = False

    @property
    def open(self) -> bool:
        return not self.completed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = (
            "completed"
            if self.completed
            else f"claimed by {self.claimed_by.name}"
            if self.claimed_by
            else "offered"
        )
        return f"WorkItem({self.activity.schema.name!r}, {status})"


class Worklist:
    """The per-participant view over the shared work item pool."""

    def __init__(self, participant: Participant, manager: "WorklistManager"):
        self.participant = participant
        self._manager = manager

    def items(self) -> Tuple[WorkItem, ...]:
        """Open items offered to or claimed by this participant."""
        return tuple(
            item
            for item in self._manager.open_items()
            if (
                item.claimed_by == self.participant
                or (item.claimed_by is None and self.participant in item.candidates)
            )
        )

    def __len__(self) -> int:
        return len(self.items())


class WorklistManager:
    """Owns the shared pool of work items."""

    def __init__(self) -> None:
        self._items: Dict[str, WorkItem] = {}
        self._by_activity: Dict[str, str] = {}
        #: Open-item index: :meth:`offer` adds, :meth:`finish` removes, so
        #: :meth:`open_items` never scans the (ever-growing) full pool.
        self._open: Dict[str, WorkItem] = {}
        self._next = 0

    def offer(
        self,
        activity: ActivityInstance,
        candidates: FrozenSet[Participant],
        time: int,
    ) -> WorkItem:
        if activity.instance_id in self._by_activity:
            raise WorklistError(
                f"activity {activity.instance_id!r} already has a work item"
            )
        self._next += 1
        item = WorkItem(
            item_id=f"item-{self._next}",
            activity=activity,
            candidates=candidates,
            offered_at=time,
        )
        self._items[item.item_id] = item
        self._open[item.item_id] = item
        self._by_activity[activity.instance_id] = item.item_id
        return item

    def claim(self, item: WorkItem, participant: Participant) -> None:
        if item.completed:
            raise WorklistError(f"work item {item.item_id!r} is already completed")
        if item.claimed_by is not None:
            raise WorklistError(
                f"work item {item.item_id!r} was already claimed by "
                f"{item.claimed_by.name!r}"
            )
        if participant not in item.candidates:
            raise WorklistError(
                f"{participant.name!r} is not a candidate for work item "
                f"{item.item_id!r}"
            )
        item.claimed_by = participant
        participant.load += 1

    def finish(self, item: WorkItem) -> None:
        if item.completed:
            raise WorklistError(f"work item {item.item_id!r} is already completed")
        item.completed = True
        self._open.pop(item.item_id, None)
        if item.claimed_by is not None:
            item.claimed_by.load = max(0, item.claimed_by.load - 1)

    def item_for_activity(self, activity_instance_id: str) -> Optional[WorkItem]:
        item_id = self._by_activity.get(activity_instance_id)
        return self._items.get(item_id) if item_id else None

    def open_items(self) -> Tuple[WorkItem, ...]:
        return tuple(self._open.values())

    def all_items(self) -> Tuple[WorkItem, ...]:
        return tuple(self._items.values())

    def worklist_for(self, participant: Participant) -> Worklist:
        return Worklist(participant, self)
