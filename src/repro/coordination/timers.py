"""Deadline timers: turning deadline values into expiry events.

The crisis processes of the paper are full of deadlines stored in context
fields (``TaskForceDeadline``, ``RequestDeadline``).  Awareness over
deadline *changes* needs no machinery beyond ``Filter_context``; awareness
over deadline *expiry* — "the deadline passed and the work is not done" —
needs someone to notice the passage of time.  That is this module:

* :class:`TimerService` — a priority queue of timers driven by the
  logical clock's advancement hooks; timers fire in due-time order (ties
  in scheduling order) the moment the clock reaches them;
* :class:`DeadlineMonitor` — watches a deadline-valued context field,
  keeps exactly one pending timer at the latest deadline value (moves of
  the deadline reschedule it), and on expiry writes a marker field back
  into the context — which emits an ordinary context field change event,
  so **expiry awareness is authored like any other awareness**: a
  ``Filter_context`` on the marker field.

Neither class knows anything about the awareness model; they extend the
coordination substrate, exactly where a WfMS keeps its timer service.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..clock import LogicalClock
from ..core.context import ContextReference
from ..errors import EnactmentError


@dataclass
class Timer:
    """A scheduled callback; cancel via :meth:`TimerService.cancel`."""

    due: int
    sequence: int
    callback: Callable[[int], None]
    cancelled: bool = False
    fired: bool = False

    def __lt__(self, other: "Timer") -> bool:
        return (self.due, self.sequence) < (other.due, other.sequence)


class TimerService:
    """Fire callbacks when the logical clock reaches their due time."""

    def __init__(self, clock: LogicalClock) -> None:
        self.clock = clock
        self._heap: List[Timer] = []
        self._sequence = itertools.count()
        self.fired = 0
        clock.on_advance(self._on_advance)

    def schedule(self, due: int, callback: Callable[[int], None]) -> Timer:
        """Schedule ``callback(now)`` at tick *due*.

        A due time at or before the current tick fires immediately — a
        deadline set in the past has, by definition, already expired.
        """
        timer = Timer(due=due, sequence=next(self._sequence), callback=callback)
        if due <= self.clock.now():
            self._fire(timer)
            return timer
        heapq.heappush(self._heap, timer)
        return timer

    def cancel(self, timer: Timer) -> None:
        if timer.fired:
            raise EnactmentError("cannot cancel a timer that already fired")
        timer.cancelled = True

    def pending_count(self) -> int:
        return sum(1 for t in self._heap if not t.cancelled and not t.fired)

    def _on_advance(self, now: int) -> None:
        while self._heap and self._heap[0].due <= now:
            timer = heapq.heappop(self._heap)
            if timer.cancelled or timer.fired:
                continue
            self._fire(timer)

    def _fire(self, timer: Timer) -> None:
        timer.fired = True
        self.fired += 1
        timer.callback(self.clock.now())


class DeadlineMonitor:
    """Watch one deadline field; mark its expiry back into the context.

    The marker field must be declared in the context schema (an ``int``
    field; the monitor writes the expiry tick into it).  Rescheduling is
    automatic: call :meth:`deadline_changed` whenever the deadline field
    is assigned (or wire it to the engine's context-change hook with
    :func:`attach_deadline_monitors`).  A monitor whose context is
    destroyed simply stops marking — the scope has ended.
    """

    def __init__(
        self,
        timers: TimerService,
        ref: ContextReference,
        deadline_field: str,
        marker_field: str,
    ) -> None:
        self.timers = timers
        self.ref = ref
        self.deadline_field = deadline_field
        self.marker_field = marker_field
        self._timer: Optional[Timer] = None
        self.expired = False
        if ref.is_set(deadline_field):
            self.deadline_changed(ref.get(deadline_field))

    def deadline_changed(self, new_deadline: int) -> None:
        """(Re)schedule the expiry timer for *new_deadline*."""
        if self._timer is not None and not self._timer.fired:
            self.timers.cancel(self._timer)
        self.expired = False
        self._timer = self.timers.schedule(new_deadline, self._expire)

    def _expire(self, now: int) -> None:
        self.expired = True
        try:
            self.ref.set(self.marker_field, now)
        except Exception:
            # The context (scope) is gone; expiry is moot.
            pass


def attach_deadline_monitors(
    core,
    timers: TimerService,
    context_name: str,
    deadline_field: str,
    marker_field: str,
) -> Callable[[], int]:
    """Auto-create a monitor per context of *context_name*.

    Hooks the engine's context-change stream: the first assignment of the
    deadline field creates a monitor for that context; later assignments
    reschedule it.  Returns a callable reporting how many monitors exist
    (bench/test introspection).
    """
    monitors = {}

    def on_change(change) -> None:
        if change.context_name != context_name:
            return
        if change.field_name != deadline_field:
            return
        monitor = monitors.get(change.context_id)
        if monitor is None:
            resource = core.context_resource(change.context_id)
            ref = ContextReference(resource, None, core.clock.now)
            monitors[change.context_id] = DeadlineMonitor(
                timers, ref, deadline_field, marker_field
            )
        else:
            monitor.deadline_changed(change.new_value)

    core.on_context_change(on_change)
    return lambda: len(monitors)
