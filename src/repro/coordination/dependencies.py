"""Dependency evaluation: which subactivities become ready next.

The coordination rules of a process schema are its dependency variables
(Section 3, Figure 3).  The evaluator answers one question for the
enactment engine: *given the current states of a process instance's
children, which not-yet-instantiated activity variables are now enabled?*

Semantics per dependency type (see
:class:`repro.core.metamodel.DependencyType`):

* ``SEQUENCE``   — enabled when the single source child **completed**;
* ``CONDITION``  — like SEQUENCE, additionally guarded by the dependency's
  condition callable evaluated against the live process instance;
* ``SYNC_AND``   — enabled when **all** source children completed;
* ``SYNC_OR``    — enabled when **at least one** source child completed.

An activity variable targeted by several dependencies is enabled when *all*
of them are satisfied (the dependencies conjoin, matching the WfMC join
interpretation).  Sources that were terminated (not completed) do not
satisfy dependencies — termination propagates as dead-path for SEQUENCE
and CONDITION, while OR-joins simply wait for another source.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.instances import ProcessInstance
from ..core.metamodel import DependencyType
from ..core.schema import DependencyVariable, ProcessActivitySchema
from ..core.states import COMPLETED, TERMINATED


class DependencyEvaluator:
    """Pure evaluation over a process instance's children (no mutation)."""

    def __init__(self, schema: ProcessActivitySchema) -> None:
        self.schema = schema

    # -- child state helpers ----------------------------------------------------

    @staticmethod
    def _completed(process: ProcessInstance, variable_name: str) -> bool:
        if not process.has_child(variable_name):
            return False
        child = process.child(variable_name)
        return child.state_machine.is_in(COMPLETED)

    @staticmethod
    def _terminated(process: ProcessInstance, variable_name: str) -> bool:
        if not process.has_child(variable_name):
            return False
        child = process.child(variable_name)
        return child.state_machine.is_in(TERMINATED)

    # -- dependency satisfaction ---------------------------------------------------

    def satisfied(
        self, dependency: DependencyVariable, process: ProcessInstance
    ) -> bool:
        """True when *dependency* currently allows its target to start."""
        if dependency.dependency_type is DependencyType.SEQUENCE:
            return self._completed(process, dependency.sources[0])
        if dependency.dependency_type is DependencyType.CONDITION:
            if not self._completed(process, dependency.sources[0]):
                return False
            assert dependency.condition is not None
            return bool(dependency.condition(process))
        if dependency.dependency_type is DependencyType.SYNC_AND:
            return all(self._completed(process, s) for s in dependency.sources)
        if dependency.dependency_type is DependencyType.SYNC_OR:
            return any(self._completed(process, s) for s in dependency.sources)
        raise AssertionError(f"unhandled dependency type {dependency.dependency_type}")

    def dead(
        self, dependency: DependencyVariable, process: ProcessInstance
    ) -> bool:
        """True when *dependency* can never become satisfied any more.

        SEQUENCE/CONDITION die when their source terminated; AND-joins die
        when any source terminated; OR-joins die only when all sources
        terminated.
        """
        if dependency.dependency_type in (
            DependencyType.SEQUENCE,
            DependencyType.CONDITION,
        ):
            return self._terminated(process, dependency.sources[0])
        if dependency.dependency_type is DependencyType.SYNC_AND:
            return any(self._terminated(process, s) for s in dependency.sources)
        if dependency.dependency_type is DependencyType.SYNC_OR:
            return all(self._terminated(process, s) for s in dependency.sources)
        raise AssertionError(f"unhandled dependency type {dependency.dependency_type}")

    # -- enabled set ----------------------------------------------------------------

    def enabled_activities(self, process: ProcessInstance) -> Tuple[str, ...]:
        """Activity variables whose dependencies are all satisfied and that
        have not been instantiated yet (entry activities excluded: those are
        started by the engine at process start)."""
        enabled: List[str] = []
        for variable in self.schema.activity_variables():
            name = variable.name
            if process.has_child(name):
                continue
            if name in self.schema.entry_activities:
                continue
            targeting = self.schema.dependencies_targeting(name)
            if not targeting:
                continue
            if all(self.satisfied(d, process) for d in targeting):
                enabled.append(name)
        return tuple(enabled)

    def dead_activities(self, process: ProcessInstance) -> Tuple[str, ...]:
        """Activity variables that can never start (dead-path elimination)."""
        dead: List[str] = []
        for variable in self.schema.activity_variables():
            name = variable.name
            if process.has_child(name):
                continue
            targeting = self.schema.dependencies_targeting(name)
            if not targeting:
                continue
            if any(self.dead(d, process) for d in targeting):
                dead.append(name)
        return tuple(dead)

    def process_can_complete(self, process: ProcessInstance) -> bool:
        """True when no child is open and nothing further can be enabled.

        Optional activity variables that never started do not block
        completion (Figure 1: optional lab tests may simply never happen).
        """
        for child in process.children.values():
            if not child.is_closed():
                return False
        if self.enabled_activities(process):
            return False
        for variable in self.schema.activity_variables():
            name = variable.name
            if process.has_child(name) or variable.optional:
                continue
            targeting = self.schema.dependencies_targeting(name)
            if not targeting and name not in self.schema.entry_activities:
                continue
            # A mandatory, never-started target blocks completion unless its
            # dependencies are dead.
            if name in self.schema.entry_activities:
                return False
            if not any(self.dead(d, process) for d in targeting):
                return False
        return True
