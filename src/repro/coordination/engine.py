"""The Coordination Engine (Figure 5): automated process enactment.

The CM "enhances CORE's activities and activity states with operations that
cause state transitions" (Section 4).  This engine provides those
operations and automates routing:

* :meth:`CoordinationEngine.start_process` — instantiate a top-level
  process, run it (Uninitialized -> Ready -> Running), and start its entry
  activities;
* when an activity completes, the dependency evaluator computes the newly
  enabled subactivities, which are instantiated and made ready;
* ready **basic** activities are offered on worklists to the members of
  their performer role (resolved at offer time, so scoped roles work);
* ready **subprocess** activities are started recursively;
* when every child is closed and nothing more can be enabled, the parent
  process completes automatically — the coordination processes of crisis
  response "may be partially unknown when they start" (Section 1), so
  completion is detected, not scripted.

All state transitions flow through the CORE engine, which publishes the
``E_activity`` primitive events the Awareness Model consumes; the
coordination engine itself contains no awareness logic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import EnactmentError
from ..core.engine import CoreEngine
from ..core.instances import ActivityInstance, ProcessInstance
from ..core.roles import Participant, RoleRef
from ..core.schema import (
    ActivitySchema,
    BasicActivitySchema,
    ProcessActivitySchema,
)
from ..core.states import COMPLETED, READY, RUNNING, SUSPENDED, TERMINATED
from .dependencies import DependencyEvaluator
from .worklist import WorkItem, Worklist, WorklistManager


class CoordinationEngine:
    """Drives process enactment on top of a :class:`CoreEngine`."""

    def __init__(self, core: CoreEngine) -> None:
        self.core = core
        self.worklists = WorklistManager()
        self._evaluators: Dict[str, DependencyEvaluator] = {}

    # -- process lifecycle -------------------------------------------------------

    def start_process(
        self,
        schema: ProcessActivitySchema,
        parent: Optional[ProcessInstance] = None,
        activity_variable_name: Optional[str] = None,
    ) -> ProcessInstance:
        """Instantiate and start a process (top-level or as a subprocess)."""
        if parent is None:
            instance = self.core.create_process_instance(schema)
        else:
            if activity_variable_name is None:
                raise EnactmentError(
                    "starting a subprocess requires the activity variable name"
                )
            variable = parent.schema.activity_variable(activity_variable_name)
            instance = self.core.create_process_instance(
                schema, parent=parent, activity_variable=variable
            )
        self.core.change_state(instance, READY)
        self.core.change_state(instance, RUNNING)
        for entry_name in schema.entry_activities:
            self._start_activity_variable(instance, entry_name)
        return instance

    def start_optional_activity(
        self, process: ProcessInstance, activity_variable_name: str, user: Optional[str] = None
    ) -> ActivityInstance:
        """Start an optional subactivity by explicit participant decision.

        Figure 1's optional activities (additional lab tests, inviting local
        expertise) "depend on current results and decisions made by the
        process participants" — this is that operation.
        """
        variable = process.schema.activity_variable(activity_variable_name)
        if not variable.optional:
            raise EnactmentError(
                f"activity variable {activity_variable_name!r} is not optional; "
                f"it is routed by dependencies"
            )
        if process.has_child(activity_variable_name):
            raise EnactmentError(
                f"optional activity {activity_variable_name!r} already started"
            )
        return self._start_activity_variable(process, activity_variable_name, user)

    # -- participant operations -----------------------------------------------------

    def claim(self, item: WorkItem, participant: Participant) -> None:
        """A participant claims a ready work item and starts the activity."""
        self.worklists.claim(item, participant)
        item.activity.performer = participant
        self.core.change_state(item.activity, RUNNING, user=participant.name)

    def complete_activity(
        self, activity: ActivityInstance, user: Optional[str] = None
    ) -> None:
        """Complete a running basic activity and route onward."""
        if isinstance(activity, ProcessInstance):
            raise EnactmentError(
                "processes complete automatically; complete their activities"
            )
        item = self.worklists.item_for_activity(activity.instance_id)
        if item is not None and item.open:
            self.worklists.finish(item)
        self.core.change_state(activity, COMPLETED, user=user)
        if activity.parent is not None:
            self._advance(activity.parent)

    def terminate_activity(
        self, activity: ActivityInstance, user: Optional[str] = None
    ) -> None:
        """Terminate an open activity (and, recursively, its children).

        A process is terminated *before* its children so that the
        children's closure cannot race the parent into auto-completion
        (``_advance`` only completes processes still in Running).
        """
        item = self.worklists.item_for_activity(activity.instance_id)
        if item is not None and item.open:
            self.worklists.finish(item)
        if not activity.is_closed():
            self.core.change_state(activity, TERMINATED, user=user)
        if isinstance(activity, ProcessInstance):
            for child in list(activity.children.values()):
                if not child.is_closed():
                    self.terminate_activity(child, user=user)
        if activity.parent is not None:
            self._advance(activity.parent)

    def suspend_activity(
        self, activity: ActivityInstance, user: Optional[str] = None
    ) -> None:
        self.core.change_state(activity, SUSPENDED, user=user)

    def resume_activity(
        self, activity: ActivityInstance, user: Optional[str] = None
    ) -> None:
        self.core.change_state(activity, RUNNING, user=user)

    def worklist_for(self, participant: Participant) -> Worklist:
        return self.worklists.worklist_for(participant)

    # -- internals ---------------------------------------------------------------------

    def _evaluator(self, schema: ProcessActivitySchema) -> DependencyEvaluator:
        evaluator = self._evaluators.get(schema.schema_id)
        if evaluator is None:
            evaluator = DependencyEvaluator(schema)
            self._evaluators[schema.schema_id] = evaluator
        return evaluator

    def _start_activity_variable(
        self,
        process: ProcessInstance,
        variable_name: str,
        user: Optional[str] = None,
    ) -> ActivityInstance:
        variable = process.schema.activity_variable(variable_name)
        child_schema = variable.activity_schema
        if isinstance(child_schema, ProcessActivitySchema):
            return self.start_process(
                child_schema, parent=process, activity_variable_name=variable_name
            )
        activity = self.core.create_activity_instance(process, variable_name)
        self.core.change_state(activity, READY, user=user)
        self._offer(activity, variable.performer or getattr(
            child_schema, "performer", None
        ))
        return activity

    def _offer(
        self, activity: ActivityInstance, performer: Optional[RoleRef]
    ) -> None:
        """Offer a ready basic activity on worklists.

        The performer role is resolved *now* (offer time) so dynamically
        populated scoped roles are honoured.  Activities without a
        performer role are system steps: they are left READY for the
        workload driver to run.
        """
        if performer is None:
            return
        scope = activity.parent_process_instance_id
        candidates = self.core.resolve_role(performer, scope)
        self.worklists.offer(activity, candidates, time=self.core.clock.now())

    def _advance(self, process: ProcessInstance) -> None:
        """Re-evaluate a process after one of its children closed."""
        evaluator = self._evaluator(process.schema)
        for name in evaluator.enabled_activities(process):
            self._start_activity_variable(process, name)
        if process.state_machine.is_in(RUNNING) and evaluator.process_can_complete(
            process
        ):
            self.core.change_state(process, COMPLETED)
            if process.parent is not None:
                self._advance(process.parent)
