"""The CMM meta-model layer (Section 3, Figures 2 and 3).

CMM is a process *meta model*: a deliberate compromise between the fixed
primitive sets of COTS workflow systems and the full meta-modeling of
academic systems such as MOBILE.  Concretely (Figure 3):

* meta types exist for **activity states** (``ACTIVITY_STATE``), for
  **activities** (``BASIC_ACTIVITY`` and ``PROCESS_ACTIVITY``), and for
  **resources** (``RESOURCE``) — schemas are instances of these meta types;
* **dependency types are a fixed set** (:class:`DependencyType`), following
  the COTS-WfMS approach, not user-extensible.

This module also records the CMM extension structure of Figure 2 —
CORE plus the Coordination, Awareness, and Service models, with
application-specific extensions layered on top — so benchmarks can verify
the composition declaratively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple


class MetaType(enum.Enum):
    """The CMM object meta types of Figure 3."""

    ACTIVITY_STATE = "activity state meta type"
    BASIC_ACTIVITY = "basic activity meta type"
    PROCESS_ACTIVITY = "process activity meta type"
    RESOURCE = "resource meta type"

    def __str__(self) -> str:
        return self.value


class DependencyType(enum.Enum):
    """The fixed set of CMM dependency types.

    The paper prescribes a fixed dependency type set (Section 3).  The set
    below covers the control-flow dependencies needed by the crisis
    processes of the paper: plain sequencing, condition-guarded sequencing,
    and AND/OR joins over several predecessor activities.
    """

    SEQUENCE = "sequence"
    CONDITION = "condition"
    SYNC_AND = "and-join"
    SYNC_OR = "or-join"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Extension:
    """One CMM sub-model from Figure 2 and what it builds upon."""

    name: str
    abbreviation: str
    builds_on: Tuple[str, ...] = field(default_factory=tuple)
    provides: Tuple[str, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return f"{self.name} ({self.abbreviation})"


#: The CMM composition of Figure 2: CORE at the bottom; CM, AM, and SM as
#: CORE extensions; application-specific models atop CM, SM, and AM.
CMM_EXTENSIONS: Dict[str, Extension] = {
    "CORE": Extension(
        name="Core Model",
        abbreviation="CORE",
        builds_on=(),
        provides=(
            "activity state schemas",
            "generic activity states",
            "data/helper/participant/context resources",
            "scoped roles",
        ),
    ),
    "CM": Extension(
        name="Coordination Model",
        abbreviation="CM",
        builds_on=("CORE",),
        provides=(
            "participant coordination",
            "automated process enactment",
            "state transition operations",
        ),
    ),
    "AM": Extension(
        name="Awareness Model",
        abbreviation="AM",
        builds_on=("CORE",),
        provides=(
            "awareness events",
            "composite event operators",
            "awareness schemas (AD, R, RA)",
        ),
    ),
    "SM": Extension(
        name="Service Model",
        abbreviation="SM",
        builds_on=("CORE",),
        provides=(
            "reusable process activities",
            "service quality",
            "service agreements",
        ),
    ),
    "APP": Extension(
        name="Application-specific Model",
        abbreviation="APP",
        builds_on=("CM", "SM", "AM"),
        provides=("application-specific process models",),
    ),
}


def extension_dependencies(abbreviation: str) -> FrozenSet[str]:
    """Transitive closure of what a CMM extension builds on.

    >>> sorted(extension_dependencies("APP"))
    ['AM', 'CM', 'CORE', 'SM']
    """
    closure = set()
    frontier = list(CMM_EXTENSIONS[abbreviation].builds_on)
    while frontier:
        name = frontier.pop()
        if name in closure:
            continue
        closure.add(name)
        frontier.extend(CMM_EXTENSIONS[name].builds_on)
    return frozenset(closure)
