"""CORE resource types (Section 4).

The CORE distinguishes four basic kinds of resources used during activity
execution:

* **data** resources — workflow-internal and workflow-relevant data;
* **helper** resources — programs providing auxiliary capabilities for basic
  activities (the WfMC "invoked applications");
* **participant** resources — humans or programs that take responsibility
  for activities; see :mod:`repro.core.roles`;
* **context** resources — named collections of resources that carry a
  *scope*; see :mod:`repro.core.context`.

Resource *schemas* are application-specific types instantiated from the CMM
resource meta type during process specification; instances are created
during application execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ResourceError
from .metamodel import MetaType


class ResourceKind(enum.Enum):
    """The four basic CORE resource kinds."""

    DATA = "data"
    HELPER = "helper"
    PARTICIPANT = "participant"
    CONTEXT = "context"

    def __str__(self) -> str:
        return self.value


class ResourceUsage(enum.Enum):
    """How a resource variable is used by an activity schema (Figure 3).

    Basic activity schemas use ``INPUT``/``OUTPUT`` plus ``HELPER``
    variables; process activity schemas use ``INPUT``/``OUTPUT`` plus
    ``ROLE`` and ``LOCAL`` data variables.
    """

    INPUT = "input"
    OUTPUT = "output"
    HELPER = "helper"
    ROLE = "role"
    LOCAL = "local"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ResourceSchema:
    """An application-specific resource type (instance of the resource
    meta type).

    ``value_type`` names the expected Python type of data values
    (``"int"``, ``"str"``, ``"float"``, ``"bool"``, or ``"any"``), used for
    light-weight validation when data resources are assigned.  A custom
    ``validator`` may refine it.
    """

    name: str
    kind: ResourceKind
    value_type: str = "any"
    validator: Optional[Callable[[Any], bool]] = None

    #: Which CMM meta type this schema instantiates.
    meta_type: MetaType = MetaType.RESOURCE

    _CHECKS: Tuple[Tuple[str, type], ...] = (
        ("int", int),
        ("str", str),
        ("float", float),
        ("bool", bool),
    )

    def check_value(self, value: Any) -> None:
        """Raise :class:`ResourceError` unless *value* fits this schema."""
        if self.value_type != "any":
            expected = dict(self._CHECKS).get(self.value_type)
            if expected is None:
                raise ResourceError(
                    f"resource schema {self.name!r} declares unknown "
                    f"value type {self.value_type!r}"
                )
            # bool is an int subclass; an "int" field should reject bools.
            if expected is int and isinstance(value, bool):
                raise ResourceError(
                    f"resource {self.name!r} expects int, got bool {value!r}"
                )
            if not isinstance(value, expected):
                raise ResourceError(
                    f"resource {self.name!r} expects {self.value_type}, "
                    f"got {type(value).__name__} {value!r}"
                )
        if self.validator is not None and not self.validator(value):
            raise ResourceError(
                f"value {value!r} rejected by validator of resource "
                f"schema {self.name!r}"
            )


@dataclass
class DataResource:
    """A workflow data item: an instance of a DATA resource schema."""

    resource_id: str
    schema: ResourceSchema
    value: Any = None

    def __post_init__(self) -> None:
        if self.schema.kind is not ResourceKind.DATA:
            raise ResourceError(
                f"DataResource requires a DATA schema, got {self.schema.kind}"
            )
        if self.value is not None:
            self.schema.check_value(self.value)

    def assign(self, value: Any) -> None:
        """Type-checked assignment."""
        self.schema.check_value(value)
        self.value = value


@dataclass
class HelperResource:
    """An auxiliary program used by basic activities (invoked application).

    ``invoke`` runs the helper's callable (a stand-in for launching the
    external tool) and records the invocation, so tests can assert that an
    activity used its helper.
    """

    resource_id: str
    schema: ResourceSchema
    program: Callable[..., Any] = field(default=lambda *a, **k: None)
    invocations: int = 0

    def __post_init__(self) -> None:
        if self.schema.kind is not ResourceKind.HELPER:
            raise ResourceError(
                f"HelperResource requires a HELPER schema, got {self.schema.kind}"
            )

    def invoke(self, *args: Any, **kwargs: Any) -> Any:
        self.invocations += 1
        return self.program(*args, **kwargs)


def data_schema(
    name: str,
    value_type: str = "any",
    validator: Optional[Callable[[Any], bool]] = None,
) -> ResourceSchema:
    """Convenience constructor for a DATA resource schema."""
    return ResourceSchema(
        name=name, kind=ResourceKind.DATA, value_type=value_type, validator=validator
    )


def helper_schema(name: str) -> ResourceSchema:
    """Convenience constructor for a HELPER resource schema."""
    return ResourceSchema(name=name, kind=ResourceKind.HELPER)


def participant_schema(name: str) -> ResourceSchema:
    """Convenience constructor for a PARTICIPANT resource schema."""
    return ResourceSchema(name=name, kind=ResourceKind.PARTICIPANT)


def context_schema_resource(name: str) -> ResourceSchema:
    """Convenience constructor for a CONTEXT resource schema marker."""
    return ResourceSchema(name=name, kind=ResourceKind.CONTEXT)
